//! Determinism conformance suite for the collection engine.
//!
//! The work-stealing engine promises that parallelism and caching are pure
//! performance features: whatever the thread count, whatever the stealing
//! interleaving, and whether a dataset comes out of the profiler or off
//! disk, the resulting [`Dataset`] is **equal** to the one the serial
//! reference path produces. These properties pin that contract across
//! randomized zoo subsets, GPU sets, batch lists and thread counts
//! (including more threads than grid points).

use dnnperf::data::collect::{collect, collect_opts, collect_parallel, evaluation_gpus};
use dnnperf::data::{CollectOptions, Dataset};
use dnnperf::dnn::{zoo, Network};
use dnnperf::gpu::GpuSpec;
use dnnperf_testkit::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Small, cheap-to-profile networks so the property runs stay fast.
fn net_pool() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ]
}

/// Picks a non-empty, duplicate-free subset by index.
fn pick<T: Clone>(pool: &[T], indices: &[usize]) -> Vec<T> {
    let mut seen = vec![false; pool.len()];
    let mut out = Vec::new();
    for &i in indices {
        let i = i % pool.len();
        if !seen[i] {
            seen[i] = true;
            out.push(pool[i].clone());
        }
    }
    out
}

/// A fresh, unique scratch cache directory (std-only; no tempfile crate).
fn fresh_cache_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dnnperf_determinism_{tag}_{}_{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid(
    net_idx: &[usize],
    gpu_idx: &[usize],
    batches: &[usize],
) -> (Vec<Network>, Vec<GpuSpec>, Vec<usize>) {
    (
        pick(&net_pool(), net_idx),
        pick(&evaluation_gpus(), gpu_idx),
        batches.to_vec(),
    )
}

props! {
    /// The tentpole contract: work-stealing collection at any worker count
    /// reproduces the serial dataset exactly — same rows, same order, same
    /// bits. Thread counts run past the grid size on purpose (threads >
    /// jobs leaves some workers with empty deques from the start).
    #[test]
    fn parallel_collection_matches_serial(
        net_idx in vec(0usize..4, 1..=3),
        gpu_idx in vec(0usize..5, 1..=2),
        batches in vec(select(vec![1usize, 2, 4, 8]), 1..=2),
        threads in 1usize..33,
    ) {
        let (nets, gpus, batches) = grid(&net_idx, &gpu_idx, &batches);
        let serial = collect(&nets, &gpus, &batches);
        let parallel = collect_parallel(&nets, &gpus, &batches, threads);
        prop_assert_eq!(serial, parallel);
    }

    /// Cache transparency: a cold-cache run (profiles, then stores), the
    /// warm-cache rerun (loads off disk), and a cache-less run all yield
    /// the same dataset — and the stats counters tell the right story.
    #[test]
    fn cache_is_invisible_to_results(
        net_idx in vec(0usize..4, 1..=2),
        gpu_idx in vec(0usize..5, 1..=1),
        batches in vec(select(vec![1usize, 4]), 1..=2),
        threads in 1usize..9,
    ) {
        let (nets, gpus, batches) = grid(&net_idx, &gpu_idx, &batches);
        let dir = fresh_cache_dir("prop");
        let opts = CollectOptions::with_threads(threads).cached_at(&dir);

        let (cold, s_cold) = collect_opts(&nets, &gpus, &batches, &opts);
        prop_assert_eq!((s_cold.hits, s_cold.misses), (0, 1));
        prop_assert!(s_cold.bytes_written > 0);

        let (warm, s_warm) = collect_opts(&nets, &gpus, &batches, &opts);
        prop_assert_eq!((s_warm.hits, s_warm.misses), (1, 0));
        prop_assert_eq!(s_warm.bytes_read, s_cold.bytes_written);

        let (bare, s_bare) = collect_opts(
            &nets,
            &gpus,
            &batches,
            &CollectOptions::with_threads(threads),
        );
        prop_assert_eq!((s_bare.hits, s_bare.misses, s_bare.bytes_read), (0, 0, 0));

        prop_assert_eq!(&cold, &warm);
        prop_assert_eq!(&cold, &bare);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Degenerate grids: empty inputs must behave identically on both paths
/// (and not panic with workers outnumbering a zero-job grid).
#[test]
fn empty_grids_match_serial() {
    let nets = net_pool();
    let gpus = evaluation_gpus();
    let empty_nets: &[Network] = &[];
    let empty_gpus: &[GpuSpec] = &[];
    let empty_batches: &[usize] = &[];
    for threads in [1usize, 4, 16] {
        assert_eq!(
            collect(empty_nets, &gpus, &[4]),
            collect_parallel(empty_nets, &gpus, &[4], threads)
        );
        assert_eq!(
            collect(&nets[..1], empty_gpus, &[4]),
            collect_parallel(&nets[..1], empty_gpus, &[4], threads)
        );
        assert_eq!(
            collect(&nets[..1], &gpus[..1], empty_batches),
            collect_parallel(&nets[..1], &gpus[..1], empty_batches, threads)
        );
    }
    assert_eq!(collect(empty_nets, &gpus, &[4]), Dataset::default());
}

/// `threads = 0` means "auto": the engine must still match serial output.
#[test]
fn auto_thread_count_matches_serial() {
    let nets = net_pool();
    let gpus = evaluation_gpus();
    let serial = collect(&nets[..2], &gpus[..2], &[2, 4]);
    let (auto, _) = collect_opts(
        &nets[..2],
        &gpus[..2],
        &[2, 4],
        &CollectOptions {
            threads: 0,
            ..CollectOptions::default()
        },
    );
    assert_eq!(serial, auto);
}

/// The serving-path contract: a [`CompiledPlan`] is a pure performance
/// feature. For every network × batch in the grid, the compiled sweep must
/// reproduce the legacy recompute-every-call predictors **bit for bit** —
/// the plain KW sum and the graceful-degradation ladder alike.
#[test]
fn compiled_plans_match_legacy_predictors_bit_for_bit() {
    use dnnperf::dnn::zoo;
    use dnnperf::model::plan::CompiledPlan;
    use dnnperf::model::{Predictor, Workflow};

    let train = [
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::vgg::vgg11(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&train, std::slice::from_ref(&gpu), &[32]);
    let suite = Workflow::train(&ds, "A100").unwrap();

    let probes = [
        zoo::resnet::resnet50(),
        zoo::vgg::vgg16(),
        zoo::densenet::densenet121(),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ];
    for net in &probes {
        for batch in [1usize, 2, 4, 8, 32] {
            let legacy = suite.kw.predict_network(net, batch).unwrap();
            // One-shot compile and the cached Workflow::predict path.
            let plan = CompiledPlan::compile(&suite, net, batch).unwrap();
            assert_eq!(
                plan.predict().to_bits(),
                legacy.to_bits(),
                "{} @ {batch}: compiled plan diverged from KW",
                net.name()
            );
            assert_eq!(
                suite.predict(net, batch).unwrap().to_bits(),
                legacy.to_bits(),
                "{} @ {batch}: cached predict diverged from KW",
                net.name()
            );
            // The graceful ladder, compiled vs reference.
            let fast = suite.predict_graceful(net, batch).unwrap();
            let slow = suite.predict_graceful_uncompiled(net, batch).unwrap();
            assert_eq!(fast.seconds.to_bits(), slow.seconds.to_bits());
            assert_eq!(fast.notes, slow.notes);
        }
    }
    // Every (probe, batch) pair landed in the plan cache exactly once.
    assert_eq!(suite.cached_plans(), probes.len() * 5);
}

/// The training-path contract: fanning the per-kernel classification fits
/// and per-cluster pooled refits over the work-stealing pool must yield a
/// model suite **byte-identical** to serial training at every thread
/// count, including thread counts past the kernel count.
#[test]
fn parallel_training_is_byte_identical_across_thread_counts() {
    use dnnperf::dnn::zoo;
    use dnnperf::model::{Predictor, TrainOptions, Workflow};

    let train = [
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::vgg::vgg11(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&train, std::slice::from_ref(&gpu), &[32]);
    let serial = Workflow::train_opts(&ds, "A100", &TrainOptions::serial()).unwrap();
    assert_eq!(
        serial.kw.to_text(),
        Workflow::train(&ds, "A100").unwrap().kw.to_text()
    );

    let probe = zoo::resnet::resnet50();
    for threads in [1usize, 2, 3, 8, 32] {
        let par = Workflow::train_opts(&ds, "A100", &TrainOptions::with_threads(threads)).unwrap();
        assert_eq!(par.kw, serial.kw, "threads = {threads}");
        assert_eq!(
            par.kw.to_text().into_bytes(),
            serial.kw.to_text().into_bytes(),
            "threads = {threads}: persisted KW models differ"
        );
        assert_eq!(
            par.kw.predict_network(&probe, 32).unwrap().to_bits(),
            serial.kw.predict_network(&probe, 32).unwrap().to_bits(),
            "threads = {threads}"
        );
    }
    // `threads: 0` (auto) resolves to the machine's parallelism and must
    // stay on the same bytes.
    let auto = Workflow::train_opts(&ds, "A100", &TrainOptions::default()).unwrap();
    assert_eq!(auto.kw, serial.kw);
}

/// Sub-chunk determinism: when one kernel group (and one pooled cluster)
/// spans several `FIT_CHUNK` row chunks, the chunked partial accumulators
/// split across workers — and must still fold back to the serial bytes at
/// every thread count. The zoo grids above never put >1024 rows behind a
/// single kernel, so this pins the contract on a synthetic dataset that
/// does.
#[test]
fn training_on_chunk_spanning_groups_is_byte_identical() {
    use dnnperf::linreg::FIT_CHUNK;
    use dnnperf::model::{classify_view, cluster_view};
    use std::sync::Arc;

    let mut rows = Vec::new();
    for (kernel, slope) in [
        ("gemm_big", 2.5e-9),
        ("gemm_close", 2.6e-9),
        ("tiny", 4.0e-9),
    ] {
        // Two kernels with FIT_CHUNK+∆ rows each (their pooled cluster
        // spans ~3 chunks), one small kernel that fits in a chunk.
        let n = if kernel == "tiny" {
            64
        } else {
            FIT_CHUNK + 321
        };
        for i in 1..=n as u64 {
            rows.push(dnnperf::data::KernelRow {
                network: Arc::from("synthetic"),
                gpu: Arc::from("A100"),
                batch: 1,
                layer_index: 0,
                layer_type: Arc::from("conv"),
                kernel: Arc::from(kernel),
                in_elems: 1,
                flops: i * 1000,
                out_elems: 1,
                seconds: slope * (i * 1000) as f64 + 1.0e-6 * ((i % 7) as f64),
            });
        }
    }
    let refs: Vec<&dnnperf::data::KernelRow> = rows.iter().collect();
    let view = dnnperf::data::DatasetView::from_refs(&refs);
    assert!(view.num_rows() > 2 * FIT_CHUNK);

    let serial_classes = classify_view(&view, 1);
    let serial_clusters = cluster_view(&view, &serial_classes, 1.08, 1);
    assert_eq!(
        serial_clusters.cluster_of("gemm_big"),
        serial_clusters.cluster_of("gemm_close"),
        "close slopes must pool into one chunk-spanning cluster"
    );
    for threads in [2usize, 3, 8, 32] {
        let classes = classify_view(&view, threads);
        assert_eq!(classes, serial_classes, "classify threads = {threads}");
        assert_eq!(
            cluster_view(&view, &classes, 1.08, threads),
            serial_clusters,
            "cluster threads = {threads}"
        );
    }
}

/// When ci.sh exports `DNNPERF_CACHE_DIR`, the env-derived options must
/// route collection through that cache — and the cached result must still
/// equal the serial reference. Without the variable the test only checks
/// that `from_env` leaves caching off (unless the user set it).
#[test]
fn env_cache_dir_is_honored() {
    let opts = CollectOptions::from_env();
    match std::env::var_os("DNNPERF_CACHE_DIR") {
        Some(dir) => {
            assert_eq!(opts.cache_dir.as_deref(), Some(std::path::Path::new(&dir)));
            let nets = net_pool();
            let gpu = evaluation_gpus().remove(0);
            let serial = collect(&nets[..2], std::slice::from_ref(&gpu), &[2]);
            // Twice: the second run must be a pure cache hit.
            let (first, _) = collect_opts(&nets[..2], std::slice::from_ref(&gpu), &[2], &opts);
            let (second, stats) = collect_opts(&nets[..2], std::slice::from_ref(&gpu), &[2], &opts);
            assert_eq!(serial, first);
            assert_eq!(serial, second);
            assert_eq!((stats.hits, stats.misses), (1, 0));
        }
        None => assert_eq!(opts.cache_dir, None),
    }
}
