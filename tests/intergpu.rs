//! Integration: the Inter-GPU Kernel-Wise model predicts GPUs it never saw
//! (Figure 14) and supports hypothetical-hardware sweeps (Case Study 1).

use dnnperf::data::collect::collect;
use dnnperf::data::split::split_dataset;
use dnnperf::gpu::{GpuSpec, Profiler};
use dnnperf::linreg::mean_abs_rel_error;
use dnnperf::model::IgkwModel;
use std::collections::HashSet;

fn train_gpus() -> Vec<GpuSpec> {
    ["A100", "A40", "GTX 1080 Ti"]
        .iter()
        .map(|n| GpuSpec::by_name(n).unwrap())
        .collect()
}

#[test]
fn igkw_predicts_unseen_titan_within_paper_band() {
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(5)
        .collect();
    let batch = 256;
    let ds = collect(&zoo, &train_gpus(), &[batch]);
    let (train, test) = split_dataset(&ds, 3);
    let model = IgkwModel::train(&train, &train_gpus()).expect("train IGKW");

    let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    let prof = Profiler::new(titan.clone());
    let test_names: HashSet<String> = test.network_names().into_iter().collect();
    let mut preds = Vec::new();
    let mut meas = Vec::new();
    for net in zoo.iter().filter(|n| test_names.contains(n.name())) {
        if let Ok(trace) = prof.profile(net, batch) {
            preds.push(
                model
                    .predict_network_on(net, batch, &titan)
                    .expect("predict"),
            );
            meas.push(trace.e2e_seconds);
        }
    }
    assert!(preds.len() > 15);
    let e = mean_abs_rel_error(&preds, &meas);
    // Paper: 15.2%. Allow head room for the subset.
    assert!(e < 0.30, "IGKW error on unseen TITAN RTX: {e}");
}

#[test]
fn igkw_bandwidth_sweep_is_monotone_with_diminishing_returns() {
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(8)
        .collect();
    let ds = collect(&zoo, &train_gpus(), &[128]);
    let model = IgkwModel::train(&ds, &train_gpus()).expect("train IGKW");
    let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    let net = dnnperf::dnn::zoo::resnet::resnet50();

    let times: Vec<f64> = (2..=14)
        .map(|i| {
            let g = titan.with_bandwidth(i as f64 * 100.0);
            model.predict_network_on(&net, 128, &g).expect("predict")
        })
        .collect();
    for w in times.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-9),
            "time must not increase with bandwidth"
        );
    }
    let first_gain = times[0] / times[1];
    let last_gain = times[times.len() - 2] / times[times.len() - 1];
    assert!(
        first_gain > last_gain,
        "early bandwidth must help more than late ({first_gain} vs {last_gain})"
    );
}

#[test]
fn igkw_requires_all_training_gpus_present() {
    let nets = [dnnperf::dnn::zoo::resnet::resnet18()];
    let one_gpu = [GpuSpec::by_name("A100").unwrap()];
    let ds = collect(&nets, &one_gpu, &[16]);
    assert!(IgkwModel::train(&ds, &train_gpus()).is_err());
}
