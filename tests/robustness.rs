//! Robustness: the predictors are data-driven, not tuned to the canonical
//! measurement universe. Re-seed the hidden ground-truth timing model and
//! the whole pipeline must keep working.

use dnnperf::data::collect::collect_with;
use dnnperf::data::split::split_dataset;
use dnnperf::gpu::{GpuSpec, Profiler, TimingModel};
use dnnperf::linreg::mean_abs_rel_error;
use dnnperf::model::{KwModel, Predictor};
use std::collections::HashSet;

#[test]
fn kw_model_works_in_alternative_universes() {
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(8)
        .collect();
    let gpu = GpuSpec::by_name("A100").unwrap();
    let batch = 128;

    for seed in [7u64, 0xBEEF, 123_456_789] {
        let timing = TimingModel::with_seed(seed);
        let ds = collect_with(&zoo, std::slice::from_ref(&gpu), &[batch], &timing);
        let (train, test) = split_dataset(&ds, seed);
        let kw = KwModel::train(&train, "A100").expect("train");

        let test_names: HashSet<String> = test.network_names().into_iter().collect();
        let prof = Profiler::with_timing(gpu.clone(), timing.clone());
        let mut preds = Vec::new();
        let mut meas = Vec::new();
        for net in zoo.iter().filter(|n| test_names.contains(n.name())) {
            preds.push(kw.predict_network(net, batch).expect("predict"));
            meas.push(prof.profile(net, batch).expect("fits").e2e_seconds);
        }
        assert!(preds.len() >= 8);
        let e = mean_abs_rel_error(&preds, &meas);
        assert!(e < 0.15, "seed {seed}: KW error {e}");
    }
}

#[test]
fn predictions_differ_across_universes() {
    // Sanity: the model really learns from the data it is given.
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(20)
        .collect();
    let gpu = GpuSpec::by_name("V100").unwrap();
    let net = dnnperf::dnn::zoo::resnet::resnet50();

    let predict_under = |seed: u64| {
        let timing = TimingModel::with_seed(seed);
        let ds = collect_with(&zoo, std::slice::from_ref(&gpu), &[64], &timing);
        KwModel::train(&ds, "V100")
            .expect("train")
            .predict_network(&net, 64)
            .expect("predict")
    };
    let a = predict_under(1);
    let b = predict_under(2);
    assert!(
        (a - b).abs() / a > 0.01,
        "universes too similar: {a} vs {b}"
    );
}
