//! Fault-injection conformance suite for the resilient collection engine.
//!
//! The contract under test: with bounded retries (the default budget
//! matches the fault plan's `max_faulty_attempts`), every *recoverable*
//! fault universe — transient errors, stragglers, corrupted measurements —
//! produces a dataset **byte-identical** to the fault-free run, at any
//! thread count. Panics are isolated to their grid point; corruption that
//! survives an exhausted retry budget is quarantined at ingest, never
//! trained on.

use dnnperf::data::collect::{collect, collect_report_opts, evaluation_gpus};
use dnnperf::data::{csv, dataset_is_wholesome, quarantine_scale_outliers, CollectOptions};
use dnnperf::dnn::{zoo, Network};
use dnnperf::gpu::{FaultKinds, FaultPlan, GpuSpec};
use dnnperf_testkit::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Small, cheap-to-profile networks so the property runs stay fast.
fn net_pool() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ]
}

fn pick<T: Clone>(pool: &[T], indices: &[usize]) -> Vec<T> {
    let mut seen = vec![false; pool.len()];
    let mut out = Vec::new();
    for &i in indices {
        let i = i % pool.len();
        if !seen[i] {
            seen[i] = true;
            out.push(pool[i].clone());
        }
    }
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dnnperf_fault_{tag}_{}_{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recoverable-chaos plan: transients, stragglers AND corrupted
/// measurements, but no panics — everything a bounded retry budget can
/// repair. The straggler delay is shrunk so test wall time stays low (the
/// engine's re-dispatch threshold scales with it).
fn recoverable_chaos(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan {
        kinds: FaultKinds {
            transient: true,
            straggler: true,
            corrupt: true,
            panic: false,
        },
        straggler_delay: Duration::from_millis(2),
        ..FaultPlan::chaos(seed, rate)
    }
}

props! {
    /// The tentpole property: a fault-injected run with retries enabled is
    /// byte-identical to the fault-free run — same rows, same order, same
    /// bits — whatever the seed, rate, fault mix and worker count.
    #[test]
    fn faulty_collection_matches_fault_free(
        net_idx in vec(0usize..4, 1..=3),
        gpu_idx in vec(0usize..5, 1..=2),
        batches in vec(select(vec![1usize, 2, 4]), 1..=2),
        threads in 1usize..9,
        seed in 0u64..1_000_000,
        rate in select(vec![0.15f64, 0.4, 0.8]),
        chaos in select(vec![false, true]),
    ) {
        let nets = pick(&net_pool(), &net_idx);
        let gpus = pick(&evaluation_gpus(), &gpu_idx);
        let reference = collect(&nets, &gpus, &batches);

        let plan = if chaos {
            recoverable_chaos(seed, rate)
        } else {
            FaultPlan::transient_only(seed, rate)
        };
        let opts = CollectOptions::with_threads(threads).faulty(plan);
        let (ds, report) = collect_report_opts(&nets, &gpus, &batches, &opts);

        prop_assert_eq!(&ds, &reference);
        // Every recovery must be accounted: a recovered point implies
        // retries, and nothing may be quarantined or lost outright.
        prop_assert!(report.recovered <= report.retried);
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.panicked, 0);
        prop_assert_eq!(report.quarantined, 0);
        prop_assert_eq!(report.ok as usize, nets.len() * gpus.len() * batches.len());
    }
}

/// The byte-for-byte half of the contract, checked at the CSV layer: the
/// exported files of a fault-injected run are identical to the fault-free
/// export, byte for byte.
#[test]
fn faulty_csv_export_is_byte_identical() {
    let nets = net_pool();
    let gpus = [GpuSpec::by_name("A100").unwrap()];
    let batches = [2usize, 8];

    let reference = collect(&nets, &gpus, &batches);
    let opts = CollectOptions::with_threads(4).faulty(recoverable_chaos(0xD00F, 0.6));
    let (faulty, report) = collect_report_opts(&nets, &gpus, &batches, &opts);
    assert_eq!(faulty, reference);
    assert!(
        report.retried > 0,
        "rate 0.6 must actually inject something: {report:?}"
    );

    let (ref_dir, faulty_dir) = (scratch_dir("csv_ref"), scratch_dir("csv_faulty"));
    csv::write_dataset(&reference, &ref_dir).unwrap();
    csv::write_dataset(&faulty, &faulty_dir).unwrap();
    for file in ["networks.csv", "layers.csv", "kernels.csv"] {
        let a = std::fs::read(ref_dir.join(file)).unwrap();
        let b = std::fs::read(faulty_dir.join(file)).unwrap();
        assert_eq!(a, b, "{file} differs between fault-free and faulty runs");
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&faulty_dir);
}

/// Panic isolation: with a panic-only fault plan, a panicking grid point
/// loses exactly that point — the rest of the campaign completes, and the
/// report says who died. The expected casualties are computed from the
/// plan itself (decisions are a pure function of the grid cell).
#[test]
fn panics_lose_only_their_grid_point() {
    let nets = net_pool();
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("V100").unwrap(),
    ];
    let batches = [4usize];
    let plan = FaultPlan {
        kinds: FaultKinds {
            transient: false,
            straggler: false,
            corrupt: false,
            panic: true,
        },
        ..FaultPlan::chaos(0xBAD, 0.5)
    };

    // Predict the casualty list: panic-only plans kill a point iff the
    // plan fires on either replicate of its first attempt (fault-stream
    // indices 0 and 1; panics are not retried).
    let mut doomed = Vec::new();
    for gpu in &gpus {
        for net in &nets {
            for &batch in &batches {
                if plan.decide(&gpu.name, net.name(), batch, 0).is_some()
                    || plan.decide(&gpu.name, net.name(), batch, 1).is_some()
                {
                    doomed.push((gpu.name.clone(), net.name().to_string(), batch as u32));
                }
            }
        }
    }
    assert!(
        !doomed.is_empty() && doomed.len() < nets.len() * gpus.len(),
        "seed must kill some but not all points, got {}/{}",
        doomed.len(),
        nets.len() * gpus.len()
    );

    for threads in [1usize, 4] {
        let opts = CollectOptions::with_threads(threads).faulty(plan.clone());
        let (ds, report) = collect_report_opts(&nets, &gpus, &batches, &opts);
        assert_eq!(report.panicked as usize, doomed.len());
        assert_eq!(report.dropped as usize, doomed.len());
        assert_eq!(report.ok as usize, nets.len() * gpus.len() - doomed.len());
        // The survivors' rows are intact and the casualties are absent.
        let reference = collect(&nets, &gpus, &batches);
        for row in &ds.networks {
            assert!(reference.networks.contains(row));
        }
        for (gpu, net, batch) in &doomed {
            assert!(
                !ds.networks.iter().any(|r| {
                    &*r.gpu == gpu.as_str() && &*r.network == net.as_str() && r.batch == *batch
                }),
                "doomed point ({gpu}, {net}, {batch}) must be absent"
            );
        }
        assert!(dataset_is_wholesome(&ds));
    }
}

/// With the retry budget forced to zero, corrupted measurements can reach
/// ingest — NaN/Inf/negative ones are rejected at the trace boundary
/// (dropping the point), and finite scale outliers are quarantined by the
/// MAD screen. Either way, nothing poisoned survives into the dataset.
#[test]
fn unretried_corruption_is_quarantined_not_trained_on() {
    let nets: Vec<Network> = (1..7)
        .map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.25, 1.0))
        .collect();
    let gpus = [GpuSpec::by_name("A100").unwrap()];
    let plan = FaultPlan {
        kinds: FaultKinds {
            transient: false,
            straggler: false,
            corrupt: true,
            panic: false,
        },
        ..FaultPlan::chaos(0xC0DE3, 0.9)
    };
    let opts = CollectOptions::with_threads(2).faulty(plan).with_retries(0);
    let (ds, report) = collect_report_opts(&nets, &gpus, &[2], &opts);

    assert!(
        report.corrupt_measurements + report.quarantined > 0,
        "rate 0.9 corruption must leave a mark: {report:?}"
    );
    assert!(
        report.quarantined > 0,
        "expected at least one finite scale outlier to reach the screen: {report:?}"
    );
    // Whatever survived is clean: wholesome, and the screen finds nothing
    // more to remove (idempotence).
    assert!(dataset_is_wholesome(&ds));
    let mut again = ds.clone();
    assert_eq!(quarantine_scale_outliers(&mut again), 0);
    assert_eq!(again, ds);

    // The same universe with the default retry budget recovers everything.
    let opts = CollectOptions::with_threads(2).faulty(FaultPlan {
        kinds: FaultKinds {
            transient: false,
            straggler: false,
            corrupt: true,
            panic: false,
        },
        ..FaultPlan::chaos(0xC0DE3, 0.9)
    });
    let (healed, report) = collect_report_opts(&nets, &gpus, &[2], &opts);
    assert_eq!(healed, collect(&nets, &gpus, &[2]));
    assert_eq!(report.quarantined, 0);
    assert!(report.recovered > 0);
}

/// Fault-injected runs get their own cache keys: a faulty run must never
/// serve (or poison) the clean run's cache entry, while the clean key
/// stays stable so warm reruns still hit.
#[test]
fn fault_plans_partition_the_cache() {
    let nets = vec![zoo::mobilenet::mobilenet_v2(0.25, 1.0)];
    let gpus = [GpuSpec::by_name("A100").unwrap()];
    let dir = scratch_dir("cache_split");

    let clean = CollectOptions::serial().cached_at(&dir);
    let faulty = clean.clone().faulty(FaultPlan::transient_only(7, 0.5));

    let (ds_clean, r1) = collect_report_opts(&nets, &gpus, &[2], &clean);
    assert_eq!((r1.cache.hits, r1.cache.misses), (0, 1));
    // The faulty run must miss (different key), not reuse the clean entry.
    let (ds_faulty, r2) = collect_report_opts(&nets, &gpus, &[2], &faulty);
    assert_eq!((r2.cache.hits, r2.cache.misses), (0, 1));
    assert_eq!(ds_faulty, ds_clean, "recoverable faults converge");
    // Reruns of each flavour hit their own entries.
    let (_, r3) = collect_report_opts(&nets, &gpus, &[2], &clean);
    assert_eq!((r3.cache.hits, r3.cache.misses), (1, 0));
    let (_, r4) = collect_report_opts(&nets, &gpus, &[2], &faulty);
    assert_eq!((r4.cache.hits, r4.cache.misses), (1, 0));
    let _ = std::fs::remove_dir_all(&dir);
}
