//! Integration: the three case studies hold together end to end.

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::{GpuSpec, Profiler};
use dnnperf::model::{KwModel, Predictor};
use dnnperf::sched::{best_gpu, brute_force_schedule, evaluate_makespan, JobTimes};
use dnnperf::simkit::{disagg::layer_work_from_model, simulate_disaggregated, DisaggConfig};

fn training_subset() -> Vec<dnnperf::dnn::Network> {
    dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(6)
        .collect()
}

#[test]
fn disaggregated_memory_speedup_saturates() {
    // Case Study 2 (Figure 17): more link bandwidth helps, then stops
    // helping once the GPU is compute-bound.
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&training_subset(), std::slice::from_ref(&gpu), &[4]);
    let kw = KwModel::train(&ds, "A100").expect("train");
    let work = layer_work_from_model(&kw, &zoo::resnet::resnet50(), 1);

    let t = |bw: f64| {
        simulate_disaggregated(
            &work,
            DisaggConfig {
                link_bandwidth_gbps: bw,
                lookahead: 2,
            },
        )
        .total_seconds
    };
    let t16 = t(16.0);
    let t128 = t(128.0);
    let t512 = t(512.0);
    assert!(
        t16 / t128 > 1.3,
        "128 GB/s should clearly beat 16 GB/s: {}",
        t16 / t128
    );
    assert!(
        t128 / t512 < 1.4,
        "beyond 128 GB/s gains should shrink: {}",
        t128 / t512
    );
}

#[test]
fn model_routes_jobs_to_the_faster_gpu() {
    // Case Study 3 (Figure 18).
    let gpus = [
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("TITAN RTX").unwrap(),
    ];
    let batch = 128;
    let ds = collect(&training_subset(), &gpus, &[batch]);
    let models: Vec<KwModel> = gpus
        .iter()
        .map(|g| KwModel::train(&ds, &g.name).expect("train"))
        .collect();

    let jobs = [
        zoo::resnet::resnet50(),
        zoo::resnet::resnet77(),
        zoo::densenet::densenet121(),
        zoo::densenet::densenet169(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
    ];
    let mut correct = 0;
    for net in &jobs {
        let pred: Vec<f64> = models
            .iter()
            .map(|m| m.predict_network(net, batch).expect("predict"))
            .collect();
        let meas: Vec<f64> = gpus
            .iter()
            .map(|g| {
                Profiler::new(g.clone())
                    .profile(net, batch)
                    .expect("fits")
                    .e2e_seconds
            })
            .collect();
        if best_gpu(&pred) == best_gpu(&meas) {
            correct += 1;
        }
    }
    assert!(
        correct >= jobs.len() - 1,
        "correct GPU choices: {correct}/{}",
        jobs.len()
    );
}

#[test]
fn predicted_schedule_is_near_oracle() {
    // Case Study 3 (Figure 19).
    let gpus = [
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("TITAN RTX").unwrap(),
    ];
    let batch = 128;
    let ds = collect(&training_subset(), &gpus, &[batch]);
    let models: Vec<KwModel> = gpus
        .iter()
        .map(|g| KwModel::train(&ds, &g.name).expect("train"))
        .collect();

    let queue = [
        zoo::resnet::resnet44(),
        zoo::resnet::resnet50(),
        zoo::resnet::resnet62(),
        zoo::densenet::densenet121(),
        zoo::densenet::densenet169(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
    ];
    let job = |times: &dyn Fn(&dnnperf::dnn::Network) -> Vec<f64>| -> Vec<JobTimes> {
        queue
            .iter()
            .map(|n| JobTimes {
                name: n.name().to_string(),
                per_gpu: times(n),
            })
            .collect()
    };
    let predicted = job(&|n| {
        models
            .iter()
            .map(|m| m.predict_network(n, batch).expect("predict"))
            .collect()
    });
    let actual = job(&|n| {
        gpus.iter()
            .map(|g| {
                Profiler::new(g.clone())
                    .profile(n, batch)
                    .expect("fits")
                    .e2e_seconds
            })
            .collect()
    });

    let planned = brute_force_schedule(&predicted);
    let achieved = evaluate_makespan(&actual, &planned.assignment);
    let oracle = brute_force_schedule(&actual).makespan;
    assert!(achieved >= oracle - 1e-12);
    assert!(
        achieved / oracle < 1.15,
        "planned makespan {achieved} vs oracle {oracle}"
    );
}
