//! End-to-end tests of the `dnnperf` command-line tool: the full
//! collect -> train -> ship -> predict workflow through the binary.

use std::path::PathBuf;
use std::process::Command;

fn dnnperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnnperf"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnnperf_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn list_gpus_prints_table1() {
    let out = dnnperf().arg("list-gpus").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for gpu in ["A100", "A40", "TITAN RTX", "Quadro P620"] {
        assert!(stdout.contains(gpu), "missing {gpu} in:\n{stdout}");
    }
}

#[test]
fn list_networks_filters_by_family() {
    let out = dnnperf()
        .args(["list-networks", "--family", "vgg"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("VGG-16"));
    assert!(!stdout.contains("ResNet-50"));
}

#[test]
fn collect_train_predict_round_trip() {
    let dir = temp_dir("roundtrip");
    let data = dir.join("data");
    let model = dir.join("kw.model");

    let out = dnnperf()
        .args([
            "collect",
            "--gpu",
            "V100",
            "--batch",
            "64",
            "--every",
            "40",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.join("kernels.csv").exists());

    let out = dnnperf()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--gpu",
            "V100",
            "--model",
            "kw",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&model).unwrap();
    assert!(text.starts_with("dnnperf-model v1 kw"));

    let out = dnnperf()
        .args([
            "predict",
            "--model",
            model.to_str().unwrap(),
            "--network",
            "ResNet-50",
            "--batch",
            "64",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let ms: f64 = stdout.trim().trim_end_matches(" ms").parse().unwrap();
    assert!(
        ms > 1.0 && ms < 10_000.0,
        "implausible prediction: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dnnperf().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_required_flag_is_reported() {
    let out = dnnperf().args(["train", "--gpu", "A100"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--data"), "{stderr}");
}

#[test]
fn predict_rejects_unknown_network() {
    let dir = temp_dir("badnet");
    let model = dir.join("m.model");
    std::fs::write(&model, "dnnperf-model v1 e2e\ngpu A100\nfit 1 0 1 2\n").unwrap();
    let out = dnnperf()
        .args([
            "predict",
            "--model",
            model.to_str().unwrap(),
            "--network",
            "NotANetwork",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown network"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
