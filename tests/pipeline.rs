//! End-to-end integration: collect a dataset, split it, train all three
//! single-GPU models, and verify the paper's headline accuracy ordering
//! (Figures 11-13): E2E and LW are coarse, KW is accurate.

use dnnperf::data::collect::collect;
use dnnperf::data::split::split_dataset;
use dnnperf::gpu::GpuSpec;
use dnnperf::linreg::mean_abs_rel_error;
use dnnperf::model::workflow::predictions_vs_measurements;
use dnnperf::model::{Predictor, Workflow};
use std::collections::HashSet;

fn error_of<P: Predictor>(
    model: &P,
    nets: &[dnnperf::dnn::Network],
    batch: usize,
    measured: &dnnperf::data::Dataset,
) -> f64 {
    let pairs = predictions_vs_measurements(model, nets, batch, measured);
    assert!(
        pairs.len() > 10,
        "too few evaluation pairs: {}",
        pairs.len()
    );
    let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
    let m: Vec<f64> = pairs.iter().map(|x| x.2).collect();
    mean_abs_rel_error(&p, &m)
}

#[test]
fn single_gpu_models_reproduce_paper_accuracy_ordering() {
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(4)
        .collect();
    let batch = 256;
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&zoo, &[gpu], &[batch]);
    let (train, test) = split_dataset(&ds, 11);
    let test_names: HashSet<String> = test.network_names().into_iter().collect();
    let test_nets: Vec<_> = zoo
        .iter()
        .filter(|n| test_names.contains(n.name()))
        .cloned()
        .collect();

    let suite = Workflow::train(&train, "A100").expect("train suite");
    let e_e2e = error_of(&suite.e2e, &test_nets, batch, &test);
    let e_lw = error_of(&suite.lw, &test_nets, batch, &test);
    let e_kw = error_of(&suite.kw, &test_nets, batch, &test);

    // The paper's bands: E2E ~35%, LW ~28%, KW ~7% on A100.
    assert!(e_kw < 0.15, "KW error {e_kw}");
    assert!(e_lw < 0.60, "LW error {e_lw}");
    assert!(e_e2e < 0.80, "E2E error {e_e2e}");
    assert!(e_kw < e_lw, "KW ({e_kw}) must beat LW ({e_lw})");
    assert!(e_kw < e_e2e, "KW ({e_kw}) must beat E2E ({e_e2e})");
}

#[test]
fn kw_kernel_and_model_counts_match_paper_scale() {
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(3)
        .collect();
    let ds = collect(&zoo, &[GpuSpec::by_name("A100").unwrap()], &[128]);
    let kw = dnnperf::model::KwModel::train(&ds, "A100").expect("train");
    // Paper: 182 kernels merged into 83 regressions on A100.
    assert!(
        (100..=260).contains(&kw.num_kernels()),
        "kernels: {}",
        kw.num_kernels()
    );
    assert!(kw.num_models() < kw.num_kernels());
    assert!(
        kw.num_models() > kw.num_kernels() / 5,
        "models: {}",
        kw.num_models()
    );
}

#[test]
fn kw_transfers_across_batch_sizes() {
    // The paper trains at one batch size (O3). Train at 256, evaluate at 64.
    let zoo: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(6)
        .collect();
    let gpu = GpuSpec::by_name("V100").unwrap();
    let train_ds = collect(&zoo, std::slice::from_ref(&gpu), &[256]);
    let (train, test) = split_dataset(&train_ds, 5);
    let test_names: HashSet<String> = test.network_names().into_iter().collect();
    let test_nets: Vec<_> = zoo
        .iter()
        .filter(|n| test_names.contains(n.name()))
        .cloned()
        .collect();
    let eval_ds = collect(&test_nets, &[gpu], &[64]);

    let kw = dnnperf::model::KwModel::train(&train, "V100").expect("train");
    let e = error_of(&kw, &test_nets, 64, &eval_ds);
    assert!(e < 0.25, "cross-batch KW error {e}");
}
