//! Integration: the CSV dataset format is a faithful interchange — models
//! trained from re-loaded CSV files predict identically to models trained
//! on the in-memory dataset (the artifact's "prediction dataset" workflow).

use dnnperf::data::collect::collect;
use dnnperf::data::csv::{read_dataset, write_dataset};
use dnnperf::gpu::GpuSpec;
use dnnperf::model::{KwModel, LwModel, Predictor};

#[test]
fn models_trained_from_csv_match_in_memory_training() {
    let nets = [
        dnnperf::dnn::zoo::resnet::resnet18(),
        dnnperf::dnn::zoo::resnet::resnet50(),
        dnnperf::dnn::zoo::vgg::vgg11(),
        dnnperf::dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);

    let dir = std::env::temp_dir().join("dnnperf_csv_pipeline_test");
    write_dataset(&ds, &dir).expect("write csv");
    let loaded = read_dataset(&dir).expect("read csv");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(ds.kernels.len(), loaded.kernels.len());

    let target = dnnperf::dnn::zoo::resnet::resnet34();
    let kw_mem = KwModel::train(&ds, "A100").expect("train mem");
    let kw_csv = KwModel::train(&loaded, "A100").expect("train csv");
    let a = kw_mem.predict_network(&target, 32).expect("predict");
    let b = kw_csv.predict_network(&target, 32).expect("predict");
    assert_eq!(
        a, b,
        "KW predictions must survive the CSV round trip exactly"
    );

    let lw_mem = LwModel::train(&ds, "A100").expect("train mem");
    let lw_csv = LwModel::train(&loaded, "A100").expect("train csv");
    assert_eq!(
        lw_mem.predict_network(&target, 32).unwrap(),
        lw_csv.predict_network(&target, 32).unwrap()
    );
}

#[test]
fn dedup_after_merging_overlapping_collections_is_clean() {
    let nets = [dnnperf::dnn::zoo::resnet::resnet18()];
    let gpus = [GpuSpec::by_name("V100").unwrap()];
    let a = collect(&nets, &gpus, &[16, 32]);
    let b = collect(&nets, &gpus, &[32, 64]); // overlaps at batch 32
    let mut merged = a.clone();
    merged.merge(b);
    merged.dedup();
    assert_eq!(merged.networks.len(), 3); // 16, 32, 64
    let kernels_per_run = a.kernels.len() / 2;
    assert_eq!(merged.kernels.len(), 3 * kernels_per_run);
}
