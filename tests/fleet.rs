//! Conformance suite for the fleet what-if engine (ROADMAP item 5).
//!
//! The fleet simulator's value is that its answers can be *trusted*:
//! a capacity-planning sweep is only as good as the invariants behind
//! it. This suite pins the contract down:
//!
//! * **Conservation** — for every placement × batching × arrival
//!   process × seed combination, every offered request is accounted for:
//!   admitted or rejected, and every admitted request completed or in
//!   flight at the horizon.
//! * **Determinism** — the same seed yields a byte-identical
//!   [`FleetReport`] JSON document, run to run and across training
//!   thread counts (training is byte-identical at any parallelism, so
//!   everything downstream of the trained suites must be too).
//! * **Monotonicity** — offered load up ⇒ p99 sojourn non-decreasing
//!   under FIFO, on the same compressed arrival sequence.
//! * **Policy-independence of demand** — on homogeneous pools the total
//!   admitted service demand is a property of the workload, not of the
//!   placement or batching policy.
//! * **Oracle fidelity** — service times and degradation notes that
//!   reach the report are bit-identical to what the model stack says
//!   directly ([`Workflow::predict_graceful`], `IgkwModel`), including
//!   the IGKW fallback for a never-profiled GPU pool.

use dnnperf::data::collect::collect;
use dnnperf::dnn::{zoo, Network};
use dnnperf::gpu::GpuSpec;
use dnnperf::model::{IgkwModel, PredictionOracle, TrainOptions, Workflow};
use dnnperf::simkit::{
    simulate_fleet, ArrivalProcess, BatchingPolicy, FleetConfig, LeastLoaded, NetworkAffinity,
    NoBatching, PlacementPolicy, PoolSpec, RequestClass, RoundRobin, SizeCap, TimeWindow,
    WorkloadSpec,
};
use std::sync::{Arc, OnceLock};

/// Small, cheap-to-train networks so the suite stays fast.
fn small_nets() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
    ]
}

fn train_suite(gpu: &str) -> Arc<Workflow> {
    let spec = GpuSpec::by_name(gpu).unwrap();
    let ds = collect(&small_nets(), &[spec], &[1, 8]);
    Arc::new(Workflow::train(&ds, gpu).unwrap())
}

/// One oracle covering an A100 suite and a V100 suite, shared across
/// tests (suites memoize their own compiled plans).
fn oracle() -> &'static PredictionOracle {
    static ORACLE: OnceLock<PredictionOracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let mut o = PredictionOracle::new();
        o.add_suite(train_suite("A100"));
        o.add_suite(train_suite("V100"));
        o
    })
}

fn classes() -> Vec<RequestClass> {
    vec![
        RequestClass {
            tenant: "imaging".into(),
            network: 0,
            batch: 1,
            weight: 3.0,
        },
        RequestClass {
            tenant: "imaging".into(),
            network: 1,
            batch: 8,
            weight: 1.0,
        },
        RequestClass {
            tenant: "edge".into(),
            network: 2,
            batch: 1,
            weight: 2.0,
        },
    ]
}

fn workload(arrivals: ArrivalProcess, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        classes: classes(),
        arrivals,
        seed,
        horizon_seconds: 0.3,
    }
}

fn two_pool_fleet(queue_cap: Option<usize>) -> FleetConfig {
    FleetConfig {
        pools: vec![
            PoolSpec {
                name: "a100-pool".into(),
                gpu: GpuSpec::by_name("A100").unwrap(),
                gpus: 2,
                queue_cap,
            },
            PoolSpec {
                name: "v100-pool".into(),
                gpu: GpuSpec::by_name("V100").unwrap(),
                gpus: 1,
                queue_cap,
            },
        ],
        slo_seconds: 0.02,
        queue_samples: 5,
    }
}

fn placements() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(RoundRobin::default()),
        Box::new(LeastLoaded),
        Box::new(NetworkAffinity),
    ]
}

fn batchings() -> Vec<Box<dyn BatchingPolicy>> {
    vec![
        Box::new(NoBatching),
        Box::new(SizeCap { max_batch: 3 }),
        Box::new(TimeWindow {
            window_seconds: 0.002,
            max_batch: 4,
        }),
    ]
}

/// The headline property: conservation and byte-identical replay for
/// every policy × batching × arrival × seed combination.
#[test]
fn conservation_and_replay_hold_for_every_policy_combination() {
    let oracle = oracle();
    let catalog = small_nets();
    let arrival_kinds = [
        ArrivalProcess::Poisson { rate_rps: 500.0 },
        ArrivalProcess::ClosedLoop {
            clients: 5,
            think_seconds: 0.001,
        },
    ];
    for seed in [1u64, 7, 42] {
        for arrivals in arrival_kinds {
            for (pi, _) in placements().iter().enumerate() {
                for (bi, _) in batchings().iter().enumerate() {
                    let wl = workload(arrivals, seed);
                    let cfg = two_pool_fleet(Some(6));
                    let run = || {
                        simulate_fleet(
                            &catalog,
                            &wl,
                            &cfg,
                            placements()[pi].as_mut(),
                            batchings()[bi].as_ref(),
                            oracle,
                        )
                        .unwrap()
                    };
                    let a = run();
                    let b = run();
                    assert!(
                        a.conservation_ok(),
                        "conservation violated: seed {seed} placement {} batching {}\n{a:?}",
                        a.placement,
                        a.batching
                    );
                    assert!(a.offered > 0, "workload offered nothing: {a:?}");
                    assert_eq!(
                        a.to_json(),
                        b.to_json(),
                        "replay diverged: seed {seed} placement {} batching {}",
                        a.placement,
                        a.batching
                    );
                }
            }
        }
    }
}

/// Training parallelism must not leak into simulation output: suites
/// trained serially and with 8 threads drive byte-identical reports.
#[test]
fn reports_are_byte_identical_across_training_thread_counts() {
    let catalog = small_nets();
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&catalog, std::slice::from_ref(&gpu), &[1, 8]);
    let report_for = |opts: &TrainOptions| {
        let suite = Arc::new(Workflow::train_opts(&ds, "A100", opts).unwrap());
        let mut o = PredictionOracle::new();
        o.add_suite(suite);
        let wl = workload(ArrivalProcess::Poisson { rate_rps: 400.0 }, 11);
        let cfg = FleetConfig {
            pools: vec![PoolSpec {
                name: "a100".into(),
                gpu: gpu.clone(),
                gpus: 2,
                queue_cap: Some(8),
            }],
            slo_seconds: 0.02,
            queue_samples: 4,
        };
        simulate_fleet(
            &catalog,
            &wl,
            &cfg,
            &mut RoundRobin::default(),
            &SizeCap { max_batch: 2 },
            &o,
        )
        .unwrap()
        .to_json()
    };
    let serial = report_for(&TrainOptions::serial());
    let parallel = report_for(&TrainOptions::with_threads(8));
    assert_eq!(serial, parallel);
}

/// Offered load up ⇒ p99 sojourn non-decreasing under FIFO. One GPU, no
/// batching, unbounded queue: the same seed replays the identical class
/// sequence on a compressed time axis, so this is a sample-wise
/// comparison, not a statistical one.
#[test]
fn p99_sojourn_is_monotone_in_offered_load_under_fifo() {
    let oracle = oracle();
    let catalog = small_nets();
    let cfg = FleetConfig {
        pools: vec![PoolSpec {
            name: "a100".into(),
            gpu: GpuSpec::by_name("A100").unwrap(),
            gpus: 1,
            queue_cap: None,
        }],
        slo_seconds: 0.02,
        queue_samples: 4,
    };
    let mut last_p99 = 0.0f64;
    let mut p99s = Vec::new();
    for rate in [50.0, 150.0, 450.0, 1350.0] {
        let wl = workload(ArrivalProcess::Poisson { rate_rps: rate }, 21);
        let r = simulate_fleet(
            &catalog,
            &wl,
            &cfg,
            &mut RoundRobin::default(),
            &NoBatching,
            oracle,
        )
        .unwrap();
        assert!(r.conservation_ok());
        assert!(
            r.p99_sojourn_seconds >= last_p99,
            "p99 fell when load rose: {p99s:?} then {} at {rate} rps",
            r.p99_sojourn_seconds
        );
        last_p99 = r.p99_sojourn_seconds;
        p99s.push(r.p99_sojourn_seconds);
    }
    assert!(
        p99s.last().unwrap() > p99s.first().unwrap(),
        "overload never showed up in the tail: {p99s:?}"
    );
}

/// On homogeneous pools with unbounded queues and open-loop arrivals,
/// total admitted service demand is a pure property of the workload:
/// identical to the bit across every placement × batching combination.
#[test]
fn service_demand_is_policy_independent_on_homogeneous_pools() {
    let oracle = oracle();
    let catalog = small_nets();
    let cfg = FleetConfig {
        pools: (0..2)
            .map(|i| PoolSpec {
                name: format!("a100-{i}"),
                gpu: GpuSpec::by_name("A100").unwrap(),
                gpus: 1,
                queue_cap: None,
            })
            .collect(),
        slo_seconds: 0.02,
        queue_samples: 4,
    };
    let wl = workload(ArrivalProcess::Poisson { rate_rps: 600.0 }, 5);
    let mut demands = Vec::new();
    let mut offereds = Vec::new();
    for (pi, _) in placements().iter().enumerate() {
        for (bi, _) in batchings().iter().enumerate() {
            let r = simulate_fleet(
                &catalog,
                &wl,
                &cfg,
                placements()[pi].as_mut(),
                batchings()[bi].as_ref(),
                oracle,
            )
            .unwrap();
            assert!(r.conservation_ok());
            assert_eq!(r.rejected, 0, "unbounded queues must admit everything");
            demands.push(r.service_demand_seconds.to_bits());
            offereds.push(r.offered);
        }
    }
    assert!(
        demands.windows(2).all(|w| w[0] == w[1]),
        "service demand varied across policies: {demands:?}"
    );
    assert!(offereds.windows(2).all(|w| w[0] == w[1]));
}

/// Satellite: degradation notes must flow through the fleet path
/// unchanged. A suite trained on VGG only prices ResNet through every
/// ladder rung; the fleet report's per-class seconds and note strings
/// must bit-match `Workflow::predict_graceful` directly.
#[test]
fn degradation_notes_reach_the_report_bit_identically() {
    let vgg = vec![zoo::vgg::vgg11(), zoo::vgg::vgg13(), zoo::vgg::vgg16()];
    let gpu = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&vgg, std::slice::from_ref(&gpu), &[8]);
    let suite = Arc::new(Workflow::train(&ds, "A100").unwrap());
    let mut o = PredictionOracle::new();
    o.add_suite(Arc::clone(&suite));

    let catalog = vec![zoo::resnet::resnet18()];
    let wl = WorkloadSpec {
        classes: vec![RequestClass {
            tenant: "probe".into(),
            network: 0,
            batch: 8,
            weight: 1.0,
        }],
        arrivals: ArrivalProcess::Poisson { rate_rps: 50.0 },
        seed: 3,
        horizon_seconds: 0.3,
    };
    let cfg = FleetConfig {
        pools: vec![PoolSpec {
            name: "a100".into(),
            gpu,
            gpus: 1,
            queue_cap: None,
        }],
        slo_seconds: 0.05,
        queue_samples: 2,
    };
    let r = simulate_fleet(
        &catalog,
        &wl,
        &cfg,
        &mut RoundRobin::default(),
        &NoBatching,
        &o,
    )
    .unwrap();

    let direct = suite.predict_graceful(&catalog[0], 8).unwrap();
    assert!(!direct.notes.is_empty(), "probe must actually degrade");
    assert_eq!(
        r.pools[0].class_seconds[0].to_bits(),
        direct.seconds.to_bits(),
        "fleet-path seconds diverged from predict_graceful"
    );
    let mut want_notes: Vec<String> = direct.notes.iter().map(|n| n.to_string()).collect();
    want_notes.sort();
    want_notes.dedup();
    assert_eq!(r.degradation_notes, want_notes);
    assert!(r.completed > 0);
    assert_eq!(
        r.pools[0].degraded_requests, r.pools[0].completed,
        "every completed request leaned on the ladder"
    );
    assert_eq!(r.pools[0].igkw_requests, 0);
}

/// A pool of a never-profiled GPU is priced by the IGKW fallback, is
/// flagged as such per request, and its per-class seconds bit-match the
/// IGKW model directly.
#[test]
fn igkw_fallback_pool_is_priced_and_flagged() {
    let nets = small_nets();
    let train_gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("GTX 1080 Ti").unwrap(),
    ];
    let ds = collect(&nets, &train_gpus, &[1, 8]);
    let igkw = IgkwModel::train(&ds, &train_gpus).unwrap();
    let mut o = PredictionOracle::new();
    o.add_suite(train_suite("A100"));
    o.set_igkw(igkw.clone());

    let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    let wl = workload(ArrivalProcess::Poisson { rate_rps: 300.0 }, 13);
    let cfg = FleetConfig {
        pools: vec![
            PoolSpec {
                name: "a100".into(),
                gpu: GpuSpec::by_name("A100").unwrap(),
                gpus: 1,
                queue_cap: None,
            },
            PoolSpec {
                name: "titan".into(),
                gpu: titan.clone(),
                gpus: 1,
                queue_cap: None,
            },
        ],
        slo_seconds: 0.05,
        queue_samples: 2,
    };
    let r = simulate_fleet(
        &nets,
        &wl,
        &cfg,
        &mut RoundRobin::default(),
        &NoBatching,
        &o,
    )
    .unwrap();
    assert!(r.conservation_ok());
    // The trained pool never reports IGKW pricing; the unprofiled pool
    // reports it for every completed request.
    assert_eq!(r.pools[0].igkw_requests, 0);
    assert!(r.pools[1].completed > 0);
    assert_eq!(r.pools[1].igkw_requests, r.pools[1].completed);
    for (ci, class) in classes().iter().enumerate() {
        let want = igkw
            .predict_network_on(&nets[class.network], class.batch, &titan)
            .unwrap();
        assert_eq!(
            r.pools[1].class_seconds[ci].to_bits(),
            want.to_bits(),
            "IGKW fleet-path seconds diverged for class {ci}"
        );
    }
}
