//! End-to-end fusion integration: the data-driven KW model absorbs a
//! fused-runtime deployment without any model change, because it learns the
//! fused layer-to-kernel mapping straight from the fused traces.

use dnnperf::gpu::{Fusion, GpuSpec, Profiler};

#[test]
fn kw_model_trained_on_fused_traces_predicts_fused_runtimes() {
    use dnnperf::data::collect::trace_rows;
    use dnnperf::data::Dataset;
    use dnnperf::model::{KwModel, Predictor};

    let gpu = GpuSpec::by_name("A100").unwrap();
    let prof = Profiler::new(gpu).with_fusion(Fusion::ConvBnAct);
    let train_nets = [
        dnnperf::dnn::zoo::resnet::resnet18(),
        dnnperf::dnn::zoo::resnet::resnet34(),
        dnnperf::dnn::zoo::resnet::resnet50(),
        dnnperf::dnn::zoo::resnet::resnet101(),
        dnnperf::dnn::zoo::densenet::densenet121(),
        dnnperf::dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let mut ds = Dataset::new();
    for net in &train_nets {
        let (n, l, k) = trace_rows(&prof.profile(net, 64).unwrap(), net);
        ds.networks.push(n);
        ds.layers.extend(l);
        ds.kernels.extend(k);
    }
    let kw = KwModel::train(&ds, "A100").unwrap();

    let held_out = dnnperf::dnn::zoo::resnet::resnet77();
    let meas = prof.profile(&held_out, 64).unwrap().e2e_seconds;
    let pred = kw.predict_network(&held_out, 64).unwrap();
    let err = (pred - meas).abs() / meas;
    assert!(err < 0.25, "KW error on fused runtime: {err}");
}
