//! Pluggable placement and batching policies for the fleet simulator.
//!
//! Both traits are deliberately small and deterministic: a placement
//! policy maps one request to a pool index given a snapshot of every
//! pool's load; a batching policy is a pair of static knobs (group-size
//! cap, accumulation window) the dispatcher interprets. Policies must
//! not carry hidden randomness — determinism of the whole simulation
//! (same seed ⇒ byte-identical report) depends on it.

use crate::workload::RequestClass;

/// A read-only snapshot of one pool's state at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolView {
    /// Index of the pool in the fleet configuration.
    pub index: usize,
    /// Requests waiting (dispatch queue plus batching buffers).
    pub queued: usize,
    /// Requests currently being served on the pool's GPUs.
    pub in_service: usize,
    /// GPUs currently idle.
    pub free_gpus: usize,
    /// Total GPUs in the pool.
    pub total_gpus: usize,
}

/// Chooses the pool for each admitted request.
pub trait PlacementPolicy {
    /// A short stable name, recorded in the report.
    fn name(&self) -> &'static str;

    /// The pool index for `class` given the current `pools` snapshot.
    /// Must return a valid index into `pools`; must be deterministic in
    /// its inputs and internal state.
    fn place(&mut self, class: &RequestClass, pools: &[PoolView]) -> usize;
}

/// Cycles through pools in order, ignoring load.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin {
    next: usize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, _class: &RequestClass, pools: &[PoolView]) -> usize {
        let i = self.next % pools.len();
        self.next = (self.next + 1) % pools.len();
        i
    }
}

/// Picks the pool with the fewest requests queued or in service, ties
/// broken by lowest index.
#[derive(Debug, Default, Clone, Copy)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, _class: &RequestClass, pools: &[PoolView]) -> usize {
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for p in pools {
            let load = p.queued + p.in_service;
            if load < best_load {
                best_load = load;
                best = p.index;
            }
        }
        best
    }
}

/// Pins each network to one pool (`network % pools`), so a pool's plan
/// working set stays small and batching buffers fill faster.
#[derive(Debug, Default, Clone, Copy)]
pub struct NetworkAffinity;

impl PlacementPolicy for NetworkAffinity {
    fn name(&self) -> &'static str {
        "network-affinity"
    }

    fn place(&mut self, class: &RequestClass, pools: &[PoolView]) -> usize {
        class.network % pools.len()
    }
}

/// How the dispatcher may coalesce queued same-class requests into one
/// GPU launch.
pub trait BatchingPolicy {
    /// A short stable name, recorded in the report.
    fn name(&self) -> &'static str;

    /// Most requests one dispatch may coalesce (≥ 1).
    fn max_batch(&self) -> usize;

    /// How long a first-in-buffer request may wait for companions before
    /// the buffer is force-flushed. `0.0` means dispatch immediately.
    fn window_seconds(&self) -> f64;
}

/// Every request dispatches alone, immediately.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoBatching;

impl BatchingPolicy for NoBatching {
    fn name(&self) -> &'static str {
        "none"
    }

    fn max_batch(&self) -> usize {
        1
    }

    fn window_seconds(&self) -> f64 {
        0.0
    }
}

/// Opportunistic coalescing: no waiting, but a dispatch absorbs up to
/// `max_batch` already-queued same-class requests.
#[derive(Debug, Clone, Copy)]
pub struct SizeCap {
    /// Most requests one dispatch may coalesce.
    pub max_batch: usize,
}

impl BatchingPolicy for SizeCap {
    fn name(&self) -> &'static str {
        "size-cap"
    }

    fn max_batch(&self) -> usize {
        self.max_batch.max(1)
    }

    fn window_seconds(&self) -> f64 {
        0.0
    }
}

/// Time-window accumulation: same-class requests buffer for up to
/// `window_seconds`, flushing early when `max_batch` of them collect.
#[derive(Debug, Clone, Copy)]
pub struct TimeWindow {
    /// Longest a request may sit in the accumulation buffer.
    pub window_seconds: f64,
    /// Flush the buffer early once this many requests collect.
    pub max_batch: usize,
}

impl BatchingPolicy for TimeWindow {
    fn name(&self) -> &'static str {
        "time-window"
    }

    fn max_batch(&self) -> usize {
        self.max_batch.max(1)
    }

    fn window_seconds(&self) -> f64 {
        self.window_seconds.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(loads: &[(usize, usize)]) -> Vec<PoolView> {
        loads
            .iter()
            .enumerate()
            .map(|(index, &(queued, in_service))| PoolView {
                index,
                queued,
                in_service,
                free_gpus: 1,
                total_gpus: 2,
            })
            .collect()
    }

    fn class(network: usize) -> RequestClass {
        RequestClass {
            tenant: "t".into(),
            network,
            batch: 1,
            weight: 1.0,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let v = views(&[(0, 0), (0, 0), (0, 0)]);
        let got: Vec<usize> = (0..6).map(|_| rr.place(&class(0), &v)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_picks_minimum_with_low_index_ties() {
        let mut ll = LeastLoaded;
        assert_eq!(ll.place(&class(0), &views(&[(3, 1), (0, 2), (1, 0)])), 2);
        assert_eq!(ll.place(&class(0), &views(&[(1, 1), (2, 0), (0, 2)])), 0);
    }

    #[test]
    fn affinity_is_a_pure_function_of_network() {
        let mut na = NetworkAffinity;
        let v = views(&[(9, 9), (0, 0)]);
        assert_eq!(na.place(&class(0), &v), 0);
        assert_eq!(na.place(&class(1), &v), 1);
        assert_eq!(na.place(&class(2), &v), 0);
    }

    #[test]
    fn batching_knobs() {
        assert_eq!(NoBatching.max_batch(), 1);
        assert_eq!(NoBatching.window_seconds(), 0.0);
        assert_eq!(SizeCap { max_batch: 4 }.max_batch(), 4);
        assert_eq!(SizeCap { max_batch: 0 }.max_batch(), 1, "floored at 1");
        let tw = TimeWindow {
            window_seconds: 0.01,
            max_batch: 8,
        };
        assert_eq!(tw.max_batch(), 8);
        assert_eq!(tw.window_seconds(), 0.01);
    }
}
