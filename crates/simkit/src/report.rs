//! The fleet simulator's output: per-pool and fleet-wide accounting with
//! a deterministic JSON encoding.
//!
//! Determinism is a feature here, not a nicety: the property suite (and
//! the CI bench gate) asserts that the same seed produces a
//! *byte-identical* [`FleetReport::to_json`], so every field is either
//! an integer or an `f64` rendered through Rust's shortest-roundtrip
//! `Display` — no locale, no wall clock, no map iteration order.

use dnnperf_linreg::percentile;

/// Accounting for one GPU pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Pool name from the [`crate::fleet::PoolSpec`].
    pub name: String,
    /// GPU model serving the pool.
    pub gpu: String,
    /// Number of GPUs in the pool.
    pub gpus: usize,
    /// Requests placed on this pool (admitted).
    pub admitted: u64,
    /// Requests turned away at this pool's queue cap.
    pub rejected: u64,
    /// Requests that finished service before the horizon.
    pub completed: u64,
    /// Requests still queued, buffered, or in service at the horizon.
    pub in_flight_at_horizon: u64,
    /// GPU-seconds spent serving, truncated at the horizon.
    pub busy_seconds: f64,
    /// `busy_seconds / (gpus × horizon)`.
    pub utilization: f64,
    /// `(time, backlog)` samples at evenly spaced instants: requests
    /// waiting in the dispatch queue plus batching buffers.
    pub queue_depth: Vec<(f64, u64)>,
    /// Median sojourn (arrival → completion) of completed requests.
    pub p50_sojourn_seconds: f64,
    /// 99th-percentile sojourn of completed requests.
    pub p99_sojourn_seconds: f64,
    /// Completed requests whose sojourn met the SLO.
    pub slo_attained: u64,
    /// Completed requests priced with at least one degradation note or
    /// by the IGKW fallback.
    pub degraded_requests: u64,
    /// Completed requests priced by the IGKW fallback (no trained suite
    /// for this pool's GPU).
    pub igkw_requests: u64,
    /// Standalone (group-of-1) predicted seconds per workload class on
    /// this pool's GPU — the oracle outputs the simulator ran on,
    /// exposed so tests can check bit-identity with the model stack.
    pub class_seconds: Vec<f64>,
}

/// The full simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Placement policy name.
    pub placement: String,
    /// Batching policy name.
    pub batching: String,
    /// Workload seed.
    pub seed: u64,
    /// Simulation horizon in seconds.
    pub horizon_seconds: f64,
    /// Requests the workload offered before the horizon.
    pub offered: u64,
    /// Requests admitted to some pool.
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests completed before the horizon.
    pub completed: u64,
    /// Requests still in the system at the horizon.
    pub in_flight_at_horizon: u64,
    /// Sum over admitted requests of their standalone predicted service
    /// time on their assigned pool (the work the fleet accepted,
    /// independent of how batching coalesced it).
    pub service_demand_seconds: f64,
    /// Median sojourn across all completed requests.
    pub p50_sojourn_seconds: f64,
    /// 99th-percentile sojourn across all completed requests.
    pub p99_sojourn_seconds: f64,
    /// The SLO the attainment figures are measured against.
    pub slo_seconds: f64,
    /// Fraction of completed requests within the SLO (1.0 when nothing
    /// completed).
    pub slo_attainment: f64,
    /// Unique degradation-ladder notes encountered while pricing, sorted.
    pub degradation_notes: Vec<String>,
    /// Per-pool accounting, in configuration order.
    pub pools: Vec<PoolReport>,
}

impl FleetReport {
    /// The conservation invariant: every offered request is admitted or
    /// rejected, and every admitted request is completed or still in
    /// flight at the horizon — fleet-wide and per pool.
    pub fn conservation_ok(&self) -> bool {
        let fleet = self.offered == self.admitted + self.rejected
            && self.admitted == self.completed + self.in_flight_at_horizon;
        let pools = self
            .pools
            .iter()
            .all(|p| p.admitted == p.completed + p.in_flight_at_horizon);
        let sums = self.admitted == self.pools.iter().map(|p| p.admitted).sum::<u64>()
            && self.rejected == self.pools.iter().map(|p| p.rejected).sum::<u64>()
            && self.completed == self.pools.iter().map(|p| p.completed).sum::<u64>();
        fleet && pools && sums
    }

    /// A deterministic JSON rendering: identical reports produce
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-fleet-report\",\n");
        kv_str(&mut out, 2, "placement", &self.placement, false);
        kv_str(&mut out, 2, "batching", &self.batching, false);
        kv(&mut out, 2, "seed", &self.seed.to_string(), false);
        kv_f64(&mut out, 2, "horizon_seconds", self.horizon_seconds, false);
        kv(&mut out, 2, "offered", &self.offered.to_string(), false);
        kv(&mut out, 2, "admitted", &self.admitted.to_string(), false);
        kv(&mut out, 2, "rejected", &self.rejected.to_string(), false);
        kv(&mut out, 2, "completed", &self.completed.to_string(), false);
        kv(
            &mut out,
            2,
            "in_flight_at_horizon",
            &self.in_flight_at_horizon.to_string(),
            false,
        );
        kv_f64(
            &mut out,
            2,
            "service_demand_seconds",
            self.service_demand_seconds,
            false,
        );
        kv_f64(
            &mut out,
            2,
            "p50_sojourn_seconds",
            self.p50_sojourn_seconds,
            false,
        );
        kv_f64(
            &mut out,
            2,
            "p99_sojourn_seconds",
            self.p99_sojourn_seconds,
            false,
        );
        kv_f64(&mut out, 2, "slo_seconds", self.slo_seconds, false);
        kv_f64(&mut out, 2, "slo_attainment", self.slo_attainment, false);
        out.push_str("  \"degradation_notes\": [");
        for (i, note) in self.degradation_notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, note);
            out.push('"');
        }
        out.push_str("],\n");
        out.push_str("  \"pools\": [\n");
        for (i, p) in self.pools.iter().enumerate() {
            p.to_json_into(&mut out, i + 1 == self.pools.len());
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

impl PoolReport {
    fn to_json_into(&self, out: &mut String, last: bool) {
        out.push_str("    {\n");
        kv_str(out, 6, "name", &self.name, false);
        kv_str(out, 6, "gpu", &self.gpu, false);
        kv(out, 6, "gpus", &self.gpus.to_string(), false);
        kv(out, 6, "admitted", &self.admitted.to_string(), false);
        kv(out, 6, "rejected", &self.rejected.to_string(), false);
        kv(out, 6, "completed", &self.completed.to_string(), false);
        kv(
            out,
            6,
            "in_flight_at_horizon",
            &self.in_flight_at_horizon.to_string(),
            false,
        );
        kv_f64(out, 6, "busy_seconds", self.busy_seconds, false);
        kv_f64(out, 6, "utilization", self.utilization, false);
        out.push_str("      \"queue_depth\": [");
        for (i, (t, d)) in self.queue_depth.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{t}, {d}]"));
        }
        out.push_str("],\n");
        kv_f64(
            out,
            6,
            "p50_sojourn_seconds",
            self.p50_sojourn_seconds,
            false,
        );
        kv_f64(
            out,
            6,
            "p99_sojourn_seconds",
            self.p99_sojourn_seconds,
            false,
        );
        kv(
            out,
            6,
            "slo_attained",
            &self.slo_attained.to_string(),
            false,
        );
        kv(
            out,
            6,
            "degraded_requests",
            &self.degraded_requests.to_string(),
            false,
        );
        kv(
            out,
            6,
            "igkw_requests",
            &self.igkw_requests.to_string(),
            false,
        );
        out.push_str("      \"class_seconds\": [");
        for (i, s) in self.class_seconds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{s}"));
        }
        out.push_str("]\n");
        out.push_str(if last { "    }\n" } else { "    },\n" });
    }
}

/// Sojourn percentile over (unsorted) samples; 0.0 when empty so reports
/// never carry NaN.
pub(crate) fn sojourn_percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        percentile(samples, p)
    }
}

fn kv(out: &mut String, indent: usize, key: &str, value: &str, last: bool) {
    for _ in 0..indent {
        out.push(' ');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(value);
    out.push_str(if last { "\n" } else { ",\n" });
}

fn kv_f64(out: &mut String, indent: usize, key: &str, value: f64, last: bool) {
    kv(out, indent, key, &format!("{value}"), last);
}

fn kv_str(out: &mut String, indent: usize, key: &str, value: &str, last: bool) {
    let mut quoted = String::with_capacity(value.len() + 2);
    quoted.push('"');
    escape_into(&mut quoted, value);
    quoted.push('"');
    kv(out, indent, key, &quoted, last);
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(admitted: u64, completed: u64, in_flight: u64) -> PoolReport {
        PoolReport {
            name: "p".into(),
            gpu: "A100".into(),
            gpus: 2,
            admitted,
            rejected: 0,
            completed,
            in_flight_at_horizon: in_flight,
            busy_seconds: 1.5,
            utilization: 0.375,
            queue_depth: vec![(0.5, 1), (1.0, 0)],
            p50_sojourn_seconds: 0.01,
            p99_sojourn_seconds: 0.02,
            slo_attained: completed,
            degraded_requests: 0,
            igkw_requests: 0,
            class_seconds: vec![0.001, 0.002],
        }
    }

    fn report() -> FleetReport {
        FleetReport {
            placement: "round-robin".into(),
            batching: "none".into(),
            seed: 1,
            horizon_seconds: 2.0,
            offered: 10,
            admitted: 9,
            rejected: 1,
            completed: 7,
            in_flight_at_horizon: 2,
            service_demand_seconds: 0.05,
            p50_sojourn_seconds: 0.01,
            p99_sojourn_seconds: 0.02,
            slo_seconds: 0.1,
            slo_attainment: 1.0,
            degradation_notes: vec![],
            pools: vec![{
                let mut p = pool(9, 7, 2);
                p.rejected = 1;
                p
            }],
        }
    }

    #[test]
    fn conservation_holds_and_breaks() {
        let r = report();
        assert!(r.conservation_ok());
        let mut bad = report();
        bad.completed = 6;
        assert!(!bad.conservation_ok());
        let mut bad = report();
        bad.pools[0].in_flight_at_horizon = 3;
        assert!(!bad.conservation_ok());
    }

    #[test]
    fn json_is_deterministic_and_parsable_by_the_gate_reader() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"offered\": 10"));
        assert!(a.contains("\"queue_depth\": [[0.5, 1], [1, 0]]"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = report();
        r.placement = "a\"b\\c".into();
        assert!(r.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn empty_sojourns_do_not_produce_nan() {
        assert_eq!(sojourn_percentile(&[], 99.0), 0.0);
        assert_eq!(sojourn_percentile(&[2.0, 1.0], 50.0), 1.5);
    }
}
