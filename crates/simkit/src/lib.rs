//! Event-driven simulation substrate and the disaggregated-memory case
//! study (paper Case Study 2).
//!
//! The paper connects its performance model to "a simple network model from
//! MGPUSim ... a pure event-driven simulator, allowing us to fast-forward to
//! the end of each kernel without simulating cycle-by-cycle details". This
//! crate provides the corresponding pieces:
//!
//! * [`event`] — a discrete event queue;
//! * [`link`] — a serializing network-link model;
//! * [`disagg`] — a disaggregated-memory GPU system: compute times come from
//!   a dnnperf performance model, layer parameters are prefetched from a
//!   remote memory pool over the link while earlier layers compute.

#![warn(missing_docs)]

pub mod disagg;
pub mod event;
pub mod link;

pub use disagg::{simulate_disaggregated, DisaggConfig, DisaggResult, LayerWork};
pub use event::EventQueue;
pub use link::Link;
