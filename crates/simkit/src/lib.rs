//! Event-driven simulation substrate and the disaggregated-memory case
//! study (paper Case Study 2).
//!
//! The paper connects its performance model to "a simple network model from
//! MGPUSim ... a pure event-driven simulator, allowing us to fast-forward to
//! the end of each kernel without simulating cycle-by-cycle details". This
//! crate provides the corresponding pieces:
//!
//! * [`event`] — a discrete event queue with cancellation;
//! * [`link`] — a serializing network-link model;
//! * [`disagg`] — a disaggregated-memory GPU system: compute times come from
//!   a dnnperf performance model, layer parameters are prefetched from a
//!   remote memory pool over the link while earlier layers compute.
//!
//! On top of that substrate sits the fleet what-if engine (ROADMAP item 5):
//!
//! * [`workload`] — deterministic mixed request streams (network × batch ×
//!   tenant) under Poisson or closed-loop arrivals, seeded by an LCG;
//! * [`policy`] — pluggable placement ([`PlacementPolicy`]) and batching
//!   ([`BatchingPolicy`]) behind small traits;
//! * [`fleet`] — the simulator itself: heterogeneous GPU pools whose
//!   service times come from `dnnperf_core::PredictionOracle` (compiled
//!   plans, IGKW fallback for never-profiled GPUs);
//! * [`report`] — the [`FleetReport`] output: utilization, queue-depth
//!   time series, sojourn percentiles, SLO attainment, with a
//!   deterministic JSON encoding.
//!
//! The oracle boundary: this crate consumes only `CompiledPlan`/IGKW
//! outputs via the oracle — never `dnnperf_gpu::timing` — so simulated
//! what-ifs are honest products of the trained models. The lint's
//! oracle-isolation pass enforces this.

#![warn(missing_docs)]
// Simulation code must surface failures as typed errors, never crash:
// dnnperf-lint's panic-policy pass verifies this attribute stays in place.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod disagg;
pub mod event;
pub mod fleet;
pub mod link;
pub mod policy;
pub mod report;
pub mod workload;

pub use disagg::{simulate_disaggregated, DisaggConfig, DisaggResult, LayerWork};
pub use event::{CancelToken, EventQueue};
pub use fleet::{simulate_fleet, FleetConfig, PoolSpec};
pub use link::Link;
pub use policy::{
    BatchingPolicy, LeastLoaded, NetworkAffinity, NoBatching, PlacementPolicy, PoolView,
    RoundRobin, SizeCap, TimeWindow,
};
pub use report::{FleetReport, PoolReport};
pub use workload::{ArrivalProcess, Lcg, RequestClass, WorkloadSpec};
