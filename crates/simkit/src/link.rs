//! A serializing network-link model (the MGPUSim-style "simple network
//! model" of Case Study 2).

/// A full-duplex-agnostic point-to-point link: one transfer at a time, FIFO.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    bandwidth_bytes_per_s: f64,
    busy_until: f64,
}

impl Link {
    /// Creates a link with the given bandwidth in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut link = dnnperf_simkit::Link::new(16.0);
    /// // 16 GB over a 16 GB/s link takes one second.
    /// let (start, end) = link.transfer(0.0, 16_000_000_000);
    /// assert_eq!(start, 0.0);
    /// assert!((end - 1.0).abs() < 1e-9);
    /// ```
    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "link bandwidth must be positive");
        Link {
            bandwidth_bytes_per_s: gbps * 1e9,
            busy_until: 0.0,
        }
    }

    /// The link bandwidth in bytes per second.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.bandwidth_bytes_per_s
    }

    /// The time at which the link becomes idle.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Enqueues a transfer of `bytes` requested at time `now`; returns its
    /// (start, end) times. Transfers serialize in request order.
    pub fn transfer(&mut self, now: f64, bytes: u64) -> (f64, f64) {
        let start = now.max(self.busy_until);
        let end = start + bytes as f64 / self.bandwidth_bytes_per_s;
        self.busy_until = end;
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize() {
        let mut l = Link::new(1.0); // 1 GB/s
        let (s1, e1) = l.transfer(0.0, 500_000_000);
        let (s2, e2) = l.transfer(0.0, 500_000_000);
        assert_eq!(s1, 0.0);
        assert!((e1 - 0.5).abs() < 1e-12);
        assert_eq!(s2, e1);
        assert!((e2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = Link::new(1.0);
        l.transfer(0.0, 1_000_000);
        let (s, _) = l.transfer(10.0, 1_000_000);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn zero_bytes_is_instant() {
        let mut l = Link::new(1.0);
        let (s, e) = l.transfer(3.0, 0);
        assert_eq!(s, e);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        Link::new(0.0);
    }
}
