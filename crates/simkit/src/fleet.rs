//! The fleet what-if engine: heterogeneous GPU pools serving a mixed
//! request stream, with every service time priced by a
//! [`PredictionOracle`] (compiled plans for trained GPUs, the IGKW
//! fallback for never-profiled ones).
//!
//! This is capacity planning driven by the paper's predictor instead of
//! measurement: "would two A100 pools at this offered load hold p99
//! under the SLO, or do we need a third?" is answered in milliseconds by
//! an event-driven simulation whose only model of GPU time is the
//! trained prediction stack.
//!
//! Design invariants the property suite leans on:
//!
//! * **Conservation** — every offered request is admitted or rejected;
//!   every admitted request is completed or reported in flight at the
//!   horizon. No request is created or lost by any policy combination.
//! * **Determinism** — the same [`WorkloadSpec`] seed yields a
//!   byte-identical [`FleetReport`]: all state is ordered
//!   (`BTreeMap`/`VecDeque`), all randomness flows from the workload
//!   LCG, ties in the event queue break by insertion order, and no wall
//!   clock is consulted.
//! * **Oracle isolation** — service times come only from
//!   [`PredictionOracle::predict`]; this crate never touches
//!   `dnnperf_gpu::timing`.
//!
//! All `(pool, class, group-size)` prices are resolved *before* the
//! event loop starts, so the loop itself is infallible and the oracle's
//! degradation notes are surfaced once, as annotations on the report.

use crate::event::{CancelToken, EventQueue};
use crate::policy::{BatchingPolicy, PlacementPolicy, PoolView};
use crate::report::{sojourn_percentile, FleetReport, PoolReport};
use crate::workload::{ArrivalProcess, Lcg, WorkloadSpec};
use dnnperf_core::oracle::{OraclePrediction, OracleSource, PredictionOracle};
use dnnperf_core::PredictError;
use dnnperf_dnn::Network;
use dnnperf_gpu::GpuSpec;
use std::collections::{BTreeMap, VecDeque};

/// Floor on scheduled event durations: keeps zero-cost predictions (or a
/// zero think time racing a rejection) from livelocking the event loop.
/// Accounting (demand, busy time) still uses the exact predicted value.
const MIN_EVENT_SECONDS: f64 = 1e-9;

/// One GPU pool: `gpus` identical devices of one [`GpuSpec`] behind a
/// shared FIFO dispatch queue.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Pool name, carried into the report.
    pub name: String,
    /// The device every GPU in this pool is.
    pub gpu: GpuSpec,
    /// Number of GPUs.
    pub gpus: usize,
    /// Admission cap on waiting requests (queue plus batching buffers);
    /// `None` means unbounded.
    pub queue_cap: Option<usize>,
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The pools, in placement-index order.
    pub pools: Vec<PoolSpec>,
    /// The sojourn SLO attainment is measured against.
    pub slo_seconds: f64,
    /// Number of evenly spaced queue-depth samples per pool.
    pub queue_samples: usize,
}

/// One request in flight through the simulator.
#[derive(Debug)]
struct Req {
    class: usize,
    arrival: f64,
    client: Option<usize>,
}

#[derive(Debug)]
enum Ev {
    /// Next open-loop arrival.
    Arrival,
    /// Closed-loop client `i` issues its next request.
    ClientArrival(usize),
    /// A time-window batching buffer reached its deadline.
    WindowClose { pool: usize, class: usize },
    /// A dispatched group finishes service.
    ServiceDone {
        pool: usize,
        start: f64,
        group: Vec<Req>,
    },
    /// Record queue depths across all pools.
    Sample,
}

#[derive(Debug, Default)]
struct Buffer {
    reqs: VecDeque<Req>,
    token: Option<CancelToken>,
}

#[derive(Debug)]
struct PoolState {
    total_gpus: usize,
    queue_cap: Option<usize>,
    free_gpus: usize,
    queue: VecDeque<Req>,
    /// Time-window accumulation buffers, by class.
    buffers: BTreeMap<usize, Buffer>,
    buffered: usize,
    in_service: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
    busy_seconds: f64,
    sojourns: Vec<f64>,
    slo_attained: u64,
    degraded: u64,
    igkw: u64,
    queue_depth: Vec<(f64, u64)>,
}

struct Sim<'a> {
    q: EventQueue<Ev>,
    pools: Vec<PoolState>,
    /// `prices[pool][class][k-1]` = oracle output for a group of `k`.
    prices: &'a [Vec<Vec<OraclePrediction>>],
    max_batch: usize,
    window_seconds: f64,
    horizon: f64,
    slo: f64,
    think_seconds: f64,
    lcg: Lcg,
    weights: Vec<f64>,
    rate_rps: f64,
    offered: u64,
    demand_seconds: f64,
}

impl Sim<'_> {
    fn views(&self) -> Vec<PoolView> {
        self.pools
            .iter()
            .enumerate()
            .map(|(index, p)| PoolView {
                index,
                queued: p.queue.len() + p.buffered,
                in_service: p.in_service,
                free_gpus: p.free_gpus,
                total_gpus: p.total_gpus,
            })
            .collect()
    }

    /// One admission: pick a class, place it, admit or reject. A
    /// rejected closed-loop client retries after its think time.
    fn admit(
        &mut self,
        placement: &mut dyn PlacementPolicy,
        workload: &WorkloadSpec,
        now: f64,
        client: Option<usize>,
    ) {
        self.offered += 1;
        let class = self.lcg.pick_weighted(&self.weights);
        let views = self.views();
        let p = placement.place(&workload.classes[class], &views);
        assert!(p < self.pools.len(), "placement returned pool {p}");
        let backlog = self.pools[p].queue.len() + self.pools[p].buffered;
        if self.pools[p].queue_cap.is_some_and(|cap| backlog >= cap) {
            self.pools[p].rejected += 1;
            if let Some(i) = client {
                let retry = now + self.think_seconds.max(MIN_EVENT_SECONDS);
                if retry <= self.horizon {
                    self.q.schedule(retry, Ev::ClientArrival(i));
                }
            }
            return;
        }
        self.pools[p].admitted += 1;
        self.demand_seconds += self.prices[p][class][0].seconds;
        self.enqueue(
            p,
            Req {
                class,
                arrival: now,
                client,
            },
            now,
        );
    }

    /// Greedily starts service on every free GPU of pool `p`, coalescing
    /// up to `max_batch` contiguous same-class requests per dispatch.
    fn try_dispatch(&mut self, p: usize, now: f64) {
        loop {
            let pool = &mut self.pools[p];
            if pool.free_gpus == 0 || pool.queue.is_empty() {
                return;
            }
            let class = match pool.queue.front() {
                Some(r) => r.class,
                None => return,
            };
            let k = pool
                .queue
                .iter()
                .take(self.max_batch)
                .take_while(|r| r.class == class)
                .count();
            let mut group = Vec::with_capacity(k);
            for _ in 0..k {
                if let Some(r) = pool.queue.pop_front() {
                    group.push(r);
                }
            }
            pool.free_gpus -= 1;
            pool.in_service += group.len();
            let seconds = self.prices[p][class][group.len() - 1].seconds;
            self.q.schedule(
                now + seconds.max(MIN_EVENT_SECONDS),
                Ev::ServiceDone {
                    pool: p,
                    start: now,
                    group,
                },
            );
        }
    }

    /// Routes an admitted request through the batching layer of pool `p`.
    fn enqueue(&mut self, p: usize, req: Req, now: f64) {
        if self.window_seconds <= 0.0 {
            self.pools[p].queue.push_back(req);
            self.try_dispatch(p, now);
            return;
        }
        let class = req.class;
        let deadline = now + self.window_seconds;
        let buf = self.pools[p].buffers.entry(class).or_default();
        if buf.reqs.is_empty() {
            buf.token = Some(
                self.q
                    .schedule_cancellable(deadline, Ev::WindowClose { pool: p, class }),
            );
        }
        buf.reqs.push_back(req);
        self.pools[p].buffered += 1;
        if self.pools[p]
            .buffers
            .get(&class)
            .map_or(0, |b| b.reqs.len())
            >= self.max_batch
        {
            self.flush_buffer(p, class, now);
        }
    }

    /// Moves a full or expired buffer into the dispatch queue.
    fn flush_buffer(&mut self, p: usize, class: usize, now: f64) {
        let pool = &mut self.pools[p];
        let Some(buf) = pool.buffers.get_mut(&class) else {
            return;
        };
        if let Some(token) = buf.token.take() {
            self.q.cancel(token);
        }
        let n = buf.reqs.len();
        while let Some(r) = buf.reqs.pop_front() {
            pool.queue.push_back(r);
        }
        pool.buffered -= n;
        self.try_dispatch(p, now);
    }
}

/// Runs the fleet simulation to the workload horizon.
///
/// `catalog` holds the networks the workload classes index into;
/// `oracle` must cover every pool's GPU (trained suite or IGKW).
///
/// # Errors
///
/// Returns any [`PredictError`] hit while pre-pricing `(pool, class,
/// group-size)` combinations — e.g. [`PredictError::NoModelForGpu`] for
/// a pool the oracle cannot price. The event loop itself is infallible.
///
/// # Panics
///
/// Panics on configuration errors: no pools, a pool with zero GPUs, an
/// empty class mix, a class indexing outside `catalog`, a non-positive
/// horizon, or a closed-loop workload with zero clients.
pub fn simulate_fleet(
    catalog: &[Network],
    workload: &WorkloadSpec,
    cfg: &FleetConfig,
    placement: &mut dyn PlacementPolicy,
    batching: &dyn BatchingPolicy,
    oracle: &PredictionOracle,
) -> Result<FleetReport, PredictError> {
    assert!(!cfg.pools.is_empty(), "fleet needs at least one pool");
    assert!(
        !workload.classes.is_empty(),
        "workload needs at least one class"
    );
    assert!(
        workload.horizon_seconds > 0.0 && workload.horizon_seconds.is_finite(),
        "horizon must be positive and finite"
    );
    for pool in &cfg.pools {
        assert!(pool.gpus >= 1, "pool {:?} has no GPUs", pool.name);
    }
    for class in &workload.classes {
        assert!(
            class.network < catalog.len(),
            "class network index {} outside catalog of {}",
            class.network,
            catalog.len()
        );
        assert!(class.batch >= 1, "class batch must be at least 1");
    }

    let max_batch = batching.max_batch();
    // Resolve every price the loop could need, up front. Degradation
    // notes are collected from the standalone (group-of-1) predictions —
    // the same entries `class_seconds` exposes.
    let mut prices: Vec<Vec<Vec<OraclePrediction>>> = Vec::with_capacity(cfg.pools.len());
    let mut notes: Vec<String> = Vec::new();
    for pool in &cfg.pools {
        let mut per_class = Vec::with_capacity(workload.classes.len());
        for class in &workload.classes {
            let net = &catalog[class.network];
            let mut per_k = Vec::with_capacity(max_batch);
            for k in 1..=max_batch {
                per_k.push(oracle.predict(&pool.gpu, net, class.batch * k)?);
            }
            for note in &per_k[0].notes {
                let s = note.to_string();
                if !notes.contains(&s) {
                    notes.push(s);
                }
            }
            per_class.push(per_k);
        }
        prices.push(per_class);
    }
    notes.sort();

    let (rate_rps, think_seconds, clients) = match workload.arrivals {
        ArrivalProcess::Poisson { rate_rps } => {
            assert!(
                rate_rps > 0.0 && rate_rps.is_finite(),
                "Poisson rate must be positive and finite"
            );
            (rate_rps, 0.0, 0)
        }
        ArrivalProcess::ClosedLoop {
            clients,
            think_seconds,
        } => {
            assert!(clients >= 1, "closed loop needs at least one client");
            assert!(
                think_seconds >= 0.0 && think_seconds.is_finite(),
                "think time must be nonnegative and finite"
            );
            (0.0, think_seconds, clients)
        }
    };

    let horizon = workload.horizon_seconds;
    let mut sim = Sim {
        q: EventQueue::new(),
        pools: cfg
            .pools
            .iter()
            .map(|p| PoolState {
                total_gpus: p.gpus,
                queue_cap: p.queue_cap,
                free_gpus: p.gpus,
                queue: VecDeque::new(),
                buffers: BTreeMap::new(),
                buffered: 0,
                in_service: 0,
                admitted: 0,
                rejected: 0,
                completed: 0,
                busy_seconds: 0.0,
                sojourns: Vec::new(),
                slo_attained: 0,
                degraded: 0,
                igkw: 0,
                queue_depth: Vec::new(),
            })
            .collect(),
        prices: &prices,
        max_batch,
        window_seconds: batching.window_seconds(),
        horizon,
        slo: cfg.slo_seconds,
        think_seconds,
        lcg: Lcg::new(workload.seed),
        weights: workload.weights(),
        rate_rps,
        offered: 0,
        demand_seconds: 0.0,
    };

    // Seed the arrival stream.
    match workload.arrivals {
        ArrivalProcess::Poisson { .. } => {
            let t0 = sim.lcg.next_exp(rate_rps);
            if t0 <= horizon {
                sim.q.schedule(t0, Ev::Arrival);
            }
        }
        ArrivalProcess::ClosedLoop { .. } => {
            for i in 0..clients {
                sim.q.schedule(0.0, Ev::ClientArrival(i));
            }
        }
    }
    // Queue-depth sampling instants.
    for s in 1..=cfg.queue_samples {
        sim.q
            .schedule(horizon * s as f64 / cfg.queue_samples as f64, Ev::Sample);
    }

    // The event loop proper.
    while let Some((t, ev)) = sim.q.pop() {
        if t > horizon {
            // Horizon reached: everything still scheduled is residual.
            // Time-ordering guarantees every ServiceDone left in the
            // queue ends after the horizon, i.e. is exactly the set of
            // groups still occupying a GPU.
            let mut leftovers = vec![ev];
            while let Some((_, later)) = sim.q.pop() {
                leftovers.push(later);
            }
            for ev in leftovers {
                if let Ev::ServiceDone { pool, start, .. } = ev {
                    sim.pools[pool].busy_seconds += horizon - start;
                }
            }
            break;
        }
        match ev {
            Ev::Arrival => {
                sim.admit(placement, workload, t, None);
                let gap = sim.lcg.next_exp(sim.rate_rps);
                if t + gap <= horizon {
                    sim.q.schedule(t + gap, Ev::Arrival);
                }
            }
            Ev::ClientArrival(i) => {
                sim.admit(placement, workload, t, Some(i));
            }
            Ev::WindowClose { pool, class } => {
                sim.flush_buffer(pool, class, t);
            }
            Ev::ServiceDone { pool, start, group } => {
                let k = group.len();
                let class = group.first().map_or(0, |r| r.class);
                let price = &sim.prices[pool][class][k - 1];
                let degraded = price.is_degraded();
                let igkw = price.source == OracleSource::Igkw;
                {
                    let ps = &mut sim.pools[pool];
                    ps.free_gpus += 1;
                    ps.in_service -= k;
                    ps.busy_seconds += t - start;
                }
                for req in group {
                    let sojourn = t - req.arrival;
                    let ps = &mut sim.pools[pool];
                    ps.completed += 1;
                    ps.sojourns.push(sojourn);
                    if sojourn <= sim.slo {
                        ps.slo_attained += 1;
                    }
                    if degraded {
                        ps.degraded += 1;
                    }
                    if igkw {
                        ps.igkw += 1;
                    }
                    if let Some(i) = req.client {
                        let next = t + sim.think_seconds;
                        if next <= horizon {
                            sim.q.schedule(next, Ev::ClientArrival(i));
                        }
                    }
                }
                sim.try_dispatch(pool, t);
            }
            Ev::Sample => {
                for ps in &mut sim.pools {
                    ps.queue_depth
                        .push((t, (ps.queue.len() + ps.buffered) as u64));
                }
            }
        }
    }

    // Assemble the report.
    let mut all_sojourns: Vec<f64> = Vec::new();
    let mut pool_reports = Vec::with_capacity(cfg.pools.len());
    for (i, (spec, ps)) in cfg.pools.iter().zip(sim.pools.iter()).enumerate() {
        let in_flight = (ps.queue.len() + ps.buffered + ps.in_service) as u64;
        all_sojourns.extend_from_slice(&ps.sojourns);
        pool_reports.push(PoolReport {
            name: spec.name.clone(),
            gpu: spec.gpu.name.clone(),
            gpus: spec.gpus,
            admitted: ps.admitted,
            rejected: ps.rejected,
            completed: ps.completed,
            in_flight_at_horizon: in_flight,
            busy_seconds: ps.busy_seconds,
            utilization: ps.busy_seconds / (spec.gpus as f64 * horizon),
            queue_depth: ps.queue_depth.clone(),
            p50_sojourn_seconds: sojourn_percentile(&ps.sojourns, 50.0),
            p99_sojourn_seconds: sojourn_percentile(&ps.sojourns, 99.0),
            slo_attained: ps.slo_attained,
            degraded_requests: ps.degraded,
            igkw_requests: ps.igkw,
            class_seconds: prices[i].iter().map(|per_k| per_k[0].seconds).collect(),
        });
    }
    let admitted: u64 = pool_reports.iter().map(|p| p.admitted).sum();
    let rejected: u64 = pool_reports.iter().map(|p| p.rejected).sum();
    let completed: u64 = pool_reports.iter().map(|p| p.completed).sum();
    let in_flight: u64 = pool_reports.iter().map(|p| p.in_flight_at_horizon).sum();
    let slo_attained: u64 = pool_reports.iter().map(|p| p.slo_attained).sum();
    Ok(FleetReport {
        placement: placement.name().to_string(),
        batching: batching.name().to_string(),
        seed: workload.seed,
        horizon_seconds: horizon,
        offered: sim.offered,
        admitted,
        rejected,
        completed,
        in_flight_at_horizon: in_flight,
        service_demand_seconds: sim.demand_seconds,
        p50_sojourn_seconds: sojourn_percentile(&all_sojourns, 50.0),
        p99_sojourn_seconds: sojourn_percentile(&all_sojourns, 99.0),
        slo_seconds: cfg.slo_seconds,
        slo_attainment: if completed == 0 {
            1.0
        } else {
            slo_attained as f64 / completed as f64
        },
        degradation_notes: notes,
        pools: pool_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoBatching, RoundRobin, TimeWindow};
    use crate::workload::RequestClass;
    use dnnperf_core::Workflow;
    use dnnperf_data::collect::collect;
    use std::sync::Arc;
    use std::sync::OnceLock;

    fn catalog() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(0.25, 0.5),
            dnnperf_dnn::zoo::squeezenet::squeezenet(64, 64, 0.125),
        ]
    }

    fn oracle() -> &'static PredictionOracle {
        static ORACLE: OnceLock<PredictionOracle> = OnceLock::new();
        ORACLE.get_or_init(|| {
            let gpu = GpuSpec::by_name("A100").unwrap();
            let ds = collect(&catalog(), std::slice::from_ref(&gpu), &[1, 4]);
            let suite = Arc::new(Workflow::train(&ds, "A100").unwrap());
            let mut oracle = PredictionOracle::new();
            oracle.add_suite(suite);
            oracle
        })
    }

    fn spec(arrivals: ArrivalProcess, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            classes: vec![
                RequestClass {
                    tenant: "a".into(),
                    network: 0,
                    batch: 1,
                    weight: 3.0,
                },
                RequestClass {
                    tenant: "b".into(),
                    network: 1,
                    batch: 4,
                    weight: 1.0,
                },
            ],
            arrivals,
            seed,
            horizon_seconds: 0.5,
        }
    }

    fn fleet(queue_cap: Option<usize>) -> FleetConfig {
        FleetConfig {
            pools: vec![PoolSpec {
                name: "pool0".into(),
                gpu: GpuSpec::by_name("A100").unwrap(),
                gpus: 2,
                queue_cap,
            }],
            slo_seconds: 0.05,
            queue_samples: 4,
        }
    }

    #[test]
    fn poisson_run_conserves_and_replays_byte_identically() {
        let wl = spec(ArrivalProcess::Poisson { rate_rps: 400.0 }, 9);
        let run = || {
            simulate_fleet(
                &catalog(),
                &wl,
                &fleet(Some(8)),
                &mut RoundRobin::default(),
                &NoBatching,
                oracle(),
            )
            .unwrap()
        };
        let a = run();
        assert!(a.conservation_ok(), "{a:?}");
        assert!(a.offered > 0);
        assert_eq!(a.to_json(), run().to_json());
    }

    #[test]
    fn closed_loop_keeps_at_most_clients_in_flight() {
        let wl = spec(
            ArrivalProcess::ClosedLoop {
                clients: 3,
                think_seconds: 0.001,
            },
            4,
        );
        let r = simulate_fleet(
            &catalog(),
            &wl,
            &fleet(None),
            &mut RoundRobin::default(),
            &NoBatching,
            oracle(),
        )
        .unwrap();
        assert!(r.conservation_ok(), "{r:?}");
        assert!(r.in_flight_at_horizon <= 3);
        assert!(r.completed > 0);
    }

    #[test]
    fn time_window_batching_coalesces_dispatches() {
        let wl = spec(ArrivalProcess::Poisson { rate_rps: 2000.0 }, 2);
        let plain = simulate_fleet(
            &catalog(),
            &wl,
            &fleet(None),
            &mut RoundRobin::default(),
            &NoBatching,
            oracle(),
        )
        .unwrap();
        let batched = simulate_fleet(
            &catalog(),
            &wl,
            &fleet(None),
            &mut RoundRobin::default(),
            &TimeWindow {
                window_seconds: 0.005,
                max_batch: 4,
            },
            oracle(),
        )
        .unwrap();
        assert!(plain.conservation_ok());
        assert!(batched.conservation_ok(), "{batched:?}");
        // Identical arrivals either way (same seed, open loop).
        assert_eq!(plain.offered, batched.offered);
    }

    #[test]
    fn unpriceable_pool_is_a_typed_error() {
        let wl = spec(ArrivalProcess::Poisson { rate_rps: 10.0 }, 1);
        let mut cfg = fleet(None);
        cfg.pools[0].gpu = GpuSpec::by_name("TITAN RTX").unwrap();
        let err = simulate_fleet(
            &catalog(),
            &wl,
            &cfg,
            &mut RoundRobin::default(),
            &NoBatching,
            oracle(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PredictError::NoModelForGpu {
                gpu: "TITAN RTX".into()
            }
        );
    }
}
