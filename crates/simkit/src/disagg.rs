//! Disaggregated-memory GPU system simulation (Case Study 2).
//!
//! The system: a GPU with a small local memory attached to a huge remote
//! memory pool over a network link. "The GPU runs a prefetcher that keeps
//! fetching the layer parameters required for future layer computing while
//! the GPU calculates the layer output."
//!
//! Layer `i` may start computing once (a) layer `i-1` has finished and
//! (b) its parameters have arrived. The prefetcher streams parameters in
//! layer order over the link, at most `lookahead` layers ahead of the
//! compute front (bounded local memory).

use crate::event::EventQueue;
use crate::link::Link;
use dnnperf_core::KwModel;
use dnnperf_dnn::flops::layer_params;
use dnnperf_dnn::Network;

/// Per-layer work description fed to the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerWork {
    /// Time to compute the layer on the GPU, in seconds.
    pub compute_seconds: f64,
    /// Parameter bytes that must arrive before the layer can run.
    pub param_bytes: u64,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggConfig {
    /// Network link bandwidth in GB/s.
    pub link_bandwidth_gbps: f64,
    /// How many layers ahead of the compute front the prefetcher may run.
    pub lookahead: usize,
}

impl Default for DisaggConfig {
    fn default() -> Self {
        DisaggConfig {
            link_bandwidth_gbps: 16.0,
            lookahead: 8,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggResult {
    /// End-to-end time of the inference pass, in seconds.
    pub total_seconds: f64,
    /// Pure compute time (lower bound with an infinitely fast link).
    pub compute_seconds: f64,
    /// Time the GPU spent stalled waiting for parameters.
    pub stall_seconds: f64,
}

impl DisaggResult {
    /// Fraction of time the GPU was computing.
    pub fn utilization(&self) -> f64 {
        if self.total_seconds == 0.0 {
            1.0
        } else {
            self.compute_seconds / self.total_seconds
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    FetchDone(usize),
    ComputeDone(usize),
}

/// Runs the event-driven disaggregated-memory simulation.
///
/// # Examples
///
/// ```
/// use dnnperf_simkit::{simulate_disaggregated, DisaggConfig, LayerWork};
///
/// let layers = vec![LayerWork { compute_seconds: 1e-3, param_bytes: 16_000_000 }; 10];
/// let slow = simulate_disaggregated(&layers, DisaggConfig { link_bandwidth_gbps: 16.0, lookahead: 4 });
/// let fast = simulate_disaggregated(&layers, DisaggConfig { link_bandwidth_gbps: 512.0, lookahead: 4 });
/// assert!(slow.total_seconds > fast.total_seconds);
/// ```
pub fn simulate_disaggregated(layers: &[LayerWork], cfg: DisaggConfig) -> DisaggResult {
    assert!(cfg.lookahead > 0, "lookahead must be at least 1");
    let n = layers.len();
    let compute_seconds: f64 = layers.iter().map(|l| l.compute_seconds).sum();
    if n == 0 {
        return DisaggResult {
            total_seconds: 0.0,
            compute_seconds: 0.0,
            stall_seconds: 0.0,
        };
    }

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut link = Link::new(cfg.link_bandwidth_gbps);
    let mut fetched = vec![false; n];
    let mut computed = vec![false; n];
    let mut compute_front = 0usize; // next layer to compute
    let mut fetch_front = 0usize; // next layer to request
    let mut computing = false;
    let mut finish_time = 0.0;

    // Seed: prefetch the initial window.
    while fetch_front < n.min(cfg.lookahead) {
        let (_, end) = link.transfer(0.0, layers[fetch_front].param_bytes);
        q.schedule(end, Ev::FetchDone(fetch_front));
        fetch_front += 1;
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::FetchDone(i) => fetched[i] = true,
            Ev::ComputeDone(i) => {
                computed[i] = true;
                computing = false;
                finish_time = now;
                // Compute progress frees local memory: extend the prefetch
                // window.
                while fetch_front < n && fetch_front < compute_front + cfg.lookahead + 1 {
                    let (_, end) = link.transfer(now, layers[fetch_front].param_bytes);
                    q.schedule(end, Ev::FetchDone(fetch_front));
                    fetch_front += 1;
                }
            }
        }
        // Start the next layer if its dependencies are met.
        if !computing && compute_front < n && fetched[compute_front] {
            let ready = compute_front == 0 || computed[compute_front - 1];
            if ready {
                let i = compute_front;
                q.schedule(now + layers[i].compute_seconds, Ev::ComputeDone(i));
                computing = true;
                compute_front += 1;
            }
        }
    }

    DisaggResult {
        total_seconds: finish_time,
        compute_seconds,
        stall_seconds: (finish_time - compute_seconds).max(0.0),
    }
}

/// Derives per-layer work from a trained KW model's layer predictions and
/// the network's static parameter counts.
pub fn layer_work_from_model(model: &KwModel, net: &Network, batch: usize) -> Vec<LayerWork> {
    net.layers()
        .iter()
        .map(|l| LayerWork {
            compute_seconds: model.predict_layer(l, batch),
            param_bytes: layer_params(l) * dnnperf_dnn::flops::BYTES_PER_ELEM,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, compute: f64, bytes: u64) -> Vec<LayerWork> {
        vec![
            LayerWork {
                compute_seconds: compute,
                param_bytes: bytes
            };
            n
        ]
    }

    #[test]
    fn infinite_bandwidth_approaches_pure_compute() {
        let layers = uniform(20, 1e-3, 4_000_000);
        let r = simulate_disaggregated(
            &layers,
            DisaggConfig {
                link_bandwidth_gbps: 100_000.0,
                lookahead: 4,
            },
        );
        assert!((r.total_seconds - r.compute_seconds) / r.compute_seconds < 0.01);
        assert!(r.utilization() > 0.99);
    }

    #[test]
    fn bandwidth_bound_regime_matches_transfer_time() {
        // Compute is negligible; total time ~= total bytes / bandwidth.
        let layers = uniform(10, 1e-9, 1_000_000_000);
        let r = simulate_disaggregated(
            &layers,
            DisaggConfig {
                link_bandwidth_gbps: 10.0,
                lookahead: 2,
            },
        );
        let expected = 10.0 * 1e9 / 10e9;
        assert!(
            (r.total_seconds - expected).abs() / expected < 0.01,
            "{r:?}"
        );
        assert!(r.utilization() < 0.01);
    }

    #[test]
    fn speedup_saturates_with_bandwidth() {
        let layers = uniform(30, 5e-4, 8_000_000);
        let t16 = simulate_disaggregated(
            &layers,
            DisaggConfig {
                link_bandwidth_gbps: 16.0,
                lookahead: 8,
            },
        )
        .total_seconds;
        let mut last = f64::INFINITY;
        let mut speedups = Vec::new();
        for bw in [32.0, 64.0, 128.0, 256.0, 512.0] {
            let t = simulate_disaggregated(
                &layers,
                DisaggConfig {
                    link_bandwidth_gbps: bw,
                    lookahead: 8,
                },
            )
            .total_seconds;
            assert!(t <= last * (1.0 + 1e-9));
            last = t;
            speedups.push(t16 / t);
        }
        // Monotone speedups that flatten once compute-bound.
        assert!(speedups[0] > 1.0);
        let tail_gain = speedups[4] / speedups[3];
        let head_gain = speedups[1] / speedups[0];
        assert!(head_gain > tail_gain, "{speedups:?}");
    }

    #[test]
    fn lookahead_one_still_overlaps_next_layer() {
        let layers = uniform(10, 1e-3, 16_000_000);
        let no_overlap: f64 = layers
            .iter()
            .map(|l| l.compute_seconds + l.param_bytes as f64 / 16e9)
            .sum();
        let r = simulate_disaggregated(
            &layers,
            DisaggConfig {
                link_bandwidth_gbps: 16.0,
                lookahead: 1,
            },
        );
        assert!(r.total_seconds < no_overlap);
    }

    #[test]
    fn empty_network_is_free() {
        let r = simulate_disaggregated(&[], DisaggConfig::default());
        assert_eq!(r.total_seconds, 0.0);
    }

    #[test]
    fn accounting_identity_holds() {
        let layers = uniform(15, 2e-4, 32_000_000);
        let r = simulate_disaggregated(
            &layers,
            DisaggConfig {
                link_bandwidth_gbps: 32.0,
                lookahead: 4,
            },
        );
        assert!((r.total_seconds - (r.compute_seconds + r.stall_seconds)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_panics() {
        simulate_disaggregated(
            &uniform(2, 1e-3, 1),
            DisaggConfig {
                link_bandwidth_gbps: 16.0,
                lookahead: 0,
            },
        );
    }
}
