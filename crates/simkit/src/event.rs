//! A minimal discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events are popped in nondecreasing time order;
/// simultaneous events pop in insertion order.
///
/// # Examples
///
/// ```
/// let mut q = dnnperf_simkit::EventQueue::new();
/// q.schedule(2.0, "b");
/// q.schedule(1.0, "a");
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The time of the last popped event (the simulation clock).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or earlier than the current simulation time
    /// (causality violation).
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest pending event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as i32);
        }
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        let mut last = 0.0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
    }
}
