//! A minimal discrete-event queue with cancellation.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events are popped in nondecreasing time order;
/// simultaneous events pop in insertion order.
///
/// # Examples
///
/// ```
/// let mut q = dnnperf_simkit::EventQueue::new();
/// q.schedule(2.0, "b");
/// q.schedule(1.0, "a");
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events scheduled but neither popped nor
    /// cancelled. `len`/`is_empty`/`cancel` answer from this set.
    pending: BTreeSet<u64>,
    /// Sequence numbers cancelled while still in the heap; their entries
    /// are skipped (and forgotten) lazily when the heap surfaces them.
    cancelled: BTreeSet<u64>,
    seq: u64,
    now: f64,
}

/// A handle to one scheduled event, returned by
/// [`EventQueue::schedule_cancellable`] and redeemed by
/// [`EventQueue::cancel`]. Tokens are unique per queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CancelToken(u64);

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The time of the last popped event (the simulation clock).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending (scheduled, not popped, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or earlier than the current simulation time
    /// (causality violation).
    pub fn schedule(&mut self, at: f64, event: E) {
        self.schedule_cancellable(at, event);
    }

    /// Schedules `event` at absolute time `at` and returns a token that
    /// can revoke it while it is still pending — the primitive batching
    /// windows need to retract their scheduled close when a batch fills
    /// early.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or earlier than the current simulation time
    /// (causality violation).
    pub fn schedule_cancellable(&mut self, at: f64, event: E) -> CancelToken {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
        self.pending.insert(seq);
        self.seq += 1;
        CancelToken(seq)
    }

    /// Cancels the event behind `token` if it is still pending. Returns
    /// `true` if the event was revoked, `false` if it had already been
    /// popped or cancelled. A cancelled event is never returned by
    /// [`EventQueue::pop`] and never advances the clock.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        if self.pending.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest pending event, advancing the clock to it.
    /// Cancelled events are skipped (without advancing the clock).
    pub fn pop(&mut self) -> Option<(f64, E)> {
        loop {
            let e = self.heap.pop()?;
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            self.pending.remove(&e.seq);
            self.now = e.time;
            return Some((e.time, e.event));
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as i32);
        }
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        let mut last = 0.0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancelled_event_is_skipped_without_advancing_clock() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(1.0, "doomed");
        q.schedule(2.0, "kept");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        // The cancelled 1.0 event must neither surface nor move `now`.
        assert_eq!(q.pop(), Some((2.0, "kept")));
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelling_all_events_leaves_clock_untouched() {
        let mut q: EventQueue<()> = EventQueue::new();
        let tok = q.schedule_cancellable(5.0, ());
        assert!(q.cancel(tok));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 0.0);
    }

    #[test]
    fn double_cancel_and_cancel_after_pop_return_false() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(1.0, "a");
        let b = q.schedule_cancellable(2.0, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel must be a no-op");
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert!(!q.cancel(b), "cancel after pop must be a no-op");
    }

    #[test]
    fn len_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let toks: Vec<_> = (0..4)
            .map(|i| q.schedule_cancellable(f64::from(i), i))
            .collect();
        assert_eq!(q.len(), 4);
        q.cancel(toks[1]);
        q.cancel(toks[3]);
        assert_eq!(q.len(), 2);
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, vec![0, 2]);
        assert!(q.is_empty());
    }
}
