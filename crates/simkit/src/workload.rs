//! Deterministic workload generation for the fleet simulator.
//!
//! A workload is a mix of request *classes* (network × batch × tenant,
//! weighted) under an [`ArrivalProcess`] — open-loop Poisson or
//! closed-loop clients with think time. All randomness comes from one
//! seeded [`Lcg`], so the same [`WorkloadSpec`] always generates the same
//! request stream, byte for byte.
//!
//! The Poisson stream has a property the monotonicity suite relies on:
//! each arrival consumes a *fixed* number of LCG draws (one for the
//! class, one for the exponential gap), so scaling `rate_rps` with the
//! same seed replays the identical class sequence on a compressed time
//! axis. Offered-load sweeps therefore compare the *same* requests, just
//! packed tighter.

/// A 64-bit linear congruential generator (Knuth's MMIX constants).
/// Deterministic, `Send`, and cheap — the only randomness source the
/// simulator is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // One warm-up step decorrelates small adjacent seeds.
        let mut lcg = Lcg {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        lcg.next_u64();
        lcg
    }

    /// The next raw 31 bits of state (upper bits, which cycle longest).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.next_u64() as f64 / (1u64 << 31) as f64
    }

    /// An exponential draw with the given rate (inverse-CDF method).
    /// Consumes exactly one uniform draw.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive and finite, got {rate}"
        );
        let u = self.next_f64();
        -(1.0 - u).ln() / rate
    }

    /// Picks an index proportionally to `weights`. Consumes exactly one
    /// uniform draw regardless of the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is negative, NaN, or
    /// the total is zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted needs at least 1 weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite total, got {total}"
        );
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            assert!(*w >= 0.0, "weight {i} is negative: {w}");
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

/// One request class in the mix: which network (an index into the
/// caller's catalog), at what batch size, for which tenant, and how much
/// of the traffic it makes up.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestClass {
    /// Tenant label, carried through to reports (and usable by affinity
    /// placement policies).
    pub tenant: String,
    /// Index of the network in the catalog passed to the simulator.
    pub network: usize,
    /// Inference batch size of one request of this class.
    pub batch: usize,
    /// Relative traffic weight (any positive scale).
    pub weight: f64,
}

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival gaps at `rate_rps` requests
    /// per second, independent of system state.
    Poisson {
        /// Mean offered load in requests per second.
        rate_rps: f64,
    },
    /// Closed loop: `clients` clients that each keep one request in the
    /// system, waiting `think_seconds` after a completion (or rejection)
    /// before issuing the next.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
        /// Think time between a client's completion and its next request.
        think_seconds: f64,
    },
}

/// A complete, reproducible workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The request mix.
    pub classes: Vec<RequestClass>,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Seed of the [`Lcg`] driving class selection and arrival gaps.
    pub seed: u64,
    /// Arrivals stop at this time; the simulation also stops here, with
    /// whatever is still queued or in service reported as in flight.
    pub horizon_seconds: f64,
}

impl WorkloadSpec {
    /// The class weights, in class order (for [`Lcg::pick_weighted`]).
    pub fn weights(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_per_seed() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(43);
        let same: usize = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "different seeds should diverge, {same}/64 equal");
    }

    #[test]
    fn uniform_draws_live_in_unit_interval() {
        let mut lcg = Lcg::new(7);
        for _ in 0..1000 {
            let u = lcg.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_tracks_rate() {
        let mut lcg = Lcg::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| lcg.next_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn scaling_rate_compresses_the_same_gap_sequence() {
        let mut slow = Lcg::new(3);
        let mut fast = Lcg::new(3);
        for _ in 0..100 {
            let g1 = slow.next_exp(10.0);
            let g2 = fast.next_exp(20.0);
            assert!((g1 / g2 - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut lcg = Lcg::new(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[lcg.pick_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        let mid = counts[1] as f64 / 30_000.0;
        assert!((mid - 0.5).abs() < 0.02, "{counts:?}");
        // Zero-weight classes are never picked.
        let mut lcg = Lcg::new(5);
        for _ in 0..1000 {
            assert_ne!(lcg.pick_weighted(&[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 weight")]
    fn empty_weights_panic() {
        Lcg::new(0).pick_weighted(&[]);
    }
}
