//! Property-based tests for the event queue, link model and the
//! disaggregated-memory simulation.

use dnnperf_simkit::{simulate_disaggregated, DisaggConfig, EventQueue, LayerWork, Link};
use dnnperf_testkit::prelude::*;

props! {
    #[test]
    fn event_queue_pops_in_sorted_order(times in vec(0.0..1e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order(
        base in 0.0..1e3f64,
        dupes in 2usize..32,
        noise in vec(0.0..1e3f64, 0..32),
    ) {
        // Interleave a run of same-time events with noise at other times;
        // the same-time run must come back FIFO.
        let mut q = EventQueue::new();
        for (i, &t) in noise.iter().enumerate() {
            q.schedule(t, usize::MAX - i);
        }
        for i in 0..dupes {
            q.schedule(base, i);
        }
        let mut tied = Vec::new();
        while let Some((t, e)) = q.pop() {
            if t == base && e < usize::MAX - noise.len() {
                tied.push(e);
            }
        }
        prop_assert_eq!(tied, (0..dupes).collect::<Vec<_>>());
    }

    #[test]
    fn no_time_travel_under_interleaved_schedule_and_pop(
        script in vec((0.0..10.0f64, 0usize..3), 1..120),
    ) {
        // Replay a random schedule/pop script: every schedule lands at
        // `now + delta` (always legal), every popped time and the clock
        // itself must be nondecreasing.
        let mut q = EventQueue::new();
        let mut last = 0.0f64;
        for &(delta, pops) in &script {
            q.schedule(q.now() + delta, ());
            for _ in 0..pops {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t >= last, "time travel: {t} after {last}");
                    prop_assert_eq!(q.now(), t);
                    last = t;
                }
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn duplicate_time_keys_all_surface_exactly_once(
        time in 0.0..100.0f64,
        n in 1usize..64,
    ) {
        // A heap with n entries under one key must yield n pops, FIFO.
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(time, i);
        }
        prop_assert_eq!(q.len(), n);
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            prop_assert_eq!(t, time);
            got.push(e);
        }
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled_events(
        times in vec(0.0..1e3f64, 1..100),
        stride in 2usize..5,
    ) {
        // Cancel every `stride`-th event; the survivors (and only they)
        // pop, in time order, and `len` tracks the survivor count.
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_cancellable(t, i)))
            .collect();
        let mut live = 0usize;
        for &(i, tok) in &tokens {
            if i % stride == 0 {
                prop_assert!(q.cancel(tok));
                prop_assert!(!q.cancel(tok), "double cancel must fail");
            } else {
                live += 1;
            }
        }
        prop_assert_eq!(q.len(), live);
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0usize;
        while let Some((t, e)) = q.pop() {
            prop_assert!(e % stride != 0, "cancelled event {e} surfaced");
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, live);
    }

    #[test]
    fn link_transfers_never_overlap(requests in vec((0.0..100.0f64, 0u64..1 << 30), 1..50)) {
        let mut link = Link::new(8.0);
        let mut sorted = requests.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last_end = 0.0f64;
        let mut now = 0.0f64;
        for (at, bytes) in sorted {
            now = now.max(at);
            let (start, end) = link.transfer(now, bytes);
            prop_assert!(start >= last_end - 1e-12, "transfers overlap: start {start} < {last_end}");
            prop_assert!(end >= start);
            let expected = bytes as f64 / 8e9;
            prop_assert!((end - start - expected).abs() < 1e-12);
            last_end = end;
        }
    }

    #[test]
    fn disagg_invariants_hold(
        layers in vec((1e-7..1e-2f64, 0u64..64_000_000), 1..60),
        bw in 1.0..1000.0f64,
        lookahead in 1usize..16,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let r = simulate_disaggregated(&work, DisaggConfig { link_bandwidth_gbps: bw, lookahead });
        let compute: f64 = work.iter().map(|l| l.compute_seconds).sum();
        let fetch: f64 = work.iter().map(|l| l.param_bytes as f64).sum::<f64>() / (bw * 1e9);
        // Total time is at least the compute and at least the serialized
        // fetch, and at most their sum.
        prop_assert!(r.total_seconds >= compute - 1e-12);
        prop_assert!(r.total_seconds >= fetch - 1e-9);
        prop_assert!(r.total_seconds <= compute + fetch + 1e-9);
        prop_assert!((r.total_seconds - (r.compute_seconds + r.stall_seconds)).abs() < 1e-9);
        let u = r.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    #[test]
    fn disagg_monotone_in_bandwidth(
        layers in vec((1e-6..1e-3f64, 1u64..32_000_000), 1..40),
        bw in 2.0..500.0f64,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let cfg = |b| DisaggConfig { link_bandwidth_gbps: b, lookahead: 4 };
        let slow = simulate_disaggregated(&work, cfg(bw)).total_seconds;
        let fast = simulate_disaggregated(&work, cfg(bw * 2.0)).total_seconds;
        prop_assert!(fast <= slow + 1e-12, "more bandwidth slowed things down: {slow} -> {fast}");
    }

    #[test]
    fn disagg_monotone_in_lookahead(
        layers in vec((1e-6..1e-3f64, 1u64..32_000_000), 1..40),
        lookahead in 1usize..12,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let cfg = |l| DisaggConfig { link_bandwidth_gbps: 32.0, lookahead: l };
        let shallow = simulate_disaggregated(&work, cfg(lookahead)).total_seconds;
        let deep = simulate_disaggregated(&work, cfg(lookahead + 4)).total_seconds;
        prop_assert!(deep <= shallow + 1e-12, "deeper prefetch slowed things down");
    }
}
