//! Property-based tests for the event queue, link model and the
//! disaggregated-memory simulation.

use dnnperf_simkit::{simulate_disaggregated, DisaggConfig, EventQueue, LayerWork, Link};
use dnnperf_testkit::prelude::*;

props! {
    #[test]
    fn event_queue_pops_in_sorted_order(times in vec(0.0..1e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn link_transfers_never_overlap(requests in vec((0.0..100.0f64, 0u64..1 << 30), 1..50)) {
        let mut link = Link::new(8.0);
        let mut sorted = requests.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last_end = 0.0f64;
        let mut now = 0.0f64;
        for (at, bytes) in sorted {
            now = now.max(at);
            let (start, end) = link.transfer(now, bytes);
            prop_assert!(start >= last_end - 1e-12, "transfers overlap: start {start} < {last_end}");
            prop_assert!(end >= start);
            let expected = bytes as f64 / 8e9;
            prop_assert!((end - start - expected).abs() < 1e-12);
            last_end = end;
        }
    }

    #[test]
    fn disagg_invariants_hold(
        layers in vec((1e-7..1e-2f64, 0u64..64_000_000), 1..60),
        bw in 1.0..1000.0f64,
        lookahead in 1usize..16,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let r = simulate_disaggregated(&work, DisaggConfig { link_bandwidth_gbps: bw, lookahead });
        let compute: f64 = work.iter().map(|l| l.compute_seconds).sum();
        let fetch: f64 = work.iter().map(|l| l.param_bytes as f64).sum::<f64>() / (bw * 1e9);
        // Total time is at least the compute and at least the serialized
        // fetch, and at most their sum.
        prop_assert!(r.total_seconds >= compute - 1e-12);
        prop_assert!(r.total_seconds >= fetch - 1e-9);
        prop_assert!(r.total_seconds <= compute + fetch + 1e-9);
        prop_assert!((r.total_seconds - (r.compute_seconds + r.stall_seconds)).abs() < 1e-9);
        let u = r.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    #[test]
    fn disagg_monotone_in_bandwidth(
        layers in vec((1e-6..1e-3f64, 1u64..32_000_000), 1..40),
        bw in 2.0..500.0f64,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let cfg = |b| DisaggConfig { link_bandwidth_gbps: b, lookahead: 4 };
        let slow = simulate_disaggregated(&work, cfg(bw)).total_seconds;
        let fast = simulate_disaggregated(&work, cfg(bw * 2.0)).total_seconds;
        prop_assert!(fast <= slow + 1e-12, "more bandwidth slowed things down: {slow} -> {fast}");
    }

    #[test]
    fn disagg_monotone_in_lookahead(
        layers in vec((1e-6..1e-3f64, 1u64..32_000_000), 1..40),
        lookahead in 1usize..12,
    ) {
        let work: Vec<LayerWork> = layers
            .iter()
            .map(|&(c, p)| LayerWork { compute_seconds: c, param_bytes: p })
            .collect();
        let cfg = |l| DisaggConfig { link_bandwidth_gbps: 32.0, lookahead: l };
        let shallow = simulate_disaggregated(&work, cfg(lookahead)).total_seconds;
        let deep = simulate_disaggregated(&work, cfg(lookahead + 4)).total_seconds;
        prop_assert!(deep <= shallow + 1e-12, "deeper prefetch slowed things down");
    }
}
