//! Property-based tests for the scheduling case study and the
//! work-stealing pool.

use dnnperf_sched::{
    best_gpu, brute_force_schedule, evaluate_makespan, lpt_schedule, run_indexed, JobTimes,
};
use dnnperf_testkit::prelude::*;

fn arb_jobs(max_jobs: usize, gpus: usize) -> impl Gen<Value = Vec<JobTimes>> {
    vec(vec(0.01..100.0f64, gpus..=gpus), 1..=max_jobs).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, per_gpu)| JobTimes {
                name: format!("job{i}"),
                per_gpu,
            })
            .collect()
    })
}

props! {
    #[test]
    fn brute_force_is_optimal(jobs in arb_jobs(8, 2), probe in vec(0usize..2, 8)) {
        let opt = brute_force_schedule(&jobs);
        // No explicit assignment may beat it.
        let assignment: Vec<usize> = probe.iter().take(jobs.len()).copied().collect();
        if assignment.len() == jobs.len() {
            let m = evaluate_makespan(&jobs, &assignment);
            prop_assert!(opt.makespan <= m + 1e-12);
        }
        // And the reported makespan is self-consistent.
        prop_assert!((evaluate_makespan(&jobs, &opt.assignment) - opt.makespan).abs() < 1e-12);
    }

    #[test]
    fn lpt_is_feasible_and_bounded(jobs in arb_jobs(12, 3)) {
        let greedy = lpt_schedule(&jobs);
        prop_assert_eq!(greedy.assignment.len(), jobs.len());
        for &g in &greedy.assignment {
            prop_assert!(g < 3);
        }
        // Never worse than putting everything on one GPU.
        for gpu in 0..3 {
            let all_on_one = vec![gpu; jobs.len()];
            prop_assert!(greedy.makespan <= evaluate_makespan(&jobs, &all_on_one) + 1e-12);
        }
    }

    #[test]
    fn lpt_never_beats_brute_force(jobs in arb_jobs(7, 2)) {
        let opt = brute_force_schedule(&jobs);
        let greedy = lpt_schedule(&jobs);
        prop_assert!(greedy.makespan >= opt.makespan - 1e-12);
    }

    #[test]
    fn makespan_lower_bound_holds(jobs in arb_jobs(8, 2)) {
        // Makespan is at least the largest single job (on its best GPU) and
        // at least the best-case average load.
        let opt = brute_force_schedule(&jobs);
        let max_single = jobs
            .iter()
            .map(|j| j.per_gpu.iter().cloned().fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max);
        prop_assert!(opt.makespan >= max_single - 1e-12);
        let total_best: f64 = jobs
            .iter()
            .map(|j| j.per_gpu.iter().cloned().fold(f64::INFINITY, f64::min))
            .sum();
        prop_assert!(opt.makespan >= total_best / 2.0 - 1e-12);
    }

    #[test]
    fn best_gpu_is_argmin(times in vec(0.01..100.0f64, 1..8)) {
        let g = best_gpu(&times);
        for t in &times {
            prop_assert!(times[g] <= *t);
        }
    }

    #[test]
    fn run_indexed_matches_serial_map(jobs in 0usize..40, workers in 1usize..33) {
        // Work-stealing execution must be observationally identical to a
        // serial map, for every jobs/workers shape including workers > jobs.
        let serial: Vec<u64> = (0..jobs).map(|i| (i as u64).wrapping_mul(0x9E37_79B9)).collect();
        let parallel = run_indexed(jobs, workers, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        prop_assert_eq!(serial, parallel);
    }
}
