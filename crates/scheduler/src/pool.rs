//! A std-only work-stealing pool for indexed job grids.
//!
//! Dataset collection (and any other embarrassingly parallel grid) needs two
//! properties at once: *dynamic load balance* — profiling jobs vary by orders
//! of magnitude in cost, so static chunking leaves workers idle — and
//! *deterministic output* — downstream consumers (dataset dedup, the
//! layer-to-kernel mapping table, cache digests) rely on serial row order.
//!
//! [`run_indexed`] provides both: jobs are identified by their index in the
//! serial iteration order, workers pull from per-worker deques and steal
//! from each other when they run dry, and the results are stitched back
//! into index order before returning. Scheduling is nondeterministic;
//! output never is.

use crate::sync::lock_unpoisoned;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Per-worker double-ended job queues with stealing.
///
/// Job indices `0..jobs` are dealt to the workers in contiguous blocks
/// (preserving locality with the serial order). Each worker pops its own
/// queue from the front and, once empty, steals from the *back* of a
/// victim's queue — the classic Chase–Lev discipline, here guarded by one
/// mutex per deque (collection jobs cost milliseconds, so lock traffic is
/// noise).
#[derive(Debug)]
pub struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Deals job indices `0..jobs` to `workers` queues in contiguous blocks.
    ///
    /// With `workers > jobs` the extra queues start empty; their workers go
    /// straight to stealing (and find nothing if the grid is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(jobs: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker queue");
        let chunk = jobs.div_ceil(workers).max(1);
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for j in 0..jobs {
            deques[j / chunk].push_back(j);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Pops the next job from worker `w`'s own queue (front).
    ///
    /// A poisoned queue mutex is recovered rather than propagated: the
    /// deque only holds plain indices, so a panic elsewhere cannot have
    /// left it in a torn state, and panic isolation (see
    /// [`run_indexed_catching`]) demands that one bad job never wedges the
    /// scheduler.
    pub fn pop_own(&self, w: usize) -> Option<usize> {
        lock_unpoisoned(&self.deques[w]).pop_front()
    }

    /// Steals one job from some other worker's queue (back), scanning
    /// victims cyclically starting after `w`.
    pub fn steal(&self, w: usize) -> Option<usize> {
        let n = self.deques.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(j) = lock_unpoisoned(&self.deques[victim]).pop_back() {
                return Some(j);
            }
        }
        None
    }

    /// The next job for worker `w`: own queue first, then stealing.
    /// `None` means the whole grid is exhausted.
    pub fn next_job(&self, w: usize) -> Option<usize> {
        self.pop_own(w).or_else(|| self.steal(w))
    }
}

/// A job that panicked inside a work-stealing run: the index it carried
/// plus the original panic payload (so non-isolating callers can resume
/// the unwind faithfully).
#[derive(Debug)]
pub struct JobPanic {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic payload as `std::thread::JoinHandle::join` would surface it.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl JobPanic {
    /// Best-effort rendering of the panic message.
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }
}

/// Runs jobs `0..jobs` on `workers` work-stealing threads with **per-job
/// panic isolation**, returning one `Result` per job **in job-index
/// order**.
///
/// Each job is wrapped in `catch_unwind`: a panicking job yields
/// `Err(JobPanic)` for *its own slot only* — every other job still runs
/// and returns normally, and the worker that hit the panic keeps pulling
/// jobs. This is the resilience contract the dataset collection engine
/// builds on: one poisoned grid point must never kill a whole profiling
/// campaign.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn run_indexed_catching<T, F>(jobs: usize, workers: usize, run: F) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker thread");
    let caught = |j: usize| -> Result<T, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| run(j))).map_err(|payload| JobPanic { index: j, payload })
    };
    if jobs == 0 {
        return Vec::new();
    }
    if workers == 1 || jobs == 1 {
        // No second worker to steal from: skip thread setup entirely.
        return (0..jobs).map(caught).collect();
    }
    let queues = StealQueues::new(jobs, workers);
    let per_worker: Vec<Vec<(usize, Result<T, JobPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let caught = &caught;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(j) = queues.next_job(w) {
                        out.push((j, caught(j)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Jobs are caught individually, so a worker-level panic can
                // only be a harness bug; propagate it faithfully.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Stitch back into serial order: every index is produced exactly once.
    let mut slots: Vec<Option<Result<T, JobPanic>>> = (0..jobs).map(|_| None).collect();
    for (j, v) in per_worker.into_iter().flatten() {
        debug_assert!(slots[j].is_none(), "job {j} ran twice");
        slots[j] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(j, s)| match s {
            Some(v) => v,
            None => unreachable!("job {j} was never executed"),
        })
        .collect()
}

/// Runs jobs `0..jobs` on `workers` work-stealing threads and returns the
/// results **in job-index order**, exactly as a serial
/// `(0..jobs).map(run).collect()` would.
///
/// Each job is executed exactly once, by whichever worker claims it.
/// Workers that finish their own block steal from the busiest survivors,
/// so a single slow job (a big network on a big GPU) no longer serializes
/// its whole chunk behind it.
///
/// # Panics
///
/// Panics if `workers` is zero, or propagates the first (lowest-index)
/// panic from `run` after every other job has completed.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_catching(jobs, workers, run)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p.payload),
        })
        .collect()
}

/// Runs jobs `0..jobs` on `workers` work-stealing threads and folds the
/// per-job results into `init` **in job-index order**: the returned value
/// equals `(0..jobs).map(map).fold(init, fold)` executed serially.
///
/// This is the pool's deterministic reduction primitive. Which worker
/// computes which partial is nondeterministic; the fold sequence never is,
/// so a reduction over partial accumulators (chunked regression sums,
/// histogram merges) produces bit-identical results at every worker count —
/// provided the *job decomposition* itself is worker-independent (fixed
/// chunk sizes, never `jobs / workers`).
///
/// All partials are materialised before folding (they are small accumulator
/// values in every current use); the fold runs on the calling thread.
///
/// # Panics
///
/// Panics if `workers` is zero, or propagates the first (lowest-index)
/// panic from `map` after every other job has completed.
pub fn map_reduce<T, A, M, F>(jobs: usize, workers: usize, map: M, init: A, fold: F) -> A
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    run_indexed(jobs, workers, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8, 40] {
            let out = run_indexed(17, workers, |i| i * i);
            let expect: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_indexed(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn zero_jobs_returns_empty() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        run_indexed(4, 0, |i| i);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_indexed(100, 7, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn skewed_job_costs_are_stolen() {
        // One pathologically slow job at index 0; with static chunking its
        // whole block would wait behind it, here the other workers steal it
        // empty. We can't assert timing portably, so assert correctness
        // under the skew and that multiple workers participated.
        let seen = Mutex::new(std::collections::HashSet::new());
        let out = run_indexed(64, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            seen.lock().unwrap().insert(std::thread::current().id());
            i * 2
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected >1 worker to run jobs"
        );
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        for workers in [1, 2, 3, 8, 40] {
            let folded = map_reduce(
                10,
                workers,
                |i| i.to_string(),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(folded, "0123456789", "workers = {workers}");
        }
    }

    #[test]
    fn map_reduce_zero_jobs_returns_init() {
        let folded = map_reduce(0, 4, |i| i, 42usize, |a, b| a + b);
        assert_eq!(folded, 42);
    }

    #[test]
    fn steal_takes_from_the_back() {
        let q = StealQueues::new(6, 2);
        // Worker 0 owns {0,1,2}, worker 1 owns {3,4,5}.
        assert_eq!(q.pop_own(0), Some(0));
        assert_eq!(q.steal(0), Some(5), "steals from the victim's back");
        assert_eq!(q.pop_own(1), Some(3));
        assert_eq!(q.next_job(1), Some(4));
        assert_eq!(q.next_job(1), Some(2), "own queue empty: steals 0's back");
        assert_eq!(q.next_job(1), Some(1));
        assert_eq!(q.next_job(0), None);
    }
}
