//! Queue scheduling across heterogeneous GPUs.

/// One job (a network inference task) with its execution time on each GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimes {
    /// Job (network) name.
    pub name: String,
    /// Execution time on each GPU, in seconds; all jobs must agree on the
    /// GPU ordering.
    pub per_gpu: Vec<f64>,
}

/// A complete assignment of jobs to GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `assignment[j]` is the GPU index job `j` runs on.
    pub assignment: Vec<usize>,
    /// The makespan under the times used for scheduling.
    pub makespan: f64,
}

fn gpu_count(jobs: &[JobTimes]) -> usize {
    let k = jobs.first().map_or(0, |j| j.per_gpu.len());
    assert!(k > 0, "jobs must list at least one GPU");
    assert!(
        jobs.iter().all(|j| j.per_gpu.len() == k),
        "all jobs must cover the same GPUs"
    );
    k
}

/// Computes the makespan of an assignment under the given per-job times.
///
/// # Panics
///
/// Panics if the assignment length differs from the job count or indexes a
/// nonexistent GPU.
pub fn evaluate_makespan(jobs: &[JobTimes], assignment: &[usize]) -> f64 {
    assert_eq!(jobs.len(), assignment.len(), "assignment length mismatch");
    let k = gpu_count(jobs);
    let mut load = vec![0.0; k];
    for (job, &gpu) in jobs.iter().zip(assignment) {
        assert!(gpu < k, "assignment references GPU {gpu}, only {k} exist");
        load[gpu] += job.per_gpu[gpu];
    }
    load.into_iter().fold(0.0, f64::max)
}

/// Exhaustive search over all `k^n` assignments — optimal, and entirely
/// practical when predictions cost microseconds (the paper schedules 9
/// networks on 2 GPUs).
///
/// # Panics
///
/// Panics if `jobs` is empty, the GPU lists disagree, or the search space
/// `k^n` exceeds 2^24 (use [`lpt_schedule`] for big instances).
///
/// # Examples
///
/// ```
/// use dnnperf_sched::{brute_force_schedule, JobTimes};
///
/// let jobs = vec![
///     JobTimes { name: "a".into(), per_gpu: vec![2.0, 4.0] },
///     JobTimes { name: "b".into(), per_gpu: vec![3.0, 3.0] },
/// ];
/// let s = brute_force_schedule(&jobs);
/// assert_eq!(s.assignment, vec![0, 1]);
/// assert_eq!(s.makespan, 3.0);
/// ```
pub fn brute_force_schedule(jobs: &[JobTimes]) -> Schedule {
    assert!(!jobs.is_empty(), "no jobs to schedule");
    let k = gpu_count(jobs);
    let n = jobs.len();
    let space = (k as f64).powi(n as i32);
    assert!(
        space <= (1u64 << 24) as f64,
        "search space too large: {k}^{n}"
    );

    let mut best: Option<Schedule> = None;
    let mut assignment = vec![0usize; n];
    loop {
        let makespan = evaluate_makespan(jobs, &assignment);
        if best.as_ref().is_none_or(|b| makespan < b.makespan) {
            best = Some(Schedule {
                assignment: assignment.clone(),
                makespan,
            });
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n {
                return match best {
                    Some(b) => b,
                    None => unreachable!("at least one assignment was evaluated"),
                };
            }
            assignment[i] += 1;
            if assignment[i] < k {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Longest-processing-time-first greedy scheduling: jobs sorted by their
/// fastest time descending, each placed on the GPU whose completion time
/// (current load plus this job) is smallest.
///
/// # Panics
///
/// Panics if `jobs` is empty or the GPU lists disagree.
pub fn lpt_schedule(jobs: &[JobTimes]) -> Schedule {
    assert!(!jobs.is_empty(), "no jobs to schedule");
    let k = gpu_count(jobs);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let ta = jobs[a]
            .per_gpu
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let tb = jobs[b]
            .per_gpu
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        tb.total_cmp(&ta)
    });
    let mut load = vec![0.0; k];
    let mut assignment = vec![0usize; jobs.len()];
    for &j in &order {
        let gpu = match (0..k).min_by(|&a, &b| {
            (load[a] + jobs[j].per_gpu[a]).total_cmp(&(load[b] + jobs[j].per_gpu[b]))
        }) {
            Some(g) => g,
            None => unreachable!("gpu_count asserts k > 0"),
        };
        assignment[j] = gpu;
        load[gpu] += jobs[j].per_gpu[gpu];
    }
    let makespan = evaluate_makespan(jobs, &assignment);
    Schedule {
        assignment,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, times: &[f64]) -> JobTimes {
        JobTimes {
            name: name.into(),
            per_gpu: times.to_vec(),
        }
    }

    #[test]
    fn brute_force_is_optimal_on_known_instance() {
        // Classic 2-machine instance: jobs 3,3,2,2,2 balance as 6 / 6.
        let jobs: Vec<JobTimes> = [3.0, 3.0, 2.0, 2.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &t)| job(&format!("j{i}"), &[t, t]))
            .collect();
        let s = brute_force_schedule(&jobs);
        assert_eq!(s.makespan, 6.0);
    }

    #[test]
    fn brute_force_exploits_heterogeneity() {
        let jobs = vec![
            job("fast_on_0", &[1.0, 10.0]),
            job("fast_on_1", &[10.0, 1.0]),
        ];
        let s = brute_force_schedule(&jobs);
        assert_eq!(s.assignment, vec![0, 1]);
        assert_eq!(s.makespan, 1.0);
    }

    #[test]
    fn lpt_never_beats_brute_force() {
        let jobs = vec![
            job("a", &[4.0, 5.0]),
            job("b", &[3.0, 2.0]),
            job("c", &[2.0, 2.5]),
            job("d", &[6.0, 7.0]),
            job("e", &[1.0, 0.5]),
        ];
        let opt = brute_force_schedule(&jobs);
        let greedy = lpt_schedule(&jobs);
        assert!(greedy.makespan >= opt.makespan - 1e-12);
    }

    #[test]
    fn evaluate_matches_manual_accounting() {
        let jobs = vec![
            job("a", &[2.0, 9.0]),
            job("b", &[9.0, 3.0]),
            job("c", &[1.0, 1.0]),
        ];
        let m = evaluate_makespan(&jobs, &[0, 1, 0]);
        assert_eq!(m, 3.0);
    }

    #[test]
    fn single_gpu_schedules_everything_there() {
        let jobs = vec![job("a", &[1.0]), job("b", &[2.0])];
        let s = brute_force_schedule(&jobs);
        assert_eq!(s.assignment, vec![0, 0]);
        assert_eq!(s.makespan, 3.0);
    }

    #[test]
    #[should_panic(expected = "same GPUs")]
    fn ragged_gpu_lists_panic() {
        let jobs = vec![job("a", &[1.0, 2.0]), job("b", &[1.0])];
        brute_force_schedule(&jobs);
    }

    #[test]
    #[should_panic(expected = "search space")]
    fn oversized_search_space_panics() {
        let jobs: Vec<JobTimes> = (0..30)
            .map(|i| job(&format!("j{i}"), &[1.0, 1.0]))
            .collect();
        brute_force_schedule(&jobs);
    }
}
