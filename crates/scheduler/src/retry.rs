//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Real profiling campaigns fail in boring, transient ways: a driver
//! hiccup, a co-located job stealing the GPU for a moment, a filesystem
//! blip while a trace is written. The collection engine therefore wraps
//! every grid point in [`retry_with_backoff`]: a bounded number of
//! re-attempts, spaced by an exponential [`Backoff`] whose jitter is
//! *deterministic* (derived from a seed, not from wall-clock entropy), so
//! a retried run remains exactly reproducible.
//!
//! Sleeping goes through the [`Clock`] trait; tests substitute a fake
//! clock that records the requested delays instead of waiting them out.

use std::time::Duration;

// -- tiny deterministic hash (SplitMix64) -----------------------------------
//
// This crate must stay dependency-free within the workspace (see lib.rs),
// so the jitter hash is a local copy of the SplitMix64 finalizer that
// `dnnperf-testkit::hashrng` uses, rather than a dependency on it.

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` from a hash (top 53 bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// -- clock ------------------------------------------------------------------

/// A sleepable, readable clock. Production code uses [`SystemClock`];
/// tests inject a recording fake so backoff schedules (and elapsed-time
/// decisions like straggler detection) can be asserted without waiting.
///
/// This trait is the **only** sanctioned gateway to wall-clock time in
/// result-affecting code: `dnnperf-lint`'s determinism-hygiene pass bans
/// `Instant::now`/`SystemTime` everywhere outside this module and the
/// bench harness, so any elapsed-time measurement that can influence an
/// output must be injectable (and therefore fakeable) through [`Clock`].
pub trait Clock {
    /// Blocks for (or records) `d`.
    fn sleep(&self, d: Duration);

    /// A monotonic reading since an arbitrary per-clock epoch. Only
    /// differences between two readings of the *same* clock are
    /// meaningful.
    fn now(&self) -> Duration;
}

/// The real clock: `std::thread::sleep` + a process-wide monotonic epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

/// The process-wide epoch [`SystemClock::now`] reports against. Pinned by
/// a `OnceLock` so readings are comparable across `SystemClock` values.
fn system_epoch() -> std::time::Instant {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn now(&self) -> Duration {
        system_epoch().elapsed()
    }
}

/// A test clock that records every requested sleep and never blocks.
///
/// Fake time advances only when [`Clock::sleep`] is called (by the sum of
/// all recorded sleeps) or when a test injects an explicit [`advance`]:
/// two [`Clock::now`] readings with no sleep in between are identical, so
/// elapsed-time decisions driven by this clock are fully deterministic.
///
/// [`advance`]: RecordingClock::advance
#[derive(Debug, Default)]
pub struct RecordingClock {
    sleeps: std::sync::Mutex<Vec<Duration>>,
    extra: std::sync::Mutex<Duration>,
}

impl RecordingClock {
    /// Creates an empty recording clock.
    pub fn new() -> Self {
        RecordingClock::default()
    }

    /// The sleeps requested so far, in order.
    pub fn sleeps(&self) -> Vec<Duration> {
        crate::sync::lock_unpoisoned(&self.sleeps).clone()
    }

    /// Advances fake time by `d` without recording a sleep (models work
    /// taking `d` of wall time in a test).
    pub fn advance(&self, d: Duration) {
        *crate::sync::lock_unpoisoned(&self.extra) += d;
    }
}

impl Clock for RecordingClock {
    fn sleep(&self, d: Duration) {
        crate::sync::lock_unpoisoned(&self.sleeps).push(d);
    }

    fn now(&self) -> Duration {
        let slept: Duration = crate::sync::lock_unpoisoned(&self.sleeps).iter().sum();
        slept + *crate::sync::lock_unpoisoned(&self.extra)
    }
}

// -- backoff ----------------------------------------------------------------

/// An exponential backoff schedule with deterministic jitter.
///
/// The raw delay for retry `attempt` (0-based) is
/// `base * factor^attempt`, capped at `cap`. On top of that, a
/// multiplicative jitter in `[0.5, 1.0)` is applied, derived purely from
/// `(jitter_seed, attempt)` — two runs with the same seed sleep for
/// exactly the same durations ("decorrelate workers, not runs").
///
/// # Examples
///
/// ```
/// use dnnperf_sched::retry::Backoff;
/// use std::time::Duration;
///
/// let b = Backoff::new(Duration::from_millis(10), 2.0, Duration::from_millis(100), 7);
/// assert_eq!(b.delay(0), b.delay(0)); // deterministic
/// assert!(b.delay(9) <= Duration::from_millis(100)); // capped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Multiplicative growth per retry.
    pub factor: f64,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Backoff {
    /// Creates a backoff schedule.
    pub fn new(base: Duration, factor: f64, cap: Duration, jitter_seed: u64) -> Self {
        Backoff {
            base,
            factor,
            cap,
            jitter_seed,
        }
    }

    /// A schedule suited to millisecond-scale in-process jobs:
    /// 1 ms base, doubling, 50 ms cap.
    pub fn fast(jitter_seed: u64) -> Self {
        Backoff::new(
            Duration::from_millis(1),
            2.0,
            Duration::from_millis(50),
            jitter_seed,
        )
    }

    /// The pre-jitter (deterministic, monotone) delay for retry `attempt`.
    pub fn raw_delay(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.powi(attempt.min(63) as i32);
        Duration::from_secs_f64(exp.min(self.cap.as_secs_f64()).max(0.0))
    }

    /// The jittered delay for retry `attempt`: `raw * u`, with
    /// `u in [0.5, 1.0)` derived from `(jitter_seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let raw = self.raw_delay(attempt).as_secs_f64();
        let u = 0.5
            + 0.5
                * unit(splitmix(
                    self.jitter_seed ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03),
                ));
        Duration::from_secs_f64(raw * u)
    }
}

// -- retry executor ---------------------------------------------------------

/// How an error should be treated by the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Worth another attempt (transient fault, corrupt measurement, ...).
    Retriable,
    /// Retrying cannot help (out of memory, invalid request, ...).
    Permanent,
}

/// Retry budget plus backoff schedule for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of *retries* (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// The delay schedule between attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries on the [`Backoff::fast`] schedule.
    pub fn fast(max_retries: u32, jitter_seed: u64) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Backoff::fast(jitter_seed),
        }
    }

    /// No retries at all (every failure is final).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Backoff::fast(0),
        }
    }
}

/// What [`retry_with_backoff`] produced: the final result plus how many
/// attempts were spent getting it.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The last attempt's result.
    pub result: Result<T, E>,
    /// Total attempts executed (>= 1).
    pub attempts: u32,
}

impl<T, E> RetryOutcome<T, E> {
    /// Number of retries performed (attempts beyond the first).
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Runs `op` until it succeeds, fails permanently (per `classify`), or the
/// retry budget is exhausted. Sleeps `policy.backoff.delay(attempt)` on
/// `clock` between attempts. `op` receives the 0-based attempt index so
/// deterministic fault models can key decisions off it.
///
/// # Examples
///
/// ```
/// use dnnperf_sched::retry::{retry_with_backoff, RetryClass, RetryPolicy, SystemClock};
///
/// let mut calls = 0;
/// let out = retry_with_backoff(
///     &RetryPolicy::fast(3, 42),
///     &SystemClock,
///     |_e: &&str| RetryClass::Retriable,
///     |attempt| {
///         calls += 1;
///         if attempt < 2 { Err("transient") } else { Ok(attempt) }
///     },
/// );
/// assert_eq!(out.result, Ok(2));
/// assert_eq!(out.attempts, 3);
/// assert_eq!(calls, 3);
/// ```
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    clock: &(impl Clock + ?Sized),
    classify: impl Fn(&E) -> RetryClass,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let mut attempt: u32 = 0;
    loop {
        match op(attempt) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt + 1,
                }
            }
            Err(e) => {
                if attempt >= policy.max_retries || classify(&e) == RetryClass::Permanent {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt + 1,
                    };
                }
                clock.sleep(policy.backoff.delay(attempt));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn raw_schedule_doubles_and_caps() {
        let b = Backoff::new(ms(10), 2.0, ms(65), 0);
        assert_eq!(b.raw_delay(0), ms(10));
        assert_eq!(b.raw_delay(1), ms(20));
        assert_eq!(b.raw_delay(2), ms(40));
        assert_eq!(b.raw_delay(3), ms(65), "capped at 65ms, not 80ms");
        assert_eq!(b.raw_delay(40), ms(65));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let b = Backoff::new(ms(100), 2.0, ms(10_000), 1234);
        for attempt in 0..8 {
            let d1 = b.delay(attempt);
            let d2 = b.delay(attempt);
            assert_eq!(d1, d2, "same seed, same attempt, same delay");
            let raw = b.raw_delay(attempt);
            assert!(
                d1 >= raw / 2 && d1 < raw,
                "jitter in [0.5, 1.0): {d1:?} vs {raw:?}"
            );
        }
        // Different seeds decorrelate.
        let b2 = Backoff::new(ms(100), 2.0, ms(10_000), 99);
        assert!((0..8).any(|a| b.delay(a) != b2.delay(a)));
    }

    #[test]
    fn fake_clock_sees_the_whole_schedule() {
        let clock = RecordingClock::new();
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: Backoff::new(ms(8), 2.0, ms(1000), 7),
        };
        let out = retry_with_backoff(
            &policy,
            &clock,
            |_e: &()| RetryClass::Retriable,
            |_| Err::<u32, ()>(()),
        );
        assert_eq!(out.attempts, 4);
        assert_eq!(out.retries(), 3);
        assert!(out.result.is_err());
        let sleeps = clock.sleeps();
        assert_eq!(
            sleeps,
            vec![
                policy.backoff.delay(0),
                policy.backoff.delay(1),
                policy.backoff.delay(2)
            ],
            "one sleep per retry, following the schedule"
        );
        // The underlying schedule is exponential.
        assert!(sleeps[1] > sleeps[0] && sleeps[2] > sleeps[1]);
    }

    #[test]
    fn success_after_transients_stops_retrying() {
        let clock = RecordingClock::new();
        let out = retry_with_backoff(
            &RetryPolicy::fast(5, 0),
            &clock,
            |_e: &()| RetryClass::Retriable,
            |attempt| if attempt < 2 { Err(()) } else { Ok(attempt) },
        );
        assert_eq!(out.result, Ok(2));
        assert_eq!(out.attempts, 3);
        assert_eq!(clock.sleeps().len(), 2);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let clock = RecordingClock::new();
        let mut calls = 0;
        let out = retry_with_backoff(
            &RetryPolicy::fast(10, 0),
            &clock,
            |_e: &&str| RetryClass::Permanent,
            |_| {
                calls += 1;
                Err::<(), _>("oom")
            },
        );
        assert_eq!(out.attempts, 1);
        assert_eq!(calls, 1);
        assert!(clock.sleeps().is_empty(), "no backoff for permanent errors");
    }

    #[test]
    fn zero_retry_policy_is_single_shot() {
        let clock = RecordingClock::new();
        let out = retry_with_backoff(
            &RetryPolicy::none(),
            &clock,
            |_e: &()| RetryClass::Retriable,
            |_| Err::<(), ()>(()),
        );
        assert_eq!(out.attempts, 1);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn recording_clock_time_is_deterministic() {
        let clock = RecordingClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        assert_eq!(clock.now(), clock.now(), "no sleep, no time");
        clock.sleep(ms(10));
        assert_eq!(clock.now(), ms(10));
        clock.advance(ms(5));
        assert_eq!(clock.now(), ms(15));
        clock.sleep(ms(1));
        assert_eq!(clock.now(), ms(16));
        assert_eq!(
            clock.sleeps(),
            vec![ms(10), ms(1)],
            "advance is not a sleep"
        );
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a, "monotonic readings");
    }

    #[test]
    fn attempt_index_is_passed_through() {
        let seen = std::cell::RefCell::new(Vec::new());
        let _ = retry_with_backoff(
            &RetryPolicy::fast(2, 0),
            &RecordingClock::new(),
            |_e: &()| RetryClass::Retriable,
            |attempt| {
                seen.borrow_mut().push(attempt);
                Err::<(), ()>(())
            },
        );
        assert_eq!(*seen.borrow(), vec![0, 1, 2]);
    }
}
