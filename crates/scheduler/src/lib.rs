//! GPU selection and multi-GPU queue scheduling (paper Case Study 3).
//!
//! A machine-learning-as-a-service operator with heterogeneous GPUs wants
//! to (1) route each network to the GPU that runs it fastest and (2)
//! schedule a queue of jobs across the GPUs to minimise the overall
//! completion time (makespan). Both decisions only need *predicted* times,
//! which is what makes a microsecond-latency performance model valuable —
//! the paper brute-forces the schedule "thanks to the extremely fast
//! execution".
//!
//! The crate also hosts the in-process counterparts: [`pool`], a std-only
//! work-stealing job pool that the dataset collection engine
//! (`dnnperf-data`) fans its `(gpu, network, batch)` profiling grid out
//! over while keeping serial-identical output order, and [`mpmc`], the
//! bounded request queue the prediction server (`dnnperf-serve`) admits
//! work through. They live here so the "schedule work across executors"
//! logic has one home, and because this crate sits below both consumers
//! in the dependency graph.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod mpmc;
pub mod pool;
pub mod queue;
pub mod retry;
pub mod sync;

pub use mpmc::{Bounded, SendRejected};
pub use pool::{map_reduce, run_indexed, run_indexed_catching, JobPanic, StealQueues};
pub use queue::{brute_force_schedule, evaluate_makespan, lpt_schedule, JobTimes, Schedule};
pub use retry::{
    retry_with_backoff, Backoff, Clock, RecordingClock, RetryClass, RetryOutcome, RetryPolicy,
    SystemClock,
};
pub use sync::{lock_unpoisoned, read_unpoisoned, wait_unpoisoned, write_unpoisoned};

/// Picks the GPU index with the lowest predicted time for one job.
///
/// # Panics
///
/// Panics if `times` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(dnnperf_sched::best_gpu(&[3.0, 1.0, 2.0]), 1);
/// ```
pub fn best_gpu(times: &[f64]) -> usize {
    assert!(!times.is_empty(), "no GPUs to choose from");
    match times.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
        Some((i, _)) => i,
        None => unreachable!("slice checked nonempty above"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn best_gpu_picks_minimum() {
        assert_eq!(super::best_gpu(&[5.0, 4.0, 4.5]), 1);
        assert_eq!(super::best_gpu(&[1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "no GPUs")]
    fn empty_panics() {
        super::best_gpu(&[]);
    }
}
