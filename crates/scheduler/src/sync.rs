//! The workspace's canonical poison-recovery helpers.
//!
//! Every long-lived lock in the serving stack is acquired through these
//! four functions instead of a hand-rolled
//! `.lock().unwrap_or_else(PoisonError::into_inner)` chain. The policy
//! behind the idiom: a poisoned mutex means *some* thread panicked while
//! holding the guard, but every structure we guard is either repaired by
//! its supervisor (the server's pending window), holds only plain values
//! that cannot be torn (queue envelopes, join handles, counters), or is
//! re-validated by the reader (cache entries are immutable `Arc`s) — so
//! recovering the inner value is always sounder than cascading the panic
//! into every other thread that touches the lock.
//!
//! Centralising the idiom also makes it *checkable*: `dnnperf-lint`'s
//! `poison-policy` pass requires all lock acquisitions in the serving
//! stack to go through this module, so a stray `.lock().unwrap()` (which
//! would turn one dead worker into a poisoned-lock crash storm) cannot
//! land unreviewed.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Locks `m`, recovering the guard from a poisoned mutex.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard from a poisoned rwlock.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard from a poisoned rwlock.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, consuming and returning the paired mutex guard,
/// recovering it from poison exactly like [`lock_unpoisoned`].
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex, RwLock};

    #[test]
    fn helpers_pass_through_on_healthy_locks() {
        let m = Mutex::new(7);
        assert_eq!(*lock_unpoisoned(&m), 7);
        let l = RwLock::new(3);
        assert_eq!(*read_unpoisoned(&l), 3);
        *write_unpoisoned(&l) = 4;
        assert_eq!(*read_unpoisoned(&l), 4);
    }

    #[test]
    fn poisoned_mutex_is_recovered_with_its_value() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = lock_unpoisoned(&m2);
            *g = 42;
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 42, "inner value survives poison");
    }

    #[test]
    fn poisoned_rwlock_is_recovered() {
        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = write_unpoisoned(&l2);
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*read_unpoisoned(&l), 1);
        *write_unpoisoned(&l) = 2;
        assert_eq!(*read_unpoisoned(&l), 2);
    }

    #[test]
    fn wait_unpoisoned_returns_the_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock_unpoisoned(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock_unpoisoned(m);
        while !*done {
            done = wait_unpoisoned(cv, done);
        }
        drop(done);
        waker.join().unwrap();
    }
}
