//! A std-only bounded MPMC queue for long-running worker pools.
//!
//! [`crate::pool::run_indexed`] schedules *finite grids*: every job is
//! known up front and the pool drains to completion. A prediction server
//! has the opposite shape — an unbounded request stream arriving from many
//! producer threads, consumed by a fixed set of worker threads — and its
//! load-shedding contract ("reject loudly when full, never block the
//! producer, never drop an accepted item") is what [`Bounded`] provides:
//!
//! * `try_send` is the admission-control edge: it never blocks, and a full
//!   or closed queue hands the item straight back so the caller can reply
//!   `Overloaded` instead of hanging;
//! * `recv_batch` blocks until work is available and then drains up to a
//!   whole batch under one lock acquisition, which is the request-batching
//!   half of the serving story (one wakeup amortized over many requests);
//! * `close` wakes every consumer; accepted items are still drained before
//!   consumers observe the shutdown.

use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_send`] handed an item back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendRejected {
    /// The queue is at capacity: shed load.
    Full,
    /// The queue was closed: the consumer side is shutting down.
    Closed,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvar; the
/// items are request envelopes, so lock traffic is noise next to the work
/// they describe).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue would shed
    /// every request).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Bounded {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).queue.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back with [`SendRejected::Full`] when the queue is
    /// at capacity (the caller sheds load) or [`SendRejected::Closed`]
    /// after [`Bounded::close`].
    pub fn try_send(&self, item: T) -> Result<(), (T, SendRejected)> {
        let mut st = lock_unpoisoned(&self.state);
        if st.closed {
            return Err((item, SendRejected::Closed));
        }
        if st.queue.len() >= self.capacity {
            return Err((item, SendRejected::Full));
        }
        st.queue.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max` items in arrival order. Returns an empty vector only when the
    /// queue is closed *and* fully drained — the consumer's signal to
    /// exit. `max` is clamped to at least 1.
    pub fn recv_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if !st.queue.is_empty() {
                let take = st.queue.len().min(max);
                let batch: Vec<T> = st.queue.drain(..take).collect();
                drop(st);
                // More items may remain for other consumers.
                self.not_empty.notify_one();
                return batch;
            }
            if st.closed {
                return Vec::new();
            }
            st = wait_unpoisoned(&self.not_empty, st);
        }
    }

    /// Removes and returns every queued item matching `evict`, preserving
    /// the arrival order of both the kept and the returned items.
    ///
    /// This is the admission-queue half of deadline enforcement: a
    /// producer that finds the queue full can sweep already-expired
    /// requests out (answering their waiters with a deadline error)
    /// instead of shedding fresh work while dead work holds capacity.
    /// Consumers blocked in [`Bounded::recv_batch`] are unaffected — a
    /// sweep never wakes them spuriously and never reorders survivors.
    pub fn sweep(&self, mut evict: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut st = lock_unpoisoned(&self.state);
        let mut kept = VecDeque::with_capacity(st.queue.len());
        let mut removed = Vec::new();
        for item in st.queue.drain(..) {
            if evict(&item) {
                removed.push(item);
            } else {
                kept.push_back(item);
            }
        }
        st.queue = kept;
        removed
    }

    /// Closes the queue: future sends are rejected, every blocked consumer
    /// wakes, and already-accepted items remain drainable.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = Bounded::new(2);
        assert!(q.try_send(1).is_ok());
        assert!(q.try_send(2).is_ok());
        assert_eq!(q.try_send(3), Err((3, SendRejected::Full)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = Bounded::new(4);
        q.try_send("a").unwrap();
        q.try_send("b").unwrap();
        q.close();
        assert_eq!(q.try_send("c"), Err(("c", SendRejected::Closed)));
        assert_eq!(q.recv_batch(10), vec!["a", "b"]);
        assert!(q.recv_batch(10).is_empty());
    }

    #[test]
    fn batches_drain_in_arrival_order_up_to_max() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.try_send(i).unwrap();
        }
        assert_eq!(q.recv_batch(3), vec![0, 1, 2]);
        assert_eq!(q.recv_batch(3), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Bounded::<u32>::new(0);
    }

    #[test]
    fn sweep_removes_matches_and_preserves_order() {
        let q = Bounded::new(8);
        for i in 0..6 {
            q.try_send(i).unwrap();
        }
        let removed = q.sweep(|i| i % 2 == 0);
        assert_eq!(removed, vec![0, 2, 4], "evicted in arrival order");
        assert_eq!(q.len(), 3);
        assert_eq!(q.recv_batch(10), vec![1, 3, 5], "survivors keep order");
        // Sweeping an empty queue is a no-op.
        assert!(q.sweep(|_| true).is_empty());
        // A sweep frees capacity for new sends.
        let q = Bounded::new(2);
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert!(q.try_send(3).is_err());
        assert_eq!(q.sweep(|_| true).len(), 2);
        assert!(q.try_send(3).is_ok());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::new(16));
        let consumed = Arc::new(AtomicUsize::new(0));
        let produced = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                consumers.push(s.spawn(move || loop {
                    let batch = q.recv_batch(4);
                    if batch.is_empty() {
                        return;
                    }
                    consumed.fetch_add(batch.len(), Ordering::Relaxed);
                }));
            }
            let mut producers = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let produced = Arc::clone(&produced);
                producers.push(s.spawn(move || {
                    for i in 0..100u32 {
                        // Spin on Full: every item must eventually land.
                        loop {
                            match q.try_send(i) {
                                Ok(()) => break,
                                Err((_, SendRejected::Full)) => std::thread::yield_now(),
                                Err((_, SendRejected::Closed)) => {
                                    panic!("queue closed mid-production")
                                }
                            }
                        }
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert_eq!(produced.load(Ordering::Relaxed), 400);
        assert_eq!(consumed.load(Ordering::Relaxed), 400);
    }
}
