//! Fixture-based conformance tests for every lint pass, plus a
//! self-test that the live workspace is finding-free modulo the
//! checked-in baseline.
//!
//! Each pass gets one deliberately-bad fixture (with its exact span
//! asserted) and one clean twin. Fixtures live under `tests/fixtures/`
//! — a directory the live walk excludes (see `lint.toml`) and cargo
//! never compiles — and are lexed at *synthetic* workspace paths so the
//! path-scoped passes fire exactly as they would on real crates.

use std::path::Path;

use dnnperf_lint::baseline::{today_iso, Baseline};
use dnnperf_lint::passes;
use dnnperf_lint::policy::Policy;
use dnnperf_lint::workspace::{Context, Manifest, SourceFile};
use dnnperf_lint::{lint_workspace, Outcome};

/// The repo's actual policy: fixtures are checked against the same
/// rules the live run uses, so policy drift breaks these tests loudly.
fn real_policy() -> Policy {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint.toml");
    let src = std::fs::read_to_string(root).expect("workspace lint.toml");
    Policy::parse(&src).expect("workspace lint.toml parses")
}

fn ctx_with(files: Vec<(&str, &str)>) -> Context {
    let files = files
        .into_iter()
        .map(|(path, src)| SourceFile::from_source(path, src))
        .collect();
    Context::from_parts(real_policy(), files, vec![])
}

fn run_pass(name: &str, ctx: &Context) -> Vec<dnnperf_lint::diag::Finding> {
    let pass = passes::registry()
        .into_iter()
        .find(|p| p.name == name)
        .expect("pass registered");
    (pass.run)(ctx)
}

// ---------------------------------------------------------------- oracle

#[test]
fn oracle_bad_fixture_is_flagged_with_exact_span() {
    // The ISSUE's acceptance criterion: a deliberate
    // `use dnnperf_gpu::timing::*` planted in a crates/core fixture must
    // be flagged with a file:line span.
    let src = include_str!("fixtures/oracle_bad.rs");
    let ctx = ctx_with(vec![("crates/core/src/peek.rs", src)]);
    let f = run_pass("oracle-isolation", &ctx);
    assert!(
        f.iter().any(|x| x.file == "crates/core/src/peek.rs"
            && (x.line, x.col) == (4, 5)
            && x.snippet.contains("dnnperf_gpu::timing::*")),
        "expected the glob import flagged at crates/core/src/peek.rs:4:5, got {f:#?}"
    );
}

#[test]
fn oracle_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/oracle_clean.rs");
    let ctx = ctx_with(vec![("crates/core/src/ok.rs", src)]);
    let f = run_pass("oracle-isolation", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// ----------------------------------------------------------- determinism

#[test]
fn determinism_bad_fixture_flags_all_three_violations() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let ctx = ctx_with(vec![("crates/core/src/agg.rs", src)]);
    let f = run_pass("determinism", &ctx);
    // Instant::now read, with exact span (line 8, the `Instant` token).
    assert!(
        f.iter()
            .any(|x| x.message.contains("Instant::now") && x.line == 8),
        "missing Instant::now finding: {f:#?}"
    );
    assert!(f.iter().any(|x| x.message.contains("BTreeMap")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("total_cmp") && x.line == 9));
}

#[test]
fn determinism_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/determinism_clean.rs");
    let ctx = ctx_with(vec![("crates/core/src/agg.rs", src)]);
    let f = run_pass("determinism", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// ---------------------------------------------------------- panic-policy

#[test]
fn panic_bad_fixture_flags_macro_and_indexing() {
    let src = include_str!("fixtures/panic_bad.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let f: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(
        f.iter()
            .any(|x| x.message.contains("`panic!`") && (x.line, x.col) == (5, 9)),
        "missing panic! finding at 5:9: {f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.message.contains("indexing") && x.line == 7),
        "missing indexing finding: {f:#?}"
    );
}

#[test]
fn panic_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/panic_clean.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let f: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

#[test]
fn deny_attr_check_is_structural_not_textual() {
    // A lib.rs whose only mention of the attribute is inside a comment
    // must be flagged; the real attribute satisfies it.
    let commented =
        "// #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
    let ctx = ctx_with(vec![("crates/core/src/lib.rs", commented)]);
    let f = run_pass("panic-policy", &ctx);
    assert!(
        f.iter()
            .any(|x| x.file == "crates/core/src/lib.rs" && x.message.contains("deny")),
        "comment-only attribute passed the structural check: {f:#?}"
    );

    let real =
        "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
    let ctx = ctx_with(vec![("crates/core/src/lib.rs", real)]);
    let f = run_pass("panic-policy", &ctx);
    assert!(!f.iter().any(|x| x.file == "crates/core/src/lib.rs"));
}

// ----------------------------------------------------------- hermeticity

#[test]
fn hermeticity_flags_registry_dep_with_line() {
    let bad = Manifest {
        rel_path: "crates/core/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-core\"\n\n[dependencies]\nserde = \"1.0\"\n".to_string(),
    };
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let ctx = Context::from_parts(real_policy(), vec![], vec![gpu, bad]);
    let f = run_pass("hermeticity", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(
        (f[0].file.as_str(), f[0].line),
        ("crates/core/Cargo.toml", 5)
    );
    assert!(f[0].message.contains("serde"));
}

#[test]
fn hermeticity_accepts_workspace_path_deps_and_std_imports() {
    let ok = Manifest {
        rel_path: "crates/core/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-core\"\n[dependencies]\n\
              dnnperf-gpu = { workspace = true }\n"
            .to_string(),
    };
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let file = SourceFile::from_source(
        "crates/core/src/x.rs",
        "mod helper;\nuse std::fmt;\nuse dnnperf_gpu::GpuSpec;\nuse helper::thing;\n",
    );
    let ctx = Context::from_parts(real_policy(), vec![file], vec![gpu, ok]);
    let f = run_pass("hermeticity", &ctx);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn hermeticity_flags_foreign_use_root() {
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let file = SourceFile::from_source("crates/core/src/x.rs", "use rayon::prelude::*;\n");
    let ctx = Context::from_parts(real_policy(), vec![file], vec![gpu]);
    let f = run_pass("hermeticity", &ctx);
    assert_eq!(f.len(), 1);
    assert_eq!((f[0].line, f[0].col), (1, 5));
    assert!(f[0].message.contains("rayon"));
}

// ---------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_bad_fixture_is_flagged_with_span() {
    let src = include_str!("fixtures/unsafe_bad.rs");
    let ctx = ctx_with(vec![("crates/simkit/src/raw.rs", src)]);
    let f = run_pass("unsafe-audit", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].line, f[0].col), (4, 5));
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/unsafe_clean.rs");
    let ctx = ctx_with(vec![("crates/simkit/src/raw.rs", src)]);
    assert!(run_pass("unsafe-audit", &ctx).is_empty());
}

// ------------------------------------------------------------ lock-order

#[test]
fn lock_order_bad_fixture_reports_cycle_with_both_witness_paths() {
    // The ISSUE's acceptance criterion: a seeded ABBA inversion must be
    // detected and the diagnostic must name BOTH acquisition paths.
    let src = include_str!("fixtures/lock_order_bad.rs");
    let ctx = ctx_with(vec![("crates/serve/src/server.rs", src)]);
    let f = run_pass("lock-order", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].line, f[0].col), (7, 19), "{f:#?}");
    let msg = &f[0].message;
    assert!(
        msg.contains("server-pending -> worker-registry -> server-pending"),
        "cycle ring missing: {msg}"
    );
    assert!(
        msg.contains("server-pending held at crates/serve/src/server.rs:6"),
        "first witness path missing: {msg}"
    );
    assert!(
        msg.contains("worker-registry held at crates/serve/src/server.rs:12"),
        "second witness path missing: {msg}"
    );
}

#[test]
fn lock_order_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/lock_order_clean.rs");
    let ctx = ctx_with(vec![("crates/serve/src/server.rs", src)]);
    let f = run_pass("lock-order", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// --------------------------------------------------- blocking-under-lock

#[test]
fn blocking_bad_fixture_flags_join_under_registry_guard() {
    let src = include_str!("fixtures/blocking_bad.rs");
    let ctx = ctx_with(vec![("crates/serve/src/tcp.rs", src)]);
    let f = run_pass("blocking-under-lock", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].line, f[0].col), (8, 19), "{f:#?}");
    assert!(
        f[0].message.contains("`accept-registry`"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("join"), "{}", f[0].message);
}

#[test]
fn blocking_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/blocking_clean.rs");
    let ctx = ctx_with(vec![("crates/serve/src/tcp.rs", src)]);
    let f = run_pass("blocking-under-lock", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// --------------------------------------------------- condvar-discipline

#[test]
fn condvar_bad_fixture_flags_bare_wait_and_silent_mutation() {
    let src = include_str!("fixtures/condvar_bad.rs");
    let ctx = ctx_with(vec![("crates/serve/src/cache.rs", src)]);
    let f = run_pass("condvar-discipline", &ctx);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(
        f.iter()
            .any(|x| (x.line, x.col) == (8, 10) && x.message.contains("outside a predicate loop")),
        "missing bare-wait finding at 8:10: {f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| (x.line, x.col) == (14, 14) && x.message.contains("without a later notify")),
        "missing silent-mutation finding at 14:14: {f:#?}"
    );
}

#[test]
fn condvar_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/condvar_clean.rs");
    let ctx = ctx_with(vec![("crates/serve/src/cache.rs", src)]);
    let f = run_pass("condvar-discipline", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// -------------------------------------------------------- poison-policy

#[test]
fn poison_bad_fixture_ranks_all_three_mishandlings() {
    let src = include_str!("fixtures/poison_bad.rs");
    let ctx = ctx_with(vec![("crates/core/src/plan.rs", src)]);
    let f = run_pass("poison-policy", &ctx);
    assert_eq!(f.len(), 3, "{f:#?}");
    assert_eq!((f[0].line, f[0].col), (6, 17), "{f:#?}");
    assert!(f[0].message.contains("panic"), "{}", f[0].message);
    assert!(f[0].message.contains("lock_unpoisoned"), "{}", f[0].message);
    assert_eq!(f[1].line, 10);
    assert!(f[1].message.contains("hand-rolled"), "{}", f[1].message);
    assert_eq!(f[2].line, 15);
    assert!(f[2].message.contains("ad hoc"), "{}", f[2].message);
}

#[test]
fn poison_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/poison_clean.rs");
    let ctx = ctx_with(vec![("crates/core/src/plan.rs", src)]);
    let f = run_pass("poison-policy", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

/// The four concurrency passes must hold on the live serving stack with
/// NO baseline help at all — the ISSUE's zero-un-annotated-entries
/// criterion, stricter than the baseline-modulo self-test below.
#[test]
fn live_workspace_concurrency_passes_are_clean_without_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ctx = Context::load(&root, real_policy()).expect("workspace walk");
    for pass in [
        "lock-order",
        "blocking-under-lock",
        "condvar-discipline",
        "poison-policy",
    ] {
        let f = run_pass(pass, &ctx);
        assert!(
            f.is_empty(),
            "[{pass}] live findings (these may not be baselined):\n{}",
            f.iter().map(|x| x.render_human()).collect::<String>()
        );
    }
}

// ------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_then_expires() {
    let src = include_str!("fixtures/panic_bad.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let findings: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(!findings.is_empty());
    let mut bl_src = String::from("# test baseline\n");
    for f in &findings {
        bl_src.push_str(&format!(
            "{} {} {} -- fixture entry [expires=2099-01-01]\n",
            f.pass,
            f.file,
            f.snippet_key()
        ));
    }
    let bl = Baseline::parse(&bl_src).unwrap();
    let live = bl.apply(findings.clone(), "2026-08-06");
    assert!(live.unsuppressed.is_empty());
    assert_eq!(live.suppressed_count, findings.len());
    let expired = bl.apply(findings, "2099-06-01");
    assert!(expired.unsuppressed.is_empty());
    assert!(!expired.expired.is_empty());
}

// --------------------------------------------------- workspace self-test

/// The live workspace, under the live policy and baseline, must be
/// finding-free. This is the test-suite twin of the ci.sh gate: if a
/// change introduces a new unbaselined finding, `cargo test` fails even
/// before CI runs the binary.
#[test]
fn live_workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome: Outcome = lint_workspace(
        &root,
        &root.join("lint.toml"),
        Some(&root.join("lint-baseline.txt")),
        &today_iso(),
    )
    .expect("lint run succeeds");
    assert!(
        outcome.applied.unsuppressed.is_empty(),
        "new findings:\n{}",
        outcome
            .applied
            .unsuppressed
            .iter()
            .map(|f| f.render_human())
            .collect::<String>()
    );
    assert!(
        outcome.applied.expired.is_empty(),
        "expired baseline entries:\n{}",
        outcome.applied.expired.join("\n")
    );
    // Sanity: the walk actually saw the workspace.
    assert!(outcome.files_scanned > 50);
    assert!(outcome.manifests_scanned >= 10);
    // Baseline hygiene: every entry names a file the walk actually saw.
    assert!(
        outcome.applied.dangling.is_empty(),
        "dangling baseline entries:\n{}",
        outcome.applied.dangling.join("\n")
    );
}

#[test]
fn baseline_entry_for_missing_file_fails_the_run() {
    let ctx = ctx_with(vec![("crates/core/src/plan.rs", "pub fn f() {}\n")]);
    let bl =
        Baseline::parse("panic-policy crates/core/src/deleted.rs unwrap() -- file long gone\n")
            .expect("baseline parses");
    let outcome = dnnperf_lint::lint_context(&ctx, &bl, &today_iso());
    assert!(!outcome.is_clean(), "dangling entry must fail the run");
    assert_eq!(
        outcome.applied.dangling.len(),
        1,
        "{:?}",
        outcome.applied.dangling
    );
    assert!(
        outcome.applied.dangling[0].contains("crates/core/src/deleted.rs"),
        "{}",
        outcome.applied.dangling[0]
    );
}
