//! Fixture-based conformance tests for every lint pass, plus a
//! self-test that the live workspace is finding-free modulo the
//! checked-in baseline.
//!
//! Each pass gets one deliberately-bad fixture (with its exact span
//! asserted) and one clean twin. Fixtures live under `tests/fixtures/`
//! — a directory the live walk excludes (see `lint.toml`) and cargo
//! never compiles — and are lexed at *synthetic* workspace paths so the
//! path-scoped passes fire exactly as they would on real crates.

use std::path::Path;

use dnnperf_lint::baseline::{today_iso, Baseline};
use dnnperf_lint::passes;
use dnnperf_lint::policy::Policy;
use dnnperf_lint::workspace::{Context, Manifest, SourceFile};
use dnnperf_lint::{lint_workspace, Outcome};

/// The repo's actual policy: fixtures are checked against the same
/// rules the live run uses, so policy drift breaks these tests loudly.
fn real_policy() -> Policy {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../lint.toml");
    let src = std::fs::read_to_string(root).expect("workspace lint.toml");
    Policy::parse(&src).expect("workspace lint.toml parses")
}

fn ctx_with(files: Vec<(&str, &str)>) -> Context {
    let files = files
        .into_iter()
        .map(|(path, src)| SourceFile::from_source(path, src))
        .collect();
    Context::from_parts(real_policy(), files, vec![])
}

fn run_pass(name: &str, ctx: &Context) -> Vec<dnnperf_lint::diag::Finding> {
    let pass = passes::registry()
        .into_iter()
        .find(|p| p.name == name)
        .expect("pass registered");
    (pass.run)(ctx)
}

// ---------------------------------------------------------------- oracle

#[test]
fn oracle_bad_fixture_is_flagged_with_exact_span() {
    // The ISSUE's acceptance criterion: a deliberate
    // `use dnnperf_gpu::timing::*` planted in a crates/core fixture must
    // be flagged with a file:line span.
    let src = include_str!("fixtures/oracle_bad.rs");
    let ctx = ctx_with(vec![("crates/core/src/peek.rs", src)]);
    let f = run_pass("oracle-isolation", &ctx);
    assert!(
        f.iter().any(|x| x.file == "crates/core/src/peek.rs"
            && (x.line, x.col) == (4, 5)
            && x.snippet.contains("dnnperf_gpu::timing::*")),
        "expected the glob import flagged at crates/core/src/peek.rs:4:5, got {f:#?}"
    );
}

#[test]
fn oracle_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/oracle_clean.rs");
    let ctx = ctx_with(vec![("crates/core/src/ok.rs", src)]);
    let f = run_pass("oracle-isolation", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// ----------------------------------------------------------- determinism

#[test]
fn determinism_bad_fixture_flags_all_three_violations() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let ctx = ctx_with(vec![("crates/core/src/agg.rs", src)]);
    let f = run_pass("determinism", &ctx);
    // Instant::now read, with exact span (line 8, the `Instant` token).
    assert!(
        f.iter()
            .any(|x| x.message.contains("Instant::now") && x.line == 8),
        "missing Instant::now finding: {f:#?}"
    );
    assert!(f.iter().any(|x| x.message.contains("BTreeMap")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("total_cmp") && x.line == 9));
}

#[test]
fn determinism_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/determinism_clean.rs");
    let ctx = ctx_with(vec![("crates/core/src/agg.rs", src)]);
    let f = run_pass("determinism", &ctx);
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

// ---------------------------------------------------------- panic-policy

#[test]
fn panic_bad_fixture_flags_macro_and_indexing() {
    let src = include_str!("fixtures/panic_bad.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let f: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(
        f.iter()
            .any(|x| x.message.contains("`panic!`") && (x.line, x.col) == (5, 9)),
        "missing panic! finding at 5:9: {f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.message.contains("indexing") && x.line == 7),
        "missing indexing finding: {f:#?}"
    );
}

#[test]
fn panic_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/panic_clean.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let f: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(f.is_empty(), "clean twin flagged: {f:#?}");
}

#[test]
fn deny_attr_check_is_structural_not_textual() {
    // A lib.rs whose only mention of the attribute is inside a comment
    // must be flagged; the real attribute satisfies it.
    let commented =
        "// #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
    let ctx = ctx_with(vec![("crates/core/src/lib.rs", commented)]);
    let f = run_pass("panic-policy", &ctx);
    assert!(
        f.iter()
            .any(|x| x.file == "crates/core/src/lib.rs" && x.message.contains("deny")),
        "comment-only attribute passed the structural check: {f:#?}"
    );

    let real =
        "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
    let ctx = ctx_with(vec![("crates/core/src/lib.rs", real)]);
    let f = run_pass("panic-policy", &ctx);
    assert!(!f.iter().any(|x| x.file == "crates/core/src/lib.rs"));
}

// ----------------------------------------------------------- hermeticity

#[test]
fn hermeticity_flags_registry_dep_with_line() {
    let bad = Manifest {
        rel_path: "crates/core/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-core\"\n\n[dependencies]\nserde = \"1.0\"\n".to_string(),
    };
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let ctx = Context::from_parts(real_policy(), vec![], vec![gpu, bad]);
    let f = run_pass("hermeticity", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(
        (f[0].file.as_str(), f[0].line),
        ("crates/core/Cargo.toml", 5)
    );
    assert!(f[0].message.contains("serde"));
}

#[test]
fn hermeticity_accepts_workspace_path_deps_and_std_imports() {
    let ok = Manifest {
        rel_path: "crates/core/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-core\"\n[dependencies]\n\
              dnnperf-gpu = { workspace = true }\n"
            .to_string(),
    };
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let file = SourceFile::from_source(
        "crates/core/src/x.rs",
        "mod helper;\nuse std::fmt;\nuse dnnperf_gpu::GpuSpec;\nuse helper::thing;\n",
    );
    let ctx = Context::from_parts(real_policy(), vec![file], vec![gpu, ok]);
    let f = run_pass("hermeticity", &ctx);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn hermeticity_flags_foreign_use_root() {
    let gpu = Manifest {
        rel_path: "crates/gpu/Cargo.toml".to_string(),
        src: "[package]\nname = \"dnnperf-gpu\"\n".to_string(),
    };
    let file = SourceFile::from_source("crates/core/src/x.rs", "use rayon::prelude::*;\n");
    let ctx = Context::from_parts(real_policy(), vec![file], vec![gpu]);
    let f = run_pass("hermeticity", &ctx);
    assert_eq!(f.len(), 1);
    assert_eq!((f[0].line, f[0].col), (1, 5));
    assert!(f[0].message.contains("rayon"));
}

// ---------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_bad_fixture_is_flagged_with_span() {
    let src = include_str!("fixtures/unsafe_bad.rs");
    let ctx = ctx_with(vec![("crates/simkit/src/raw.rs", src)]);
    let f = run_pass("unsafe-audit", &ctx);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].line, f[0].col), (4, 5));
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/unsafe_clean.rs");
    let ctx = ctx_with(vec![("crates/simkit/src/raw.rs", src)]);
    assert!(run_pass("unsafe-audit", &ctx).is_empty());
}

// ------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_then_expires() {
    let src = include_str!("fixtures/panic_bad.rs");
    let ctx = ctx_with(vec![("crates/scheduler/src/pool.rs", src)]);
    let findings: Vec<_> = run_pass("panic-policy", &ctx)
        .into_iter()
        .filter(|x| x.file == "crates/scheduler/src/pool.rs")
        .collect();
    assert!(!findings.is_empty());
    let mut bl_src = String::from("# test baseline\n");
    for f in &findings {
        bl_src.push_str(&format!(
            "{} {} {} -- fixture entry [expires=2099-01-01]\n",
            f.pass,
            f.file,
            f.snippet_key()
        ));
    }
    let bl = Baseline::parse(&bl_src).unwrap();
    let live = bl.apply(findings.clone(), "2026-08-06");
    assert!(live.unsuppressed.is_empty());
    assert_eq!(live.suppressed_count, findings.len());
    let expired = bl.apply(findings, "2099-06-01");
    assert!(expired.unsuppressed.is_empty());
    assert!(!expired.expired.is_empty());
}

// --------------------------------------------------- workspace self-test

/// The live workspace, under the live policy and baseline, must be
/// finding-free. This is the test-suite twin of the ci.sh gate: if a
/// change introduces a new unbaselined finding, `cargo test` fails even
/// before CI runs the binary.
#[test]
fn live_workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome: Outcome = lint_workspace(
        &root,
        &root.join("lint.toml"),
        Some(&root.join("lint-baseline.txt")),
        &today_iso(),
    )
    .expect("lint run succeeds");
    assert!(
        outcome.applied.unsuppressed.is_empty(),
        "new findings:\n{}",
        outcome
            .applied
            .unsuppressed
            .iter()
            .map(|f| f.render_human())
            .collect::<String>()
    );
    assert!(
        outcome.applied.expired.is_empty(),
        "expired baseline entries:\n{}",
        outcome.applied.expired.join("\n")
    );
    // Sanity: the walk actually saw the workspace.
    assert!(outcome.files_scanned > 50);
    assert!(outcome.manifests_scanned >= 10);
}
