//! Deliberately-bad fixture, both halves of the condvar discipline:
//! `take` waits outside a predicate loop (a spurious wakeup returns
//! with nothing compiled), and `put` mutates shard state without
//! notifying the paired condvar (waiters sleep through the insert).

pub fn take(shard: &Shard, key: u64) -> Plan {
    let mut st = lock_unpoisoned(&shard.state);
    st = wait_unpoisoned(&shard.compiled, st);
    st.plans.remove(&key).unwrap_or_default()
}

pub fn put(shard: &Shard, key: u64, plan: Plan) {
    let mut st = lock_unpoisoned(&shard.state);
    st.plans.insert(key, plan);
}
