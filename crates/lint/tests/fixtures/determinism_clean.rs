//! Clean twin: ordered map, injected clock, total order — plus a test
//! region that may legitimately time itself.

use std::collections::BTreeMap;

fn summarize(xs: &mut Vec<f64>, now_us: u64) -> BTreeMap<String, f64> {
    xs.sort_by(f64::total_cmp);
    let mut out = BTreeMap::new();
    out.insert("at".to_string(), now_us as f64);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
