//! Clean twin: the wait sits in a predicate loop, and the producer
//! notifies the paired condvar after mutating (post-drop, so no waiter
//! wakes into a still-held mutex).

pub fn take(shard: &Shard, key: u64) -> Plan {
    let mut st = lock_unpoisoned(&shard.state);
    while !st.plans.contains_key(&key) {
        st = wait_unpoisoned(&shard.compiled, st);
    }
    st.plans.remove(&key).unwrap_or_default()
}

pub fn put(shard: &Shard, key: u64, plan: Plan) {
    let mut st = lock_unpoisoned(&shard.state);
    st.plans.insert(key, plan);
    drop(st);
    shard.compiled.notify_all();
}
