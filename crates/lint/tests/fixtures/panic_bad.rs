//! Deliberately-bad fixture: a hot-path worker that crashes on faults.

fn pop_job(queue: &[u32], w: usize) -> u32 {
    if queue.is_empty() {
        panic!("queue empty");
    }
    queue[w]
}
