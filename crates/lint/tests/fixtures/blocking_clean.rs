//! Clean twin: the handle is taken in its own scope so the registry
//! guard dies before the join.

pub fn shutdown(srv: &TcpServer) {
    let handle = {
        let mut guard = lock_unpoisoned(&srv.accept_thread);
        guard.take()
    };
    if let Some(h) = handle {
        let _ = h.join();
    }
}
