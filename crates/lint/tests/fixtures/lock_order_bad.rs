//! Deliberately-bad fixture: the two server lock classes are acquired
//! in opposite orders by two functions — a textbook ABBA deadlock. The
//! lint must report the cycle with BOTH witness acquisition paths.

pub fn admit(inner: &Inner) {
    let mut pending = lock_unpoisoned(&inner.pending);
    let workers = lock_unpoisoned(&inner.workers);
    pending.insert(workers.len());
}

pub fn drain_registry(inner: &Inner) {
    let mut workers = lock_unpoisoned(&inner.workers);
    let pending = lock_unpoisoned(&inner.pending);
    workers.truncate(pending.len());
}
