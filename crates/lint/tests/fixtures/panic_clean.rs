//! Clean twin: faults are values, bounds are checked.

fn pop_job(queue: &[u32], w: usize) -> Option<u32> {
    queue.get(w).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_index_and_panic() {
        let v = [1u32, 2];
        assert_eq!(v[1], 2);
        if false {
            panic!("only in tests");
        }
    }
}
