//! Clean twin: the invariant is written down next to the operation.

fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points into a live, initialized
    // buffer for the duration of the call.
    unsafe { *p }
}
