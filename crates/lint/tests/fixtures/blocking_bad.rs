//! Deliberately-bad fixture: joins the accept thread while still
//! holding the registry lock — every concurrent shutdown caller now
//! blocks on a thread that may take arbitrarily long to exit.

pub fn shutdown(srv: &TcpServer) {
    let mut guard = lock_unpoisoned(&srv.accept_thread);
    if let Some(h) = guard.take() {
        let _ = h.join();
    }
}
