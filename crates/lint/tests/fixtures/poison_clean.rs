//! Clean twin: every acquisition goes through the shared helpers; the
//! `unwrap()` in the test module is exempt (tests may crash loudly).

pub fn cached(cache: &PlanCache) -> usize {
    lock_unpoisoned(&cache.inner).len()
}

pub fn snapshot(cache: &PlanCache) -> Vec<Plan> {
    let guard = lock_unpoisoned(&cache.inner);
    guard.values().cloned().collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let cache = PlanCache::new();
        assert!(cache.inner.lock().unwrap().is_empty());
    }
}
