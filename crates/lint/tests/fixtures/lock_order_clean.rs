//! Clean twin: both functions acquire the same two lock classes in the
//! same global order (pending before workers), so the acquisition graph
//! is acyclic.

pub fn admit(inner: &Inner) {
    let mut pending = lock_unpoisoned(&inner.pending);
    let workers = lock_unpoisoned(&inner.workers);
    pending.insert(workers.len());
}

pub fn drain_registry(inner: &Inner) {
    let pending = lock_unpoisoned(&inner.pending);
    let mut workers = lock_unpoisoned(&inner.workers);
    workers.truncate(pending.len());
}
