//! Deliberately-bad fixture: a predictor crate peeking at the oracle.
//! Never compiled — lexed by the fixture tests at a synthetic path.

use dnnperf_gpu::timing::*;

fn peek() -> f64 {
    let model = TimingModel::new();
    model.kernel_time_somehow()
}
