//! Clean twin: the same job done through the allowed surface.
//! A predictor may see specs, dispatch rules and measured traces —
//! "dnnperf_gpu::timing" in this comment (or a string) must not trip
//! the pass.

use dnnperf_gpu::{GpuSpec, Trace};
use dnnperf_gpu::dispatch::Fusion;

const NOTE: &str = "dnnperf_gpu::timing is sealed";

fn predict(trace: &Trace, gpu: &GpuSpec, fusion: Fusion) -> f64 {
    let _ = (gpu, fusion);
    trace.total_us()
}
