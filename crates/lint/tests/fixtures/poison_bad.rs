//! Deliberately-bad fixture: three ways to mishandle a LockResult —
//! panic on poison, hand-roll the recovery idiom, or leave it to ad-hoc
//! handling — all outside the one helper file allowed to spell it.

pub fn cached(cache: &PlanCache) -> usize {
    cache.inner.lock().unwrap().len()
}

pub fn snapshot(cache: &PlanCache) -> Vec<Plan> {
    let guard = cache.inner.lock().unwrap_or_else(PoisonError::into_inner);
    guard.values().cloned().collect()
}

pub fn maybe_len(cache: &PlanCache) -> Option<usize> {
    let guard = cache.inner.lock().ok()?;
    Some(guard.len())
}
