//! Deliberately-bad fixture: three determinism violations in
//! output-producing, non-clock code.

use std::collections::HashMap;
use std::time::Instant;

fn summarize(xs: &mut Vec<f64>) -> HashMap<String, f64> {
    let t0 = Instant::now();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = HashMap::new();
    out.insert("elapsed".to_string(), t0.elapsed().as_secs_f64());
    out
}
