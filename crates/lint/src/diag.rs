//! Diagnostics: the [`Finding`] type and its human / JSON renderings.

use std::fmt::Write as _;

/// One lint finding with an exact source span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
    /// The pass that produced this finding (e.g. `oracle-isolation`).
    pub pass: &'static str,
    /// The offending snippet, used both for display and for baseline
    /// matching (compared with all whitespace stripped).
    pub snippet: String,
    /// Human explanation of why this is a finding.
    pub message: String,
}

impl Finding {
    /// The snippet with all whitespace removed — the canonical form used
    /// to match suppression-baseline entries, so a baseline survives
    /// `rustfmt` reflowing the offending line.
    pub fn snippet_key(&self) -> String {
        self.snippet
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect()
    }

    /// `file:line:col: [pass] message` single-line rendering.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    {}\n",
            self.file, self.line, self.col, self.pass, self.message, self.snippet
        )
    }
}

/// Renders findings as a JSON array (machine-readable `--format json`).
///
/// Hand-rolled writer (the workspace is dependency-free by policy); all
/// strings pass through [`json_escape`].
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            s,
            "  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"pass\":\"{}\",\"snippet\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(f.pass),
            json_escape(&f.snippet),
            json_escape(&f.message),
        );
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Finding {
        Finding {
            file: "crates/core/src/peek.rs".into(),
            line: 3,
            col: 5,
            pass: "oracle-isolation",
            snippet: "use dnnperf_gpu::timing::*".into(),
            message: "predictor crate imports simulator-private module `timing`".into(),
        }
    }

    #[test]
    fn human_rendering_has_clickable_span() {
        let r = f().render_human();
        assert!(r.starts_with("crates/core/src/peek.rs:3:5: [oracle-isolation]"));
        assert!(r.contains("use dnnperf_gpu::timing::*"));
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let mut x = f();
        x.message = "quote \" backslash \\ newline \n".into();
        let j = render_json(&[x]);
        assert!(j.contains("\\\""));
        assert!(j.contains("\\\\"));
        assert!(j.contains("\\n"));
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn snippet_key_is_whitespace_free() {
        assert_eq!(f().snippet_key(), "usednnperf_gpu::timing::*".to_string());
    }
}
