//! `dnnperf-lint`: in-tree static analysis for the dnnperf workspace.
//!
//! A std-only tool (its own hermeticity pass scans its manifest) with a
//! lightweight Rust lexer, a brace-matched block/function extractor, and
//! nine passes:
//!
//! | pass | proves |
//! |------|--------|
//! | `oracle-isolation` | predictor crates never touch the hidden timing model |
//! | `determinism` | no wall-clock reads / unordered maps in result-producing code |
//! | `panic-policy` | resilience-critical crates deny unwrap/expect; hot paths don't panic |
//! | `hermeticity` | every dependency is a workspace crate (offline build) |
//! | `unsafe-audit` | every `unsafe` has an adjacent `// SAFETY:` note |
//! | `lock-order` | declared lock classes form an acyclic global acquisition order |
//! | `blocking-under-lock` | no blocking primitive runs while a lock guard is held |
//! | `condvar-discipline` | waits sit in predicate loops; mutations under a paired mutex notify |
//! | `poison-policy` | every lock acquisition goes through the shared `*_unpoisoned` helpers |
//!
//! The last four are intra-procedural: they track guard lifetimes inside
//! function bodies and propagate may-acquire / may-block facts over a
//! conservative workspace call graph (see `passes::concurrency`).
//!
//! Policy lives in `lint.toml` at the workspace root; grandfathered
//! findings live in `lint-baseline.txt` with mandatory notes and optional
//! expiry dates. See `DESIGN.md` §"Oracle isolation as a checked
//! invariant" and §"Concurrency invariants as checked properties" for the
//! threat models.

#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod policy;
pub mod workspace;

use std::fs;
use std::path::Path;

use baseline::{Applied, Baseline};
use policy::Policy;
use workspace::Context;

/// Outcome of one lint run.
pub struct Outcome {
    /// Findings after baseline application (unsuppressed → CI failure).
    pub applied: Applied,
    /// Total raw findings before suppression.
    pub total_findings: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of manifests scanned.
    pub manifests_scanned: usize,
}

impl Outcome {
    /// Whether the run is clean (nothing unsuppressed, nothing expired,
    /// no baseline entry pointing at a file that no longer exists).
    pub fn is_clean(&self) -> bool {
        self.applied.unsuppressed.is_empty()
            && self.applied.expired.is_empty()
            && self.applied.dangling.is_empty()
    }
}

/// Runs all passes over the workspace at `root` with the given policy
/// and (optional) baseline files, using `today` for expiry checks.
pub fn lint_workspace(
    root: &Path,
    policy_path: &Path,
    baseline_path: Option<&Path>,
    today: &str,
) -> Result<Outcome, String> {
    let policy_src = fs::read_to_string(policy_path)
        .map_err(|e| format!("cannot read policy {}: {e}", policy_path.display()))?;
    let policy = Policy::parse(&policy_src)?;
    let bl = match baseline_path {
        Some(p) if p.exists() => {
            let src = fs::read_to_string(p)
                .map_err(|e| format!("cannot read baseline {}: {e}", p.display()))?;
            Baseline::parse(&src)?
        }
        _ => Baseline::default(),
    };
    let ctx = Context::load(root, policy).map_err(|e| format!("workspace walk failed: {e}"))?;
    Ok(lint_context(&ctx, &bl, today))
}

/// Runs all passes over an already-loaded context (test entry point).
pub fn lint_context(ctx: &Context, bl: &Baseline, today: &str) -> Outcome {
    let findings = passes::run_all(ctx);
    let total = findings.len();
    let mut applied = bl.apply(findings, today);
    applied.dangling = bl.dangling_entries(|rel| ctx.files.iter().any(|f| f.rel_path == rel));
    Outcome {
        applied,
        total_findings: total,
        files_scanned: ctx.files.len(),
        manifests_scanned: ctx.manifests.len(),
    }
}
