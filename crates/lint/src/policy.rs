//! Lint policy: what each pass enforces, declared in a checked-in
//! `lint.toml` at the workspace root.
//!
//! The parser handles the TOML subset the policy file actually uses —
//! `[section]` headers, `key = "string"` and `key = ["a", "b"]` entries,
//! `#` comments — and rejects anything else loudly. Keeping the policy in
//! data (not code) means tightening the allowed surface is a one-line
//! diffable change reviewed like any other.

use std::collections::BTreeMap;

/// Parsed lint policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    /// Crate whose internals are the hidden oracle (ident form, e.g.
    /// `dnnperf_gpu`).
    pub oracle_crate: String,
    /// Module names under the oracle crate that predictor code must never
    /// path-reference (`timing`, `fault`).
    pub oracle_private_modules: Vec<String>,
    /// Identifiers that only exist inside the oracle's private modules;
    /// any appearance outside exempt paths is a leak.
    pub oracle_private_idents: Vec<String>,
    /// Path prefixes exempt from the oracle pass (the oracle crate
    /// itself, and this lint crate's own sources/fixtures).
    pub oracle_exempt_paths: Vec<String>,
    /// Path prefixes allowed to call `Instant::now` / `SystemTime`
    /// (the clock abstraction itself, bench harnesses).
    pub determinism_clock_paths: Vec<String>,
    /// Path prefixes whose modules produce outputs and must therefore
    /// avoid iteration-order-dependent `HashMap`/`HashSet`.
    pub determinism_output_paths: Vec<String>,
    /// Crate directory prefixes that must carry
    /// `deny(clippy::unwrap_used, clippy::expect_used)` in their lib.rs.
    pub panic_deny_crates: Vec<String>,
    /// Hot-path files where bare `panic!`/`unreachable!` and slice
    /// indexing are flagged even outside the deny set.
    pub panic_hot_paths: Vec<String>,
    /// Extern crate names allowed by the hermeticity pass in addition to
    /// the workspace's own crates (std and friends).
    pub hermeticity_allowed_externs: Vec<String>,
    /// Path prefixes the workspace walker skips entirely.
    pub workspace_exclude: Vec<String>,
}

impl Policy {
    /// Parses a `lint.toml` source string.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let raw = parse_toml_subset(src)?;
        let get_list = |sec: &str, key: &str| -> Vec<String> {
            raw.get(&(sec.to_string(), key.to_string()))
                .cloned()
                .unwrap_or_default()
        };
        let get_str = |sec: &str, key: &str| -> String {
            raw.get(&(sec.to_string(), key.to_string()))
                .and_then(|v| v.first().cloned())
                .unwrap_or_default()
        };
        let p = Policy {
            oracle_crate: get_str("oracle", "oracle_crate"),
            oracle_private_modules: get_list("oracle", "private_modules"),
            oracle_private_idents: get_list("oracle", "private_idents"),
            oracle_exempt_paths: get_list("oracle", "exempt_paths"),
            determinism_clock_paths: get_list("determinism", "clock_paths"),
            determinism_output_paths: get_list("determinism", "output_paths"),
            panic_deny_crates: get_list("panic", "deny_crates"),
            panic_hot_paths: get_list("panic", "hot_paths"),
            hermeticity_allowed_externs: get_list("hermeticity", "allowed_externs"),
            workspace_exclude: get_list("workspace", "exclude"),
        };
        if p.oracle_crate.is_empty() {
            return Err("lint.toml: [oracle] oracle_crate is required".to_string());
        }
        if p.oracle_private_modules.is_empty() {
            return Err("lint.toml: [oracle] private_modules must be non-empty".to_string());
        }
        Ok(p)
    }
}

/// Parses the TOML subset into `(section, key) -> values` (a scalar
/// string becomes a single-element list).
fn parse_toml_subset(src: &str) -> Result<BTreeMap<(String, String), Vec<String>>, String> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    for (n, raw_line) in src.lines().enumerate() {
        let lineno = n + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = inner.trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = value`"));
        };
        let key = line[..eq].trim().to_string();
        let val = line[eq + 1..].trim();
        let values = if let Some(body) = val.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            parse_string_list(body, lineno)?
        } else {
            vec![parse_string(val, lineno)?]
        };
        out.insert((section.clone(), key), values);
    }
    Ok(out)
}

/// Strips a `#` comment, respecting `"..."` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str, lineno: usize) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(|t| t.to_string())
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a double-quoted string, got `{s}`"))
}

fn parse_string_list(body: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[oracle]
oracle_crate = "dnnperf_gpu"
private_modules = ["timing", "fault"]
private_idents = ["kernel_time"]  # inline comment
exempt_paths = ["crates/gpu/"]

[determinism]
clock_paths = ["crates/scheduler/src/retry.rs"]
output_paths = ["crates/core/src/",]
"#;

    #[test]
    fn parses_sections_strings_and_lists() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.oracle_crate, "dnnperf_gpu");
        assert_eq!(p.oracle_private_modules, vec!["timing", "fault"]);
        assert_eq!(p.oracle_private_idents, vec!["kernel_time"]);
        assert_eq!(
            p.determinism_clock_paths,
            vec!["crates/scheduler/src/retry.rs"]
        );
        assert_eq!(p.determinism_output_paths, vec!["crates/core/src/"]);
        assert!(p.panic_deny_crates.is_empty());
    }

    #[test]
    fn missing_oracle_crate_is_an_error() {
        let err = Policy::parse("[oracle]\nprivate_modules = [\"timing\"]\n").unwrap_err();
        assert!(err.contains("oracle_crate"));
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = Policy::parse("[oracle]\noracle_crate\n").unwrap_err();
        assert!(err.contains(":2:"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let raw = parse_toml_subset("[s]\nk = \"a#b\"\n").unwrap();
        assert_eq!(raw[&("s".to_string(), "k".to_string())], vec!["a#b"]);
    }
}
