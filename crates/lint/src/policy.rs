//! Lint policy: what each pass enforces, declared in a checked-in
//! `lint.toml` at the workspace root.
//!
//! The parser handles the TOML subset the policy file actually uses —
//! `[section]` headers, `key = "string"` and `key = ["a", "b"]` entries,
//! `#` comments — and rejects anything else loudly. Keeping the policy in
//! data (not code) means tightening the allowed surface is a one-line
//! diffable change reviewed like any other.

use std::collections::BTreeMap;

/// One declared lock class: a named mutex/rwlock the concurrency passes
/// track, identified by the file it lives in and the field/binding name
/// the guard is acquired through.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockClassDecl {
    /// Human-readable class name used in diagnostics and the global
    /// lock-order graph (e.g. `shard-state`).
    pub name: String,
    /// Path prefix scoping the declaration (e.g.
    /// `crates/serve/src/cache.rs`): the same receiver ident in another
    /// file is a different lock.
    pub path: String,
    /// The receiver identifier immediately before `.lock()` /
    /// `.read()` / `.write()` (or last inside a `*_unpoisoned(...)`
    /// argument), e.g. `state`.
    pub receiver: String,
}

/// One declared mutex/condvar pairing the condvar-discipline pass checks
/// notify-after-mutation against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CondvarPairDecl {
    /// Path prefix scoping the pair.
    pub path: String,
    /// Receiver ident of the paired mutex (as in [`LockClassDecl`]).
    pub mutex_receiver: String,
    /// Field/binding name of the condvar (`not_empty`, `compiled`, ...).
    pub condvar: String,
}

/// Parsed lint policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    /// Crate whose internals are the hidden oracle (ident form, e.g.
    /// `dnnperf_gpu`).
    pub oracle_crate: String,
    /// Module names under the oracle crate that predictor code must never
    /// path-reference (`timing`, `fault`).
    pub oracle_private_modules: Vec<String>,
    /// Identifiers that only exist inside the oracle's private modules;
    /// any appearance outside exempt paths is a leak.
    pub oracle_private_idents: Vec<String>,
    /// Path prefixes exempt from the oracle pass (the oracle crate
    /// itself, and this lint crate's own sources/fixtures).
    pub oracle_exempt_paths: Vec<String>,
    /// Path prefixes allowed to call `Instant::now` / `SystemTime`
    /// (the clock abstraction itself, bench harnesses).
    pub determinism_clock_paths: Vec<String>,
    /// Path prefixes whose modules produce outputs and must therefore
    /// avoid iteration-order-dependent `HashMap`/`HashSet`.
    pub determinism_output_paths: Vec<String>,
    /// Crate directory prefixes that must carry
    /// `deny(clippy::unwrap_used, clippy::expect_used)` in their lib.rs.
    pub panic_deny_crates: Vec<String>,
    /// Hot-path files where bare `panic!`/`unreachable!` and slice
    /// indexing are flagged even outside the deny set.
    pub panic_hot_paths: Vec<String>,
    /// Extern crate names allowed by the hermeticity pass in addition to
    /// the workspace's own crates (std and friends).
    pub hermeticity_allowed_externs: Vec<String>,
    /// Path prefixes the workspace walker skips entirely.
    pub workspace_exclude: Vec<String>,
    /// Path prefixes the four concurrency passes analyze (the serving
    /// stack). Empty disables them.
    pub conc_paths: Vec<String>,
    /// Declared lock classes, parsed from `"name path receiver"` triples.
    pub conc_lock_classes: Vec<LockClassDecl>,
    /// Method/function names treated as blocking primitives
    /// (`join`, `sleep`, `recv_batch`, frame I/O, ...).
    pub conc_blocking_calls: Vec<String>,
    /// `(path-prefix, fn-name)` pairs exempt from blocking-under-lock.
    pub conc_blocking_allow: Vec<(String, String)>,
    /// Declared mutex/condvar pairs, from `"path mutex condvar"` triples.
    pub conc_condvar_pairs: Vec<CondvarPairDecl>,
    /// `(path-prefix, fn-name)` pairs exempt from the
    /// notify-after-mutation rule (mutations there only *remove* state,
    /// which can never make a waiter's predicate true).
    pub conc_condvar_allow: Vec<(String, String)>,
    /// The one file allowed to spell the raw
    /// `unwrap_or_else(PoisonError::into_inner)` idiom — the shared
    /// helper module everyone else must call.
    pub conc_helper_file: String,
}

impl Policy {
    /// Parses a `lint.toml` source string.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let raw = parse_toml_subset(src)?;
        let get_list = |sec: &str, key: &str| -> Vec<String> {
            raw.get(&(sec.to_string(), key.to_string()))
                .cloned()
                .unwrap_or_default()
        };
        let get_str = |sec: &str, key: &str| -> String {
            raw.get(&(sec.to_string(), key.to_string()))
                .and_then(|v| v.first().cloned())
                .unwrap_or_default()
        };
        let p = Policy {
            oracle_crate: get_str("oracle", "oracle_crate"),
            oracle_private_modules: get_list("oracle", "private_modules"),
            oracle_private_idents: get_list("oracle", "private_idents"),
            oracle_exempt_paths: get_list("oracle", "exempt_paths"),
            determinism_clock_paths: get_list("determinism", "clock_paths"),
            determinism_output_paths: get_list("determinism", "output_paths"),
            panic_deny_crates: get_list("panic", "deny_crates"),
            panic_hot_paths: get_list("panic", "hot_paths"),
            hermeticity_allowed_externs: get_list("hermeticity", "allowed_externs"),
            workspace_exclude: get_list("workspace", "exclude"),
            conc_paths: get_list("concurrency", "paths"),
            conc_lock_classes: parse_triples(&get_list("concurrency", "lock_classes"))?
                .into_iter()
                .map(|[name, path, receiver]| LockClassDecl {
                    name,
                    path,
                    receiver,
                })
                .collect(),
            conc_blocking_calls: get_list("concurrency", "blocking_calls"),
            conc_blocking_allow: parse_pairs(&get_list("concurrency", "blocking_allow"))?,
            conc_condvar_pairs: parse_triples(&get_list("concurrency", "condvar_pairs"))?
                .into_iter()
                .map(|[path, mutex_receiver, condvar]| CondvarPairDecl {
                    path,
                    mutex_receiver,
                    condvar,
                })
                .collect(),
            conc_condvar_allow: parse_pairs(&get_list("concurrency", "condvar_allow"))?,
            conc_helper_file: get_str("concurrency", "helper_file"),
        };
        if p.oracle_crate.is_empty() {
            return Err("lint.toml: [oracle] oracle_crate is required".to_string());
        }
        if p.oracle_private_modules.is_empty() {
            return Err("lint.toml: [oracle] private_modules must be non-empty".to_string());
        }
        Ok(p)
    }
}

/// Splits each `"a b c"` entry into exactly three whitespace-separated
/// fields, rejecting anything else with the offending entry quoted.
fn parse_triples(entries: &[String]) -> Result<Vec<[String; 3]>, String> {
    entries
        .iter()
        .map(|e| {
            let fields: Vec<&str> = e.split_whitespace().collect();
            match fields.as_slice() {
                [a, b, c] => Ok([a.to_string(), b.to_string(), c.to_string()]),
                _ => Err(format!(
                    "lint.toml: [concurrency] entry `{e}` must have exactly three \
                     whitespace-separated fields"
                )),
            }
        })
        .collect()
}

/// Splits each `"a b"` entry into exactly two whitespace-separated
/// fields.
fn parse_pairs(entries: &[String]) -> Result<Vec<(String, String)>, String> {
    entries
        .iter()
        .map(|e| {
            let fields: Vec<&str> = e.split_whitespace().collect();
            match fields.as_slice() {
                [a, b] => Ok((a.to_string(), b.to_string())),
                _ => Err(format!(
                    "lint.toml: [concurrency] entry `{e}` must have exactly two \
                     whitespace-separated fields"
                )),
            }
        })
        .collect()
}

/// Parses the TOML subset into `(section, key) -> values` (a scalar
/// string becomes a single-element list). Arrays may span multiple
/// lines: a value opening with `[` consumes lines until the closing
/// `]`, with comments stripped per-line.
fn parse_toml_subset(src: &str) -> Result<BTreeMap<(String, String), Vec<String>>, String> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let lines: Vec<&str> = src.lines().collect();
    let mut n = 0usize;
    while n < lines.len() {
        let lineno = n + 1;
        let line = strip_comment(lines[n]).trim().to_string();
        n += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = inner.trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = value`"));
        };
        let key = line[..eq].trim().to_string();
        let mut val = line[eq + 1..].trim().to_string();
        if val.starts_with('[') && !val.ends_with(']') {
            // Multi-line array: accumulate until the closing bracket.
            loop {
                let Some(cont) = lines.get(n) else {
                    return Err(format!(
                        "lint.toml:{lineno}: unterminated array for `{key}`"
                    ));
                };
                let cont = strip_comment(cont).trim().to_string();
                n += 1;
                if !cont.is_empty() {
                    val.push(' ');
                    val.push_str(&cont);
                }
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        let values = if let Some(body) = val.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            parse_string_list(body, lineno)?
        } else {
            vec![parse_string(&val, lineno)?]
        };
        out.insert((section.clone(), key), values);
    }
    Ok(out)
}

/// Strips a `#` comment, respecting `"..."` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str, lineno: usize) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(|t| t.to_string())
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a double-quoted string, got `{s}`"))
}

fn parse_string_list(body: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[oracle]
oracle_crate = "dnnperf_gpu"
private_modules = ["timing", "fault"]
private_idents = ["kernel_time"]  # inline comment
exempt_paths = ["crates/gpu/"]

[determinism]
clock_paths = ["crates/scheduler/src/retry.rs"]
output_paths = ["crates/core/src/",]
"#;

    #[test]
    fn parses_sections_strings_and_lists() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.oracle_crate, "dnnperf_gpu");
        assert_eq!(p.oracle_private_modules, vec!["timing", "fault"]);
        assert_eq!(p.oracle_private_idents, vec!["kernel_time"]);
        assert_eq!(
            p.determinism_clock_paths,
            vec!["crates/scheduler/src/retry.rs"]
        );
        assert_eq!(p.determinism_output_paths, vec!["crates/core/src/"]);
        assert!(p.panic_deny_crates.is_empty());
    }

    #[test]
    fn missing_oracle_crate_is_an_error() {
        let err = Policy::parse("[oracle]\nprivate_modules = [\"timing\"]\n").unwrap_err();
        assert!(err.contains("oracle_crate"));
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = Policy::parse("[oracle]\noracle_crate\n").unwrap_err();
        assert!(err.contains(":2:"), "{err}");
    }

    #[test]
    fn multi_line_arrays_parse_with_per_line_comments() {
        let src = concat!(
            "[oracle]\noracle_crate = \"g\"\n",
            "private_modules = [\n",
            "    \"timing\", # ground truth\n",
            "    \"fault\",\n",
            "]\n",
        );
        let p = Policy::parse(src).unwrap();
        assert_eq!(p.oracle_private_modules, vec!["timing", "fault"]);
    }

    #[test]
    fn unterminated_array_is_a_loud_error() {
        let err = Policy::parse("[oracle]\noracle_crate = \"g\"\nprivate_modules = [\n\"m\",\n")
            .unwrap_err();
        assert!(err.contains("unterminated"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let raw = parse_toml_subset("[s]\nk = \"a#b\"\n").unwrap();
        assert_eq!(raw[&("s".to_string(), "k".to_string())], vec!["a#b"]);
    }

    #[test]
    fn concurrency_section_parses_triples_and_pairs() {
        let src = concat!(
            "[oracle]\noracle_crate = \"g\"\nprivate_modules = [\"m\"]\n",
            "[concurrency]\n",
            "paths = [\"crates/serve/src/\"]\n",
            "lock_classes = [\"shard-state crates/serve/src/cache.rs state\"]\n",
            "blocking_calls = [\"join\", \"sleep\"]\n",
            "condvar_pairs = [\"crates/serve/src/cache.rs state compiled\"]\n",
            "condvar_allow = [\"crates/serve/src/cache.rs clear\"]\n",
            "helper_file = \"crates/scheduler/src/sync.rs\"\n",
        );
        let p = Policy::parse(src).unwrap();
        assert_eq!(p.conc_paths, vec!["crates/serve/src/"]);
        assert_eq!(
            p.conc_lock_classes,
            vec![LockClassDecl {
                name: "shard-state".into(),
                path: "crates/serve/src/cache.rs".into(),
                receiver: "state".into(),
            }]
        );
        assert_eq!(p.conc_blocking_calls, vec!["join", "sleep"]);
        assert_eq!(
            p.conc_condvar_pairs,
            vec![CondvarPairDecl {
                path: "crates/serve/src/cache.rs".into(),
                mutex_receiver: "state".into(),
                condvar: "compiled".into(),
            }]
        );
        assert_eq!(
            p.conc_condvar_allow,
            vec![("crates/serve/src/cache.rs".to_string(), "clear".to_string())]
        );
        assert_eq!(p.conc_helper_file, "crates/scheduler/src/sync.rs");
    }

    #[test]
    fn malformed_lock_class_triple_is_an_error() {
        let src = concat!(
            "[oracle]\noracle_crate = \"g\"\nprivate_modules = [\"m\"]\n",
            "[concurrency]\nlock_classes = [\"only-two fields-here\"]\n",
        );
        let err = Policy::parse(src).unwrap_err();
        assert!(err.contains("three"), "{err}");
    }
}
