//! Token-stream structure extraction: use-declarations, attributes and
//! `#[cfg(test)]` regions.
//!
//! This is deliberately **not** a parser. Each extractor walks the flat
//! token stream from [`crate::lexer`] and recovers just enough shape for
//! the passes:
//!
//! * [`use_paths`] flattens every `use` declaration (including group
//!   trees `use a::{b, c::d}` and globs `use a::*`) into leaf paths with
//!   the span of their *first* segment — so a diagnostic points at the
//!   import, not at the closing brace;
//! * [`attributes`] collects `#[...]` / `#![...]` attributes as flattened
//!   token text, which is enough to structurally verify
//!   `deny(clippy::unwrap_used)`-style policy attributes;
//! * [`test_regions`] finds `#[cfg(test)] mod <name> { ... }` blocks by
//!   brace matching, so passes can skip findings inside test code.

use crate::lexer::{Lexed, TokKind, Token};

/// One flattened `use` path, e.g. `["dnnperf_gpu", "timing", "*"]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, leading `::` dropped; a trailing glob appears as
    /// a literal `"*"` segment, `as` renames are dropped.
    pub segments: Vec<String>,
    /// 1-based line of the path's first segment.
    pub line: u32,
    /// 1-based column of the path's first segment.
    pub col: u32,
}

impl UsePath {
    /// The path joined with `::` for display.
    pub fn display(&self) -> String {
        self.segments.join("::")
    }
}

/// An attribute, flattened to the token text inside the brackets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// `true` for inner attributes `#![...]` (crate/module level).
    pub inner: bool,
    /// The attribute body with all tokens joined by single spaces,
    /// e.g. `cfg_attr ( not ( test ) , deny ( clippy :: unwrap_used ) )`.
    pub tokens: String,
    /// 1-based line of the `#`.
    pub line: u32,
}

impl Attribute {
    /// Whether the flattened body contains `needle` with all spaces
    /// removed on both sides (so callers can write `deny(clippy::unwrap_used`
    /// naturally).
    pub fn contains(&self, needle: &str) -> bool {
        let hay: String = self.tokens.chars().filter(|c| !c.is_whitespace()).collect();
        let pat: String = needle.chars().filter(|c| !c.is_whitespace()).collect();
        hay.contains(&pat)
    }
}

/// Extracts every `use` declaration's leaf paths.
///
/// Handles `pub use`, `pub(crate) use`, nested groups, globs and `as`
/// renames. `use` inside function bodies is included too (imports are
/// imports wherever they live — the oracle pass wants them all).
pub fn use_paths(lexed: &Lexed) -> Vec<UsePath> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") && !is_ident_before(toks, i) {
            // Find the terminating `;` (or give up at EOF).
            let start = i + 1;
            let mut j = start;
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    // A close brace below zero means this `use` keyword was
                    // actually something else (e.g. a macro fragment);
                    // abandon the declaration.
                    if depth < 0 {
                        break;
                    }
                } else if toks[j].is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct(';') {
                flatten_use_tree(&toks[start..j], &[], &mut out);
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `expr . use` or `r#use` never occur, but `mod use` etc. would be a
/// syntax error anyway; the one real false positive is `use` appearing as
/// a macro metavariable name — guard by requiring the previous token not
/// be an ident/path-sep (so `foo::use` is skipped).
fn is_ident_before(toks: &[Token], i: usize) -> bool {
    i > 0 && matches!(toks[i - 1].kind, TokKind::PathSep) // `::use` never valid
}

/// Recursively flattens one use-tree token slice into leaf paths.
///
/// `prefix` holds the segments (with the span of the very first one)
/// accumulated from enclosing groups.
fn flatten_use_tree(toks: &[Token], prefix: &[(String, u32, u32)], out: &mut Vec<UsePath>) {
    // Split the slice on top-level commas, then process each element.
    let mut depth = 0i32;
    let mut elem_start = 0usize;
    let mut elems: Vec<&[Token]> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            elems.push(&toks[elem_start..k]);
            elem_start = k + 1;
        }
    }
    elems.push(&toks[elem_start..]);

    for elem in elems {
        let mut segs: Vec<(String, u32, u32)> = prefix.to_vec();
        let mut k = 0;
        let mut done = false;
        while k < elem.len() && !done {
            let t = &elem[k];
            match t.kind {
                TokKind::Ident => {
                    if t.text == "as" {
                        // Rename: skip the alias, the leaf is complete.
                        done = true;
                    } else {
                        segs.push((t.text.clone(), t.line, t.col));
                    }
                    k += 1;
                }
                TokKind::PathSep => {
                    k += 1;
                }
                TokKind::Punct if t.text == "*" => {
                    segs.push(("*".to_string(), t.line, t.col));
                    k += 1;
                }
                TokKind::Punct if t.text == "{" => {
                    // Find the matching close brace; recurse on the body.
                    let mut d = 1i32;
                    let mut m = k + 1;
                    while m < elem.len() && d > 0 {
                        if elem[m].is_punct('{') {
                            d += 1;
                        } else if elem[m].is_punct('}') {
                            d -= 1;
                        }
                        m += 1;
                    }
                    let body_end = m.saturating_sub(1);
                    flatten_use_tree(&elem[k + 1..body_end], &segs, out);
                    segs.clear(); // group consumed: no leaf at this level
                    done = true;
                }
                _ => {
                    k += 1;
                }
            }
        }
        if !segs.is_empty() {
            let (line, col) = (segs[0].1, segs[0].2);
            out.push(UsePath {
                segments: segs.into_iter().map(|(s, _, _)| s).collect(),
                line,
                col,
            });
        }
    }
}

/// Extracts every attribute in the file.
pub fn attributes(lexed: &Lexed) -> Vec<Attribute> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let line = toks[i].line;
            let mut j = i + 1;
            let inner = j < toks.len() && toks[j].is_punct('!');
            if inner {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let mut depth = 1i32;
                let mut k = j + 1;
                let mut body = Vec::new();
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    body.push(toks[k].text.clone());
                    k += 1;
                }
                out.push(Attribute {
                    inner,
                    tokens: body.join(" "),
                    line,
                });
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// A half-open line range `[start, end]` (inclusive) of test code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    /// First line of the region (the `#[cfg(test)]` attribute line).
    pub start: u32,
    /// Last line of the region (the closing brace's line).
    pub end: u32,
}

/// Finds `#[cfg(test)] mod <name> { ... }` regions plus `#[test] fn`
/// bodies, returning inclusive line ranges.
///
/// Brace matching runs on the token stream, so strings/comments cannot
/// unbalance it.
pub fn test_regions(lexed: &Lexed) -> Vec<LineRange> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Match `#[cfg(test)]` or `#[cfg(test, ...)]` / `#[cfg(all(test,..`.
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Flatten this single attribute.
            let mut depth = 1i32;
            let mut k = i + 2;
            let mut body = String::new();
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                body.push_str(&toks[k].text);
                k += 1;
            }
            let is_cfg_test = body.starts_with("cfg(") && body.contains("test");
            let is_test_attr = body == "test" || body.starts_with("test(");
            if is_cfg_test || is_test_attr {
                let start_line = toks[i].line;
                // Scan forward past further attributes / visibility / the
                // item keyword to the first `{`, then brace-match.
                let mut m = k + 1;
                let mut opened = false;
                while m < toks.len() {
                    if toks[m].is_punct('{') {
                        opened = true;
                        break;
                    }
                    if toks[m].is_punct(';') {
                        break; // e.g. `#[cfg(test)] mod tests;` — file-level
                    }
                    m += 1;
                }
                if opened {
                    let mut d = 1i32;
                    let mut n = m + 1;
                    while n < toks.len() && d > 0 {
                        if toks[n].is_punct('{') {
                            d += 1;
                        } else if toks[n].is_punct('}') {
                            d -= 1;
                        }
                        n += 1;
                    }
                    let end_line = toks[n.saturating_sub(1).min(toks.len() - 1)].line;
                    out.push(LineRange {
                        start: start_line,
                        end: end_line,
                    });
                    i = n;
                    continue;
                }
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Whether `line` falls inside any of `regions`.
pub fn in_regions(regions: &[LineRange], line: u32) -> bool {
    regions.iter().any(|r| line >= r.start && line <= r.end)
}

/// One `fn` item recovered from the token stream.
///
/// `body` brackets the function's block as **token indices** into the
/// file's [`Lexed::tokens`]: `body.0` is the opening `{`, `body.1` the
/// matching `}`. Trait-method *declarations* (`fn f(&self);`) have no
/// body and are not reported. Nested `fn` items appear as their own
/// entries; callers that attribute effects to the enclosing function must
/// subtract contained items themselves (see the concurrency passes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// `(open_brace, close_brace)` token indices of the block.
    pub body: (usize, usize),
}

impl FnItem {
    /// Whether token index `i` lies strictly inside this item's body.
    pub fn contains(&self, i: usize) -> bool {
        i > self.body.0 && i < self.body.1
    }
}

/// Returns the token index of the `}` matching the `{` at `open`, or
/// `None` if the stream ends unbalanced (lexically truncated input).
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    debug_assert!(toks.get(open).is_some_and(|t| t.is_punct('{')));
    let mut depth = 0i32;
    for (off, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// Extracts every `fn` item with a body, including nested and test fns.
///
/// Recovery is token-stream-shaped, not grammatical: a `fn` keyword
/// followed by an identifier starts an item; the signature runs to the
/// first `{` (body) or `;` (bodyless declaration) at zero
/// bracket/paren depth, so `fn f(x: [u8; 4])` does not end at the
/// array-type semicolon and `where` clauses are skipped over. Closures
/// are not `fn` items.
pub fn fn_items(lexed: &Lexed) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && i + 1 < toks.len()
            && matches!(toks[i + 1].kind, TokKind::Ident)
        {
            let name = &toks[i + 1];
            // Scan the signature for the body's `{` (or `;` for a
            // bodyless trait declaration), tracking (), [] and <> depth
            // so type-level braces/semicolons don't fool us. `<` depth is
            // tracked loosely (comparison operators cannot appear in a
            // signature outside const-generic defaults, which we accept
            // mis-nesting on — the `(`/`[` depths still rescue us).
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 {
                    if t.is_punct('{') {
                        open = Some(j);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                }
                j += 1;
            }
            if let Some(open) = open {
                if let Some(close) = matching_brace(toks, open) {
                    out.push(FnItem {
                        name: name.text.clone(),
                        line: name.line,
                        col: name.col,
                        body: (open, close),
                    });
                    // Continue *inside* the body so nested fns are found.
                    i = open + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn flat_use_paths() {
        let l = lex("use dnnperf_gpu::timing::TimingModel;\n");
        let p = use_paths(&l);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].segments, vec!["dnnperf_gpu", "timing", "TimingModel"]);
        assert_eq!((p[0].line, p[0].col), (1, 5));
    }

    #[test]
    fn grouped_and_glob_use_paths() {
        let l = lex("pub use a::{b, c::{d, e as f}, g::*};\n");
        let p = use_paths(&l);
        let shown: Vec<_> = p.iter().map(|u| u.display()).collect();
        assert_eq!(shown, vec!["a::b", "a::c::d", "a::c::e", "a::g::*"]);
    }

    #[test]
    fn glob_import_span_points_at_first_segment() {
        let l = lex("fn f() {\n    use dnnperf_gpu::timing::*;\n}\n");
        let p = use_paths(&l);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].display(), "dnnperf_gpu::timing::*");
        assert_eq!((p[0].line, p[0].col), (2, 9));
    }

    #[test]
    fn attributes_flatten() {
        let l = lex(
            "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\nfn x() {}\n",
        );
        let a = attributes(&l);
        assert_eq!(a.len(), 1);
        assert!(a[0].inner);
        assert!(a[0].contains("deny(clippy::unwrap_used"));
        assert!(a[0].contains("clippy::expect_used"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let l = lex(src);
        let r = test_regions(&l);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].start, r[0].end), (2, 5));
        assert!(in_regions(&r, 4));
        assert!(!in_regions(&r, 6));
    }

    #[test]
    fn test_attr_fn_is_a_region() {
        let src = "#[test]\nfn prop() {\n    let x = v[0];\n}\n";
        let l = lex(src);
        let r = test_regions(&l);
        assert_eq!(r.len(), 1);
        assert!(in_regions(&r, 3));
    }

    #[test]
    fn fn_items_recover_names_and_bodies() {
        let src = "pub fn a(x: u32) -> u32 {\n    x + 1\n}\nfn b() {}\n";
        let l = lex(src);
        let fns = fn_items(&l);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!((fns[0].line, fns[0].col), (1, 8));
        assert_eq!(fns[1].name, "b");
        // Body brackets are a matched brace pair.
        let (o, c) = fns[0].body;
        assert!(l.tokens[o].is_punct('{') && l.tokens[c].is_punct('}'));
    }

    #[test]
    fn fn_items_skip_bodyless_declarations_and_survive_array_types() {
        let src = "trait T {\n    fn decl(&self, buf: [u8; 4]);\n    fn with_default(&self) -> usize { 0 }\n}\n";
        let l = lex(src);
        let fns = fn_items(&l);
        assert_eq!(fns.len(), 1, "only the default method has a body");
        assert_eq!(fns[0].name, "with_default");
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let src = "fn outer() {\n    fn inner() { let _ = 1; }\n    inner();\n}\n";
        let l = lex(src);
        let fns = fn_items(&l);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // inner's body nests inside outer's.
        assert!(fns[0].contains(fns[1].body.0));
    }

    #[test]
    fn matching_brace_handles_nesting() {
        let l = lex("{ { } { { } } }");
        assert_eq!(matching_brace(&l.tokens, 0), Some(l.tokens.len() - 1));
        assert_eq!(matching_brace(&l.tokens, 1), Some(2));
    }
}
