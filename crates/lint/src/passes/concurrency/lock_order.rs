//! lock-order: every pair of declared lock classes must be acquired in
//! one global order; any cycle in the acquisition graph is a finding.

use std::collections::BTreeMap;

use super::analyze;
use crate::diag::Finding;
use crate::workspace::Context;

/// `--explain lock-order` rationale.
pub const EXPLAIN: &str = "\
A deadlock needs four ingredients; the only one a linter can see is the
circular wait. lock-order rebuilds the workspace's lock hierarchy from the
declared classes in lint.toml ([concurrency] lock_classes): every time a
guard of class A is still live when class B is acquired — directly, or
through any function the analysis can resolve from the call site — the
pass records an edge A -> B in a global acquisition-order graph. The
serving stack is correct iff that graph is a partial order, so any cycle
(including a self-edge: re-acquiring a class while holding it) is
reported, with the witness acquisition path for *every* edge of the cycle
so both sides of a two-lock deadlock are named in one diagnostic. The
analysis over-approximates call targets (bare-name resolution) and
under-approximates guard lifetimes (lexical scopes), which keeps
witnesses concrete; std-prelude method names are never resolved, so
`guard.clear()` cannot fabricate an edge.";

struct Edge {
    file: String,
    line: u32,
    col: u32,
    snippet: String,
    witness: String,
}

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let a = analyze(ctx);
    let classes = &ctx.policy.conc_lock_classes;
    if classes.is_empty() {
        return Vec::new();
    }

    // Build the acquisition-order graph. First witness wins per edge;
    // fns/guards/calls are in deterministic (file, token) order.
    let mut edges: BTreeMap<(usize, usize), Edge> = BTreeMap::new();
    for f in &a.fns {
        let rel = a.rel(f).to_string();
        let file = &a.ctx.files[f.file];
        for g in &f.guards {
            let Some(ca) = g.class else { continue };
            for h in &f.guards {
                let Some(cb) = h.class else { continue };
                if h.tok != g.tok && g.live_at(h.tok) {
                    edges.entry((ca, cb)).or_insert_with(|| Edge {
                        file: rel.clone(),
                        line: h.line,
                        col: h.col,
                        snippet: file.line_text(h.line).trim().to_string(),
                        witness: format!(
                            "{} held at {}:{} acquires {} at {}:{}",
                            classes[ca].name, rel, g.line, classes[cb].name, rel, h.line
                        ),
                    });
                }
            }
            for c in &f.calls {
                if !g.live_at(c.tok) {
                    continue;
                }
                for &j in a.resolve(&c.callee) {
                    for (&cb, w) in &a.trans_acquires[j] {
                        edges.entry((ca, cb)).or_insert_with(|| Edge {
                            file: rel.clone(),
                            line: c.line,
                            col: c.col,
                            snippet: file.line_text(c.line).trim().to_string(),
                            witness: format!(
                                "{} held at {}:{} calls `{}` at {}:{} which acquires {} via {}",
                                classes[ca].name,
                                rel,
                                g.line,
                                c.callee,
                                rel,
                                c.line,
                                classes[cb].name,
                                w
                            ),
                        });
                    }
                }
            }
        }
    }

    let mut out = Vec::new();

    // Self-edges are one-node cycles: re-acquiring a class while a guard
    // of the same class is live self-deadlocks on the same instance and
    // is unordered even across instances.
    for (&(ca, cb), e) in &edges {
        if ca == cb {
            out.push(finding(
                e,
                format!(
                    "lock class `{}` re-acquired while already held ({})",
                    classes[ca].name, e.witness
                ),
            ));
        }
    }

    // Simple cycles of length >= 2, each enumerated once: DFS from every
    // start node s through nodes > s only, closing back at s.
    let nodes: Vec<usize> = {
        let mut n: Vec<usize> = edges.keys().flat_map(|&(x, y)| [x, y]).collect();
        n.sort_unstable();
        n.dedup();
        n
    };
    let succ = |u: usize| -> Vec<usize> {
        edges
            .keys()
            .filter(|&&(x, _)| x == u)
            .map(|&(_, y)| y)
            .collect()
    };
    for &s in &nodes {
        let mut stack: Vec<Vec<usize>> = vec![vec![s]];
        while let Some(path) = stack.pop() {
            let u = *path.last().expect("non-empty DFS path");
            for v in succ(u) {
                if v == s && path.len() >= 2 {
                    out.push(cycle_finding(classes, &edges, &path));
                } else if v > s && !path.contains(&v) {
                    let mut p = path.clone();
                    p.push(v);
                    stack.push(p);
                }
            }
        }
    }

    out
}

fn finding(e: &Edge, message: String) -> Finding {
    Finding {
        file: e.file.clone(),
        line: e.line,
        col: e.col,
        pass: "lock-order",
        snippet: e.snippet.clone(),
        message,
    }
}

/// Renders one cycle with the witness path of every edge, so a two-lock
/// inversion names both acquisition orders in a single diagnostic.
fn cycle_finding(
    classes: &[crate::policy::LockClassDecl],
    edges: &BTreeMap<(usize, usize), Edge>,
    path: &[usize],
) -> Finding {
    let ring: Vec<String> = path
        .iter()
        .chain(path.first())
        .map(|&c| classes[c].name.clone())
        .collect();
    let mut witnesses = Vec::new();
    for k in 0..path.len() {
        let e = &edges[&(path[k], path[(k + 1) % path.len()])];
        witnesses.push(format!("[{}]", e.witness));
    }
    let first = &edges[&(path[0], path[1 % path.len()])];
    finding(
        first,
        format!(
            "lock-order cycle {}: {}",
            ring.join(" -> "),
            witnesses.join("; ")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LockClassDecl, Policy};
    use crate::workspace::SourceFile;

    fn ctx(src: &str) -> Context {
        let policy = Policy {
            conc_paths: vec!["src/".to_string()],
            conc_lock_classes: vec![
                LockClassDecl {
                    name: "alpha".to_string(),
                    path: "src/a.rs".to_string(),
                    receiver: "alpha".to_string(),
                },
                LockClassDecl {
                    name: "beta".to_string(),
                    path: "src/a.rs".to_string(),
                    receiver: "beta".to_string(),
                },
            ],
            ..Policy::default()
        };
        Context::from_parts(
            policy,
            vec![SourceFile::from_source("src/a.rs", src)],
            vec![],
        )
    }

    #[test]
    fn opposite_acquisition_orders_are_a_cycle_with_both_witnesses() {
        let src = "\
fn ab(s: &S) {
    let _a = lock_unpoisoned(&s.alpha);
    let _b = lock_unpoisoned(&s.beta);
}
fn ba(s: &S) {
    let _b = lock_unpoisoned(&s.beta);
    let _a = lock_unpoisoned(&s.alpha);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        let msg = &f[0].message;
        assert!(msg.contains("alpha -> beta -> alpha"), "{msg}");
        assert!(msg.contains("src/a.rs:3"), "first witness: {msg}");
        assert!(msg.contains("src/a.rs:7"), "second witness: {msg}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
fn ab(s: &S) {
    let _a = lock_unpoisoned(&s.alpha);
    let _b = lock_unpoisoned(&s.beta);
}
fn ab2(s: &S) {
    let _a = lock_unpoisoned(&s.alpha);
    let _b = lock_unpoisoned(&s.beta);
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn call_mediated_inversion_is_found() {
        let src = "\
fn take_beta(s: &S) {
    let _b = lock_unpoisoned(&s.beta);
}
fn under_alpha(s: &S) {
    let _a = lock_unpoisoned(&s.alpha);
    take_beta(s);
}
fn under_beta(s: &S) {
    let _b = lock_unpoisoned(&s.beta);
    let _a = lock_unpoisoned(&s.alpha);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("take_beta"), "{}", f[0].message);
    }

    #[test]
    fn self_reacquisition_is_a_finding() {
        let src = "\
fn twice(s: &S) {
    let _a = lock_unpoisoned(&s.alpha);
    let _again = lock_unpoisoned(&s.alpha);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("re-acquired"), "{}", f[0].message);
    }
}
