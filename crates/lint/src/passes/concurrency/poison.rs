//! poison-policy: every lock acquisition goes through the shared
//! `*_unpoisoned` helpers; no hand-rolled recovery, no poison panics.

use super::{analyze, Handling};
use crate::diag::Finding;
use crate::workspace::Context;

/// `--explain poison-policy` rationale.
pub const EXPLAIN: &str = "\
The workspace's poison policy is recover-and-continue: a worker that
panicked mid-request is supervised (its waiters answered, the thread
respawned), so the state it was mutating is either repaired or discarded
by the supervisor — propagating the poison by panicking in *other*
threads would turn one contained crash into a cascade. That policy only
holds if every acquisition spells it the same way. The pass requires
every `.lock()` / `.read()` / `.write()` on the serving stack to go
through the shared helpers (dnnperf_sched::sync::lock_unpoisoned and
friends): `.unwrap()`/`.expect(..)` turns a poisoned lock into a second
panic; a hand-rolled `unwrap_or_else(PoisonError::into_inner)` is
today's idiom forked from tomorrow's policy change; and anything else
leaves the LockResult to ad-hoc handling. The one file allowed to spell
the idiom by hand is `[concurrency] helper_file` — the helpers
themselves.";

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let a = analyze(ctx);
    let helper_file = &ctx.policy.conc_helper_file;
    let mut out = Vec::new();
    for f in &a.fns {
        let rel = a.rel(f);
        if !helper_file.is_empty() && rel.starts_with(helper_file.as_str()) {
            continue;
        }
        let file = &a.ctx.files[f.file];
        for g in &f.guards {
            if g.handling == Handling::Helper {
                continue;
            }
            let helper = g.kind.helper();
            let message = match g.handling {
                Handling::Crash => format!(
                    "poisoned lock would panic here; recover with \
                     dnnperf_sched::sync::{helper} (policy: poison never cascades)"
                ),
                Handling::RawIdiom => format!(
                    "hand-rolled poison recovery; use dnnperf_sched::sync::{helper} \
                     so the policy lives in one place"
                ),
                _ => format!(
                    "LockResult handled ad hoc; acquire through \
                     dnnperf_sched::sync::{helper}"
                ),
            };
            out.push(Finding {
                file: rel.to_string(),
                line: g.line,
                col: g.col,
                pass: "poison-policy",
                snippet: file.line_text(g.line).trim().to_string(),
                message,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::SourceFile;

    fn ctx(files: Vec<(&str, &str)>) -> Context {
        let policy = Policy {
            conc_paths: vec!["src/".to_string()],
            conc_helper_file: "src/sync.rs".to_string(),
            ..Policy::default()
        };
        Context::from_parts(
            policy,
            files
                .into_iter()
                .map(|(p, s)| SourceFile::from_source(p, s))
                .collect(),
            vec![],
        )
    }

    #[test]
    fn unwrap_raw_idiom_and_helper_are_ranked_correctly() {
        let src = "\
fn f(s: &S) {
    let a = s.state.lock().unwrap();
    let b = s.state.lock().unwrap_or_else(PoisonError::into_inner);
    let c = lock_unpoisoned(&s.state);
    let d = s.gauge.read().expect(\"poisoned\");
}
";
        let f = run(&ctx(vec![("src/a.rs", src)]));
        assert_eq!(f.len(), 3, "{f:#?}");
        assert!(f[0].message.contains("panic"), "{}", f[0].message);
        assert!(f[0].message.contains("lock_unpoisoned"));
        assert!(f[1].message.contains("hand-rolled"), "{}", f[1].message);
        assert!(f[2].message.contains("read_unpoisoned"), "{}", f[2].message);
        assert_eq!((f[0].line, f[0].col), (2, 21));
    }

    #[test]
    fn helper_file_may_spell_the_idiom_by_hand() {
        let src = "\
pub fn lock_unpoisoned(m: &Mutex<T>) -> MutexGuard<T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
";
        assert!(run(&ctx(vec![("src/sync.rs", src)])).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn prod(s: &S) {
    let _g = lock_unpoisoned(&s.state);
}
#[cfg(test)]
mod tests {
    fn t(s: &S) {
        let _g = s.state.lock().unwrap();
    }
}
";
        assert!(run(&ctx(vec![("src/a.rs", src)])).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "\
fn f(s: &mut S) {
    s.stream.read(&mut s.buf).ok();
}
";
        assert!(run(&ctx(vec![("src/a.rs", src)])).is_empty());
    }
}
