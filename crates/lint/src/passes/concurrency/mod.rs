//! Shared substrate for the four concurrency passes: guard-lifetime
//! tracking, lock-class resolution and a conservative workspace call
//! graph.
//!
//! The lexer is lossy and this is not a borrow checker — the analysis
//! recovers *lexical* guard lifetimes (a guard created by `.lock()` /
//! `.read()` / `.write()` or one of the `*_unpoisoned` helpers lives
//! until the end of its enclosing block, an explicit `drop(guard)`, or —
//! for an unbound temporary — the end of its method chain / statement).
//! That under-approximates real borrow lifetimes in exactly the direction
//! a linter wants: a guard we believe dead may linger a little longer in
//! rustc's eyes (`if let` temporaries), but a guard we believe *live*
//! really is held, so every finding has a concrete witness.
//!
//! On top of the per-function facts sits a call graph resolved by bare
//! callee name (conservative: one name may map to several workspace
//! functions; all are assumed reachable). Two relations are propagated to
//! a fixpoint:
//!
//! * `trans_acquires` — which declared lock classes a call may acquire,
//!   with a witness chain (`callee -> file:line`);
//! * `trans_blocking` — whether a call may reach a blocking primitive,
//!   with the same style of witness.
//!
//! Names that collide with std-prelude / collection methods (`clone`,
//! `len`, `insert`, …) are never resolved through the graph — resolving
//! `guard.clear()` to some workspace `fn clear` would fabricate
//! self-edges out of thin air. This trims the graph's recall a little and
//! buys precision, which is the right trade for a zero-baseline gate.
//!
//! Code inside `spawn(...)` arguments is carved out of the enclosing
//! function and analyzed as an anonymous body: the closure runs on
//! another thread, so its acquisitions do not nest inside the spawner's
//! guards. Anonymous bodies are never call-graph targets.

use std::collections::BTreeMap;

use crate::ast;
use crate::lexer::{TokKind, Token};
use crate::policy::Policy;
use crate::workspace::{path_in, Context, SourceFile};

pub mod blocking;
pub mod condvar;
pub mod lock_order;
pub mod poison;

/// Which accessor created a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `Mutex::lock` / `lock_unpoisoned`.
    Lock,
    /// `RwLock::read` / `read_unpoisoned`.
    Read,
    /// `RwLock::write` / `write_unpoisoned`.
    Write,
}

impl AcqKind {
    /// The shared-helper name that performs this acquisition.
    pub fn helper(self) -> &'static str {
        match self {
            AcqKind::Lock => "lock_unpoisoned",
            AcqKind::Read => "read_unpoisoned",
            AcqKind::Write => "write_unpoisoned",
        }
    }
}

/// How an acquisition's `LockResult` was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handling {
    /// Through one of the shared `*_unpoisoned` helpers.
    Helper,
    /// Hand-rolled `unwrap_or_else(PoisonError::into_inner)`.
    RawIdiom,
    /// `unwrap()` / `expect(..)` — a poisoned lock panics here.
    Crash,
    /// Anything else: bound raw, `ok()`, `match`ed, …
    Other,
}

/// One lock acquisition and its lexical extent.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Accessor kind.
    pub kind: AcqKind,
    /// Receiver identifier (`state` in `shard.state.lock()` or
    /// `lock_unpoisoned(&shard.state)`); empty when unrecoverable.
    pub receiver: String,
    /// Index into `Policy::conc_lock_classes`, if the (file, receiver)
    /// pair matches a declared class.
    pub class: Option<usize>,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// 1-based source column of the acquisition.
    pub col: u32,
    /// Token index of the acquisition ident.
    pub tok: usize,
    /// Token index at which the guard is lexically dead (exclusive).
    pub dies: usize,
    /// `let`-binding name, `None` for chain temporaries.
    pub binding: Option<String>,
    /// Poison-handling discipline observed at the acquisition.
    pub handling: Handling,
}

impl Guard {
    /// Whether the guard is held at token index `t`.
    pub fn live_at(&self, t: usize) -> bool {
        self.tok < t && t < self.dies
    }
}

/// One call site (function or method).
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name (`try_send`, not `queue.try_send`).
    pub callee: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index of the callee ident.
    pub tok: usize,
    /// Whether this was a `.method()` call.
    pub method: bool,
    /// Whether the argument list is empty (`join()` vs `join(", ")`).
    pub empty_args: bool,
    /// Whether any enclosing block is a `while` / `loop` / `for` body.
    pub in_loop: bool,
    /// For condvar-wait shapes: the guard binding consumed by the wait.
    pub wait_guard: Option<String>,
    /// For condvar-wait shapes: the condvar receiver being waited on.
    pub condvar: Option<String>,
}

/// A state mutation observed through a live guard.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Index into the owning [`FnBody::guards`].
    pub guard: usize,
    /// 1-based source line of the mutating method / assignment.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index of the mutation.
    pub tok: usize,
}

/// A `notify_one` / `notify_all` call.
#[derive(Debug, Clone)]
pub struct Notify {
    /// Condvar receiver identifier.
    pub condvar: String,
    /// Token index of the notify ident.
    pub tok: usize,
}

/// Per-function concurrency facts.
#[derive(Debug)]
pub struct FnBody {
    /// Index of the owning file in `Context::files`.
    pub file: usize,
    /// Function name; spawn closures get `parent::<spawn@L<line>>`.
    pub name: String,
    /// 1-based line of the function (or spawn) name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Acquisitions, in token order.
    pub guards: Vec<Guard>,
    /// Call sites, in token order.
    pub calls: Vec<Call>,
    /// Mutations through live guards.
    pub mutations: Vec<Mutation>,
    /// Condvar notifications.
    pub notifies: Vec<Notify>,
}

/// The whole-workspace analysis the passes consume.
pub struct Analysis<'a> {
    /// The lint context (files, policy).
    pub ctx: &'a Context,
    /// Every analyzed function body.
    pub fns: Vec<FnBody>,
    /// Name → indices into `fns` (anonymous bodies excluded).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per-fn: lock class index → witness acquisition chain.
    pub trans_acquires: Vec<BTreeMap<usize, String>>,
    /// Per-fn: witness chain to a blocking primitive, if reachable.
    pub trans_blocking: Vec<Option<String>>,
}

/// Method names that mutate the receiver's protected data.
const MUTATORS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "clear",
    "drain",
    "extend",
    "take",
    "append",
    "swap",
    "retain",
    "truncate",
];

/// Names never resolved through the call graph: they collide with
/// std-prelude / collection / trait methods, and resolving `guard.len()`
/// to a workspace `fn len` would fabricate call edges (and with them,
/// lock-order self-cycles) that do not exist. `wait` is here because
/// `.wait(..)` is `Condvar::wait` (already a direct blocking primitive);
/// resolving it to a workspace `fn wait` would route the condvar back
/// into that function's own acquisitions.
const NO_RESOLVE: &[&str] = &[
    "all",
    "any",
    "as_ref",
    "as_str",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "default",
    "drop",
    "entry",
    "eq",
    "expect",
    "filter",
    "find",
    "finish",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "len",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "ok",
    "partial_cmp",
    "read",
    "sum",
    "to_string",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "wait",
    "write",
];

/// Keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

impl<'a> Analysis<'a> {
    /// Workspace-relative path of the file owning `f`.
    pub fn rel(&self, f: &FnBody) -> &str {
        &self.ctx.files[f.file].rel_path
    }

    /// Call-graph targets for a bare callee name. Empty for names on the
    /// no-resolve list and for names with no workspace definition.
    pub fn resolve(&self, callee: &str) -> &[usize] {
        if NO_RESOLVE.contains(&callee) || MUTATORS.contains(&callee) {
            return &[];
        }
        self.by_name.get(callee).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A function's base name with any `::<spawn@..>` suffix stripped, for
/// matching `"file-prefix fn-name"` allowlist entries.
pub fn base_name(name: &str) -> &str {
    name.split("::").next().unwrap_or(name)
}

/// Whether `(rel, fn_name)` matches any `"path-prefix fn-name"` pair.
pub fn allowed(pairs: &[(String, String)], rel: &str, fn_name: &str) -> bool {
    let base = base_name(fn_name);
    pairs
        .iter()
        .any(|(p, n)| rel.starts_with(p.as_str()) && n == base)
}

/// Runs the per-function extraction and the call-graph fixpoint over
/// every non-test file under the policy's concurrency paths.
pub fn analyze(ctx: &Context) -> Analysis<'_> {
    let mut fns: Vec<FnBody> = Vec::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if file.is_test_file || !path_in(&file.rel_path, &ctx.policy.conc_paths) {
            continue;
        }
        let items = ast::fn_items(&file.lexed);
        for item in &items {
            if file.is_test_line(item.line) {
                continue;
            }
            // Effects inside nested `fn` items belong to those items.
            let nested: Vec<(usize, usize)> = items
                .iter()
                .filter(|o| o.body.0 > item.body.0 && o.body.1 < item.body.1)
                .map(|o| (o.body.0, o.body.1))
                .collect();
            extract(
                fi,
                file,
                &ctx.policy,
                &item.name,
                item.line,
                item.col,
                item.body.0 + 1,
                item.body.1,
                &nested,
                &mut fns,
            );
        }
    }

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.name.contains('<') {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
    }

    // Seed the transitive relations from direct facts.
    let n = fns.len();
    let mut trans_acquires: Vec<BTreeMap<usize, String>> = vec![BTreeMap::new(); n];
    let mut trans_blocking: Vec<Option<String>> = vec![None; n];
    for (i, f) in fns.iter().enumerate() {
        let rel = &ctx.files[f.file].rel_path;
        for g in &f.guards {
            if let Some(c) = g.class {
                trans_acquires[i]
                    .entry(c)
                    .or_insert_with(|| format!("{}:{}", rel, g.line));
            }
        }
        for c in &f.calls {
            if trans_blocking[i].is_none() && is_blocking_direct(&ctx.policy, c) {
                trans_blocking[i] = Some(format!("`{}` at {}:{}", c.callee, rel, c.line));
            }
        }
    }

    // Propagate through resolved calls to a fixpoint. BTreeMap iteration
    // and first-writer-wins witnesses keep the result deterministic.
    let analysis_resolve = |callee: &str| -> Vec<usize> {
        if NO_RESOLVE.contains(&callee) || MUTATORS.contains(&callee) {
            return Vec::new();
        }
        by_name.get(callee).cloned().unwrap_or_default()
    };
    loop {
        let mut changed = false;
        for i in 0..n {
            for c in &fns[i].calls {
                for j in analysis_resolve(&c.callee) {
                    let adds: Vec<(usize, String)> = trans_acquires[j]
                        .iter()
                        .filter(|(k, _)| !trans_acquires[i].contains_key(k))
                        .map(|(k, w)| (*k, format!("{} -> {}", c.callee, w)))
                        .collect();
                    for (k, w) in adds {
                        trans_acquires[i].insert(k, w);
                        changed = true;
                    }
                    if trans_blocking[i].is_none() {
                        if let Some(w) = trans_blocking[j].clone() {
                            trans_blocking[i] = Some(format!("{} -> {}", c.callee, w));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Analysis {
        ctx,
        fns,
        by_name,
        trans_acquires,
        trans_blocking,
    }
}

/// Whether a call site directly names a declared blocking primitive.
/// `join` only counts with an empty argument list (`str::join` and
/// `Path::join` take one).
pub fn is_blocking_direct(policy: &Policy, c: &Call) -> bool {
    policy.conc_blocking_calls.iter().any(|b| b == &c.callee)
        && (c.callee != "join" || c.empty_args)
}

fn in_skips(skips: &[(usize, usize)], i: usize) -> Option<usize> {
    skips
        .iter()
        .find(|&&(s, e)| i >= s && i <= e)
        .map(|&(_, e)| e)
}

fn matching_close(toks: &[Token], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut d = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            d += 1;
        } else if t.is_punct(cc) {
            d -= 1;
            if d == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Receiver ident of a `.method` call: the ident before the dot,
/// skipping one or more balanced index expressions (`deques[victim]`).
fn receiver_before_dot(toks: &[Token], dot: usize) -> Option<(String, usize)> {
    let mut j = dot.checked_sub(1)?;
    while toks[j].is_punct(']') {
        let mut d = 0i32;
        loop {
            if toks[j].is_punct(']') {
                d += 1;
            } else if toks[j].is_punct('[') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    if matches!(toks[j].kind, TokKind::Ident) {
        Some((toks[j].text.clone(), j))
    } else {
        None
    }
}

/// Walks `a.b.c` field chains backwards to the root ident.
fn chain_root(toks: &[Token], p: usize) -> usize {
    let mut r = p;
    while r >= 2 && toks[r - 1].is_punct('.') && matches!(toks[r - 2].kind, TokKind::Ident) {
        r -= 2;
    }
    r
}

/// Walks `a::b::c` paths backwards to the root segment.
fn path_root(toks: &[Token], p: usize) -> usize {
    let mut r = p;
    while r >= 2
        && matches!(toks[r - 1].kind, TokKind::PathSep)
        && matches!(toks[r - 2].kind, TokKind::Ident)
    {
        r -= 2;
    }
    r
}

/// Result of walking a method/field chain forward from an expression.
struct ChainWalk {
    /// Last token index consumed by the chain.
    end: usize,
    /// First *called* method: `(name, open-paren index)`.
    first_method: Option<(String, usize)>,
    /// Token index of the first mutating chain method.
    mutator: Option<usize>,
    /// Number of `.segment` steps taken.
    steps: usize,
}

/// Follows `.field`, `.method(..)` and `[..]` links starting at `j` (the
/// first token after the root expression).
fn walk_chain(toks: &[Token], j0: usize) -> ChainWalk {
    let mut j = j0;
    let mut w = ChainWalk {
        end: j0.saturating_sub(1),
        first_method: None,
        mutator: None,
        steps: 0,
    };
    while j + 1 < toks.len() && toks[j].is_punct('.') && matches!(toks[j + 1].kind, TokKind::Ident)
    {
        let name = toks[j + 1].text.clone();
        let ni = j + 1;
        w.steps += 1;
        j += 2;
        if j < toks.len() && toks[j].is_punct('(') {
            if w.first_method.is_none() {
                w.first_method = Some((name.clone(), j));
            }
            if w.mutator.is_none() && MUTATORS.contains(&name.as_str()) {
                w.mutator = Some(ni);
            }
            match matching_close(toks, j, '(', ')') {
                Some(c) => j = c + 1,
                None => {
                    w.end = ni;
                    return w;
                }
            }
        }
        while j < toks.len() && toks[j].is_punct('[') {
            match matching_close(toks, j, '[', ']') {
                Some(c) => j = c + 1,
                None => {
                    w.end = j;
                    return w;
                }
            }
        }
        w.end = j - 1;
    }
    w
}

/// Whether the token at `j` starts an assignment (`=`, `+=`, …) rather
/// than a comparison (`==`) or match arm (`=>`).
fn assignment_after(toks: &[Token], j: usize) -> bool {
    let Some(t) = toks.get(j) else { return false };
    let next_is = |c: char| toks.get(j + 1).is_some_and(|t| t.is_punct(c));
    if t.is_punct('=') {
        return !next_is('=') && !next_is('>');
    }
    matches!(
        t.text.as_str(),
        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
    ) && next_is('=')
}

/// `let`-binding name for an expression whose root token is `r`, if the
/// expression is directly assigned to a plain identifier. `*`/`&`
/// prefixes (the value is copied/borrowed out, the guard is a temporary)
/// and destructuring patterns yield `None`.
fn binding_before(toks: &[Token], r: usize) -> Option<String> {
    if r == 0 {
        return None;
    }
    let prev = &toks[r - 1];
    if !prev.is_punct('=') || r < 2 {
        return None;
    }
    let b = &toks[r - 2];
    if matches!(b.kind, TokKind::Ident) && !KEYWORDS.contains(&b.text.as_str()) {
        Some(b.text.clone())
    } else {
        None
    }
}

/// Finds the terminating `;` of the statement continuing at `j`
/// (bounded by `end`); used to extend temporary-guard extents across
/// trailing assignments.
fn stmt_semi(toks: &[Token], j: usize, end: usize) -> usize {
    let mut d = 0i32;
    let mut k = j;
    while k < end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d -= 1;
            if d < 0 {
                return k;
            }
        } else if t.is_punct(';') && d == 0 {
            return k;
        }
        k += 1;
    }
    end
}

fn in_loop_at(toks: &[Token], blocks: &[usize]) -> bool {
    blocks.iter().any(|&ob| {
        for k in (ob.saturating_sub(64)..ob).rev() {
            let t = &toks[k];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                return false;
            }
            if t.is_ident("while") || t.is_ident("loop") || t.is_ident("for") {
                return true;
            }
        }
        false
    })
}

fn handling_of(toks: &[Token], w: &ChainWalk) -> Handling {
    match &w.first_method {
        Some((m, open)) if m == "unwrap_or_else" => {
            let close = matching_close(toks, *open, '(', ')').unwrap_or(*open);
            let body = &toks[*open..=close];
            let has_pe = body.iter().any(|t| t.is_ident("PoisonError"));
            let has_ii = body.iter().any(|t| t.is_ident("into_inner"));
            if has_pe && has_ii {
                Handling::RawIdiom
            } else {
                Handling::Other
            }
        }
        Some((m, _)) if m == "unwrap" || m == "expect" => Handling::Crash,
        _ => Handling::Other,
    }
}

/// Extracts one function (or spawn-closure) body. `spawn(...)` argument
/// ranges are carved out and recursed on as anonymous bodies.
#[allow(clippy::too_many_arguments)]
fn extract(
    file_idx: usize,
    file: &SourceFile,
    policy: &Policy,
    name: &str,
    line: u32,
    col: u32,
    start: usize,
    end: usize,
    skips: &[(usize, usize)],
    out: &mut Vec<FnBody>,
) {
    let toks = &file.lexed.tokens;

    let mut spawns: Vec<(usize, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        if let Some(e) = in_skips(skips, i) {
            i = e + 1;
            continue;
        }
        if toks[i].is_ident("spawn")
            && i + 1 < end
            && toks[i + 1].is_punct('(')
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            if let Some(c) = matching_close(toks, i + 1, '(', ')') {
                if c <= end {
                    spawns.push((i + 1, c));
                    i = c + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    let mut all_skips = skips.to_vec();
    all_skips.extend(spawns.iter().copied());
    out.push(extract_one(
        file_idx, file, policy, name, line, col, start, end, &all_skips,
    ));

    for &(s, e) in &spawns {
        let anon = format!("{}::<spawn@L{}>", name, toks[s].line);
        extract(
            file_idx,
            file,
            policy,
            &anon,
            toks[s].line,
            toks[s].col,
            s + 1,
            e,
            skips,
            out,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn extract_one(
    file_idx: usize,
    file: &SourceFile,
    policy: &Policy,
    name: &str,
    line: u32,
    col: u32,
    start: usize,
    end: usize,
    skips: &[(usize, usize)],
) -> FnBody {
    let toks = &file.lexed.tokens;
    let rel = &file.rel_path;
    let mut guards: Vec<Guard> = Vec::new();
    let mut calls: Vec<Call> = Vec::new();
    let mut notifies: Vec<Notify> = Vec::new();
    let mut mutations: Vec<Mutation> = Vec::new();
    let mut drops: Vec<(String, usize)> = Vec::new();
    let mut blocks: Vec<usize> = Vec::new();

    let classify = |receiver: &str| -> Option<usize> {
        policy
            .conc_lock_classes
            .iter()
            .position(|c| rel.starts_with(&c.path) && c.receiver == receiver)
    };

    // Records one acquisition: computes extent / binding / handling and
    // any mutation performed through a chain temporary.
    let record_guard = |kind: AcqKind,
                        receiver: String,
                        tok: usize,
                        root: usize,
                        chain_from: usize,
                        base_handling: Option<Handling>,
                        blocks: &[usize],
                        guards: &mut Vec<Guard>,
                        mutations: &mut Vec<Mutation>| {
        let w = walk_chain(toks, chain_from);
        let handling = base_handling.unwrap_or_else(|| handling_of(toks, &w));
        let binding = binding_before(toks, root);
        let deref = root >= 1 && (toks[root - 1].is_punct('*') || toks[root - 1].is_punct('&'));
        let block_close = blocks
            .last()
            .and_then(|&ob| ast::matching_brace(toks, ob))
            .unwrap_or(end)
            .min(end);
        let assigned = assignment_after(toks, w.end + 1);
        let dies = if binding.is_some() && !deref {
            block_close
        } else if assigned {
            stmt_semi(toks, w.end + 1, end)
        } else {
            w.end + 1
        };
        guards.push(Guard {
            kind,
            receiver,
            class: None, // filled below
            line: toks[tok].line,
            col: toks[tok].col,
            tok,
            dies,
            binding: if deref { None } else { binding },
            handling,
        });
        let gi = guards.len() - 1;
        guards[gi].class = classify(&guards[gi].receiver);
        if guards[gi].binding.is_none() {
            if let Some(mt) = w.mutator {
                mutations.push(Mutation {
                    guard: gi,
                    line: toks[mt].line,
                    col: toks[mt].col,
                    tok: mt,
                });
            } else if assigned && (w.steps >= 1 || deref) {
                let at = w.end.max(tok);
                mutations.push(Mutation {
                    guard: gi,
                    line: toks[at].line,
                    col: toks[at].col,
                    tok: at,
                });
            }
        }
    };

    let mut i = start;
    while i < end {
        if let Some(e) = in_skips(skips, i) {
            i = e + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            blocks.push(i);
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            blocks.pop();
            i += 1;
            continue;
        }
        if !matches!(t.kind, TokKind::Ident) {
            i += 1;
            continue;
        }
        let name_s = t.text.as_str();
        let next_open = i + 1 < end && toks[i + 1].is_punct('(');
        let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
        let prev_fn = i >= 1 && toks[i - 1].is_ident("fn");

        // Method acquisitions: `<recv>.lock()` / `.read()` / `.write()`.
        // Empty parens distinguish them from `io::Read::read(&mut buf)`.
        if prev_dot
            && next_open
            && matches!(name_s, "lock" | "read" | "write")
            && i + 2 < toks.len()
            && toks[i + 2].is_punct(')')
        {
            let kind = match name_s {
                "lock" => AcqKind::Lock,
                "read" => AcqKind::Read,
                _ => AcqKind::Write,
            };
            let (receiver, root) = match receiver_before_dot(toks, i - 1) {
                Some((r, p)) => (r, chain_root(toks, p)),
                None => (String::new(), i),
            };
            record_guard(
                kind,
                receiver,
                i,
                root,
                i + 3,
                None,
                &blocks,
                &mut guards,
                &mut mutations,
            );
            i += 1;
            continue;
        }

        // Helper acquisitions: `lock_unpoisoned(&shard.state)` etc.
        if !prev_fn
            && next_open
            && matches!(
                name_s,
                "lock_unpoisoned" | "read_unpoisoned" | "write_unpoisoned"
            )
        {
            if let Some(close) = matching_close(toks, i + 1, '(', ')') {
                let kind = match name_s {
                    "lock_unpoisoned" => AcqKind::Lock,
                    "read_unpoisoned" => AcqKind::Read,
                    _ => AcqKind::Write,
                };
                // Receiver: last ident at depth 0 in the argument, so
                // `&self.deques[victim]` names `deques`, not `victim`.
                let mut receiver = String::new();
                let mut d = 0i32;
                for a in &toks[i + 2..close] {
                    if a.is_punct('[') || a.is_punct('(') {
                        d += 1;
                    } else if a.is_punct(']') || a.is_punct(')') {
                        d -= 1;
                    } else if d == 0 && matches!(a.kind, TokKind::Ident) {
                        receiver = a.text.clone();
                    }
                }
                let root = path_root(toks, i);
                record_guard(
                    kind,
                    receiver,
                    i,
                    root,
                    close + 1,
                    Some(Handling::Helper),
                    &blocks,
                    &mut guards,
                    &mut mutations,
                );
                i += 1;
                continue;
            }
        }

        // Condvar wait through the shared helper:
        // `wait_unpoisoned(&self.cv, guard)`.
        if !prev_fn && next_open && name_s == "wait_unpoisoned" {
            if let Some(close) = matching_close(toks, i + 1, '(', ')') {
                let mut d = 0i32;
                let mut comma = None;
                for (k, a) in toks.iter().enumerate().take(close).skip(i + 2) {
                    if a.is_punct('(') || a.is_punct('[') {
                        d += 1;
                    } else if a.is_punct(')') || a.is_punct(']') {
                        d -= 1;
                    } else if a.is_punct(',') && d == 0 {
                        comma = Some(k);
                        break;
                    }
                }
                if let Some(cm) = comma {
                    let condvar = toks[i + 2..cm]
                        .iter()
                        .rfind(|a| matches!(a.kind, TokKind::Ident))
                        .map(|a| a.text.clone());
                    let wait_guard = toks[cm + 1..close]
                        .iter()
                        .rfind(|a| matches!(a.kind, TokKind::Ident))
                        .map(|a| a.text.clone());
                    calls.push(Call {
                        callee: name_s.to_string(),
                        line: t.line,
                        col: t.col,
                        tok: i,
                        method: false,
                        empty_args: false,
                        in_loop: in_loop_at(toks, &blocks),
                        wait_guard,
                        condvar,
                    });
                    i += 1;
                    continue;
                }
            }
        }

        // Raw condvar wait: `cv.wait(guard)` with a single-ident arg.
        if prev_dot
            && next_open
            && name_s == "wait"
            && i + 3 < toks.len()
            && matches!(toks[i + 2].kind, TokKind::Ident)
            && toks[i + 3].is_punct(')')
        {
            let condvar = receiver_before_dot(toks, i - 1).map(|(r, _)| r);
            calls.push(Call {
                callee: name_s.to_string(),
                line: t.line,
                col: t.col,
                tok: i,
                method: true,
                empty_args: false,
                in_loop: in_loop_at(toks, &blocks),
                wait_guard: Some(toks[i + 2].text.clone()),
                condvar,
            });
            i += 1;
            continue;
        }

        // Condvar notifications.
        if prev_dot && next_open && matches!(name_s, "notify_one" | "notify_all") {
            if let Some((cv, _)) = receiver_before_dot(toks, i - 1) {
                notifies.push(Notify {
                    condvar: cv,
                    tok: i,
                });
            }
            i += 1;
            continue;
        }

        // Explicit guard death: `drop(name)`.
        if !prev_dot
            && !prev_fn
            && next_open
            && name_s == "drop"
            && i + 3 < toks.len()
            && matches!(toks[i + 2].kind, TokKind::Ident)
            && toks[i + 3].is_punct(')')
        {
            drops.push((toks[i + 2].text.clone(), i));
            i += 4;
            continue;
        }

        // Everything else with parens is a generic call site.
        if next_open && !prev_fn && !KEYWORDS.contains(&name_s) {
            let empty = toks.get(i + 2).is_some_and(|a| a.is_punct(')'));
            calls.push(Call {
                callee: name_s.to_string(),
                line: t.line,
                col: t.col,
                tok: i,
                method: prev_dot,
                empty_args: empty,
                in_loop: in_loop_at(toks, &blocks),
                wait_guard: None,
                condvar: None,
            });
            i += 1;
            continue;
        }
        i += 1;
    }

    // Shorten bound-guard extents at the first explicit drop.
    for g in &mut guards {
        if let Some(b) = &g.binding {
            if let Some(&(_, dtok)) = drops.iter().find(|(n, dt)| n == b && *dt > g.tok) {
                g.dies = g.dies.min(dtok);
            }
        }
    }

    // Mutations through bound guards: `g.queue.push_back(..)`,
    // `g.field = v`, `*g = v`. A bare `g = ...` (zero chain steps) is a
    // rebinding — `g = wait_unpoisoned(&cv, g)` — not a data mutation.
    let mut bound_muts: Vec<Mutation> = Vec::new();
    for (gi, g) in guards.iter().enumerate() {
        let Some(b) = &g.binding else { continue };
        let mut k = g.tok + 1;
        while k < g.dies.min(end) {
            if let Some(e) = in_skips(skips, k) {
                k = e + 1;
                continue;
            }
            let t = &toks[k];
            let is_root = matches!(t.kind, TokKind::Ident)
                && t.text == *b
                && !(k >= 1
                    && (toks[k - 1].is_punct('.') || matches!(toks[k - 1].kind, TokKind::PathSep)));
            if !is_root {
                k += 1;
                continue;
            }
            if k >= 1 && toks[k - 1].is_punct('*') && assignment_after(toks, k + 1) {
                bound_muts.push(Mutation {
                    guard: gi,
                    line: t.line,
                    col: t.col,
                    tok: k,
                });
                k += 1;
                continue;
            }
            let w = walk_chain(toks, k + 1);
            if let Some(mt) = w.mutator {
                bound_muts.push(Mutation {
                    guard: gi,
                    line: toks[mt].line,
                    col: toks[mt].col,
                    tok: mt,
                });
            } else if w.steps >= 1 && assignment_after(toks, w.end + 1) {
                bound_muts.push(Mutation {
                    guard: gi,
                    line: toks[w.end].line,
                    col: toks[w.end].col,
                    tok: w.end,
                });
            }
            k = w.end.max(k) + 1;
        }
    }
    mutations.extend(bound_muts);
    mutations.sort_by_key(|m| m.tok);

    FnBody {
        file: file_idx,
        name: name.to_string(),
        line,
        col,
        guards,
        calls,
        mutations,
        notifies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondvarPairDecl, LockClassDecl};

    fn policy() -> Policy {
        Policy {
            conc_paths: vec!["src/".to_string()],
            conc_lock_classes: vec![
                LockClassDecl {
                    name: "state".to_string(),
                    path: "src/a.rs".to_string(),
                    receiver: "state".to_string(),
                },
                LockClassDecl {
                    name: "registry".to_string(),
                    path: "src/a.rs".to_string(),
                    receiver: "workers".to_string(),
                },
            ],
            conc_blocking_calls: vec!["join".to_string(), "sleep".to_string()],
            conc_condvar_pairs: vec![CondvarPairDecl {
                path: "src/a.rs".to_string(),
                mutex_receiver: "state".to_string(),
                condvar: "ready".to_string(),
            }],
            conc_helper_file: "src/sync.rs".to_string(),
            ..Policy::default()
        }
    }

    fn ctx(src: &str) -> Context {
        Context::from_parts(
            policy(),
            vec![SourceFile::from_source("src/a.rs", src)],
            vec![],
        )
    }

    fn one_fn(a: &Analysis<'_>, name: &str) -> usize {
        a.by_name.get(name).map(|v| v[0]).unwrap_or_else(|| {
            panic!(
                "no fn {name:?}; have {:?}",
                a.by_name.keys().collect::<Vec<_>>()
            )
        })
    }

    #[test]
    fn bound_guard_lives_to_block_end_and_classifies() {
        let src = "fn f(s: &S) {\n    let mut st = s.state.lock().unwrap();\n    st.queue.push_back(1);\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        assert_eq!(f.guards.len(), 1);
        let g = &f.guards[0];
        assert_eq!(g.receiver, "state");
        assert_eq!(g.class, Some(0));
        assert_eq!(g.binding.as_deref(), Some("st"));
        assert_eq!(g.handling, Handling::Crash);
        // The push_back is a mutation through the live guard.
        assert_eq!(f.mutations.len(), 1);
        assert!(g.live_at(f.mutations[0].tok));
    }

    #[test]
    fn helper_guard_is_helper_handled_and_drop_shortens() {
        let src = "fn f(s: &S) {\n    let st = lock_unpoisoned(&s.state);\n    drop(st);\n    s.other.join();\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        assert_eq!(f.guards[0].handling, Handling::Helper);
        let join = f.calls.iter().find(|c| c.callee == "join").unwrap();
        assert!(
            !f.guards[0].live_at(join.tok),
            "drop(st) must end the guard before the join"
        );
    }

    #[test]
    fn chain_temporary_dies_at_chain_end_but_covers_its_mutator() {
        let src = "fn f(s: &S) {\n    lock_unpoisoned(&s.state).queue.push_back(1);\n    s.h.join();\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        let g = &f.guards[0];
        assert!(g.binding.is_none());
        assert_eq!(f.mutations.len(), 1);
        let join = f.calls.iter().find(|c| c.callee == "join").unwrap();
        assert!(!g.live_at(join.tok), "temporary must not reach the join");
    }

    #[test]
    fn deref_assignment_is_a_mutation_not_a_binding() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock().unwrap_or_else(PoisonError::into_inner);\n    *g = 5;\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        assert_eq!(f.guards[0].handling, Handling::RawIdiom);
        assert_eq!(f.mutations.len(), 1);
    }

    #[test]
    fn rebinding_from_wait_is_not_a_mutation_and_wait_is_in_loop() {
        let src = "fn f(s: &S) {\n    let mut st = lock_unpoisoned(&s.state);\n    while st.queue_empty() {\n        st = wait_unpoisoned(&s.ready, st);\n    }\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        assert!(f.mutations.is_empty(), "{:?}", f.mutations);
        let w = f
            .calls
            .iter()
            .find(|c| c.callee == "wait_unpoisoned")
            .unwrap();
        assert!(w.in_loop);
        assert_eq!(w.wait_guard.as_deref(), Some("st"));
        assert_eq!(w.condvar.as_deref(), Some("ready"));
    }

    #[test]
    fn spawn_closure_effects_do_not_nest_under_spawner_guards() {
        let src = "fn f(s: &S) {\n    let mut ws = s.workers.lock().unwrap();\n    ws.push(spawn(move || {\n        s.other.join();\n    }));\n}\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = &a.fns[one_fn(&a, "f")];
        assert!(
            !f.calls.iter().any(|c| c.callee == "join"),
            "join belongs to the spawned closure"
        );
        let anon = a
            .fns
            .iter()
            .find(|b| b.name.contains("<spawn@"))
            .expect("anonymous spawn body");
        assert!(anon.calls.iter().any(|c| c.callee == "join"));
    }

    #[test]
    fn call_graph_propagates_acquisitions_and_blocking() {
        let src = "fn leaf(s: &S) {\n    let _g = lock_unpoisoned(&s.state);\n    sleep(d);\n}\nfn mid(s: &S) { leaf(s); }\nfn top(s: &S) { mid(s); }\n";
        let c = ctx(src);
        let a = analyze(&c);
        let top = one_fn(&a, "top");
        assert!(a.trans_acquires[top].contains_key(&0));
        let w = a.trans_acquires[top].get(&0).unwrap();
        assert!(w.starts_with("mid -> leaf -> "), "witness chain: {w}");
        assert!(a.trans_blocking[top].is_some());
    }

    #[test]
    fn prelude_collision_names_are_never_resolved() {
        let src = "fn clear(s: &S) {\n    let _g = lock_unpoisoned(&s.state);\n}\nfn f(g: &G) { g.clear(); }\n";
        let c = ctx(src);
        let a = analyze(&c);
        let f = one_fn(&a, "f");
        assert!(
            a.trans_acquires[f].is_empty(),
            "`.clear()` must not resolve to the workspace fn"
        );
    }
}
