//! blocking-under-lock: no declared blocking primitive may run while a
//! lock guard is live, except a condvar wait on the guard it consumes.

use super::{analyze, is_blocking_direct};
use crate::diag::Finding;
use crate::workspace::Context;

/// `--explain blocking-under-lock` rationale.
pub const EXPLAIN: &str = "\
A guard held across a blocking call turns one slow peer into a stalled
lock and every other thread touching that lock into collateral damage —
the exact shape of the TcpServer::shutdown bug where joining the accept
thread under the registry lock wedged concurrent shutdown callers. The
pass tracks lexical guard lifetimes and flags any live guard at a call to
a declared blocking primitive ([concurrency] blocking_calls in
lint.toml): condvar waits, joins (empty-arg only — str::join is not
blocking), sleeps, channel send/recv and the TCP frame layer. A condvar
wait is exempt for the one guard it consumes (that is how condvars work)
but still flagged for any *other* live guard. Calls that reach a blocking
primitive transitively through resolvable workspace functions are flagged
too, with the full witness chain. `[concurrency] blocking_allow`
holds reviewed \"file-prefix fn-name\" exemptions; it is empty today and
should stay that way.";

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let a = analyze(ctx);
    let mut out = Vec::new();
    for f in &a.fns {
        let rel = a.rel(f);
        if super::allowed(&ctx.policy.conc_blocking_allow, rel, &f.name) {
            continue;
        }
        let file = &a.ctx.files[f.file];
        for c in &f.calls {
            let direct = is_blocking_direct(&ctx.policy, c);
            // Transitive: a resolvable callee that may reach a blocking
            // primitive. Direct matches take precedence (better message).
            let trans = if direct {
                None
            } else {
                a.resolve(&c.callee)
                    .iter()
                    .find_map(|&j| a.trans_blocking[j].clone())
            };
            if !direct && trans.is_none() {
                continue;
            }
            for g in &f.guards {
                if !g.live_at(c.tok) {
                    continue;
                }
                // A condvar wait blocks *by releasing* the guard it
                // consumes; only other guards are held across it.
                if let (Some(wg), Some(b)) = (&c.wait_guard, &g.binding) {
                    if wg == b {
                        continue;
                    }
                }
                let held = match g.class {
                    Some(ci) => format!("`{}`", ctx.policy.conc_lock_classes[ci].name),
                    None => format!("guard of `{}`", g.receiver),
                };
                let message = match &trans {
                    None => format!(
                        "blocking call `{}` while {} (acquired at line {}) is held",
                        c.callee, held, g.line
                    ),
                    Some(w) => format!(
                        "call `{}` may block ({}) while {} (acquired at line {}) is held",
                        c.callee, w, held, g.line
                    ),
                };
                out.push(Finding {
                    file: rel.to_string(),
                    line: c.line,
                    col: c.col,
                    pass: "blocking-under-lock",
                    snippet: file.line_text(c.line).trim().to_string(),
                    message,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LockClassDecl, Policy};
    use crate::workspace::SourceFile;

    fn policy() -> Policy {
        Policy {
            conc_paths: vec!["src/".to_string()],
            conc_lock_classes: vec![LockClassDecl {
                name: "registry".to_string(),
                path: "src/a.rs".to_string(),
                receiver: "threads".to_string(),
            }],
            conc_blocking_calls: vec![
                "join".to_string(),
                "sleep".to_string(),
                "wait_unpoisoned".to_string(),
            ],
            ..Policy::default()
        }
    }

    fn ctx(src: &str) -> Context {
        Context::from_parts(
            policy(),
            vec![SourceFile::from_source("src/a.rs", src)],
            vec![],
        )
    }

    #[test]
    fn join_under_live_guard_is_flagged() {
        let src = "\
fn shutdown(s: &S) {
    let mut g = lock_unpoisoned(&s.threads);
    if let Some(h) = g.take() {
        let _ = h.join();
    }
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!((f[0].line, f[0].col), (4, 19));
        assert!(f[0].message.contains("`registry`"), "{}", f[0].message);
    }

    #[test]
    fn join_after_scoped_take_is_clean() {
        let src = "\
fn shutdown(s: &S) {
    let handle = {
        let mut g = lock_unpoisoned(&s.threads);
        g.take()
    };
    if let Some(h) = handle {
        let _ = h.join();
    }
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn str_join_with_args_is_not_blocking() {
        let src = "\
fn render(s: &S) {
    let _g = lock_unpoisoned(&s.threads);
    let _x = parts.join(sep);
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn wait_is_exempt_for_its_own_guard_only() {
        let src = "\
fn nested(s: &S) {
    let outer = lock_unpoisoned(&s.threads);
    let mut st = lock_unpoisoned(&s.other);
    while st.pending() {
        st = wait_unpoisoned(&s.cv, st);
    }
    drop(outer);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("`registry`"), "{}", f[0].message);
    }

    #[test]
    fn transitive_blocking_is_reported_with_witness_chain() {
        let src = "\
fn backoff(s: &S) {
    sleep(s.backoff);
}
fn pump(s: &S) {
    let _g = lock_unpoisoned(&s.threads);
    backoff(s);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("may block"), "{}", f[0].message);
        assert!(
            f[0].message.contains("`sleep` at src/a.rs:2"),
            "{}",
            f[0].message
        );
    }
}
