//! condvar-discipline: waits sit in predicate loops; mutations under a
//! paired mutex are followed by a notify.

use super::{analyze, base_name};
use crate::diag::Finding;
use crate::workspace::Context;

/// `--explain condvar-discipline` rationale.
pub const EXPLAIN: &str = "\
Condvars fail quietly: a wait outside a predicate loop returns on
spurious wakeups with the predicate still false, and a state change that
forgets to notify leaves waiters asleep forever — both produce rare
wedges, not crashes. The pass enforces the two halves of the discipline
over the pairings declared in lint.toml ([concurrency] condvar_pairs):
(1) every condvar wait (`cv.wait(guard)` or `wait_unpoisoned(&cv, g)`)
must be lexically inside a `while`/`loop` body, and (2) in a file with a
declared mutex/condvar pair, every mutation observed under the paired
mutex's guard must be followed (same function, later in the text) by a
notify on the paired condvar. Functions that themselves wait on the pair
are exempt from (2) — a consumer draining state cannot make the
predicate it waits on true — as are the reviewed \"file-prefix fn-name\"
entries in `condvar_allow` (pure removals: a sweep or purge can never
wake a waiter usefully).";

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let a = analyze(ctx);
    let mut out = Vec::new();

    // (1) Every wait sits in a predicate loop. The shared helper file is
    // exempt: `wait_unpoisoned` wraps the raw wait exactly once, and its
    // *callers* are the wait sites this rule checks.
    let helper_file = &ctx.policy.conc_helper_file;
    for f in &a.fns {
        let rel = a.rel(f);
        if !helper_file.is_empty() && rel.starts_with(helper_file.as_str()) {
            continue;
        }
        let file = &a.ctx.files[f.file];
        for c in &f.calls {
            if c.wait_guard.is_some() && !c.in_loop {
                out.push(Finding {
                    file: rel.to_string(),
                    line: c.line,
                    col: c.col,
                    pass: "condvar-discipline",
                    snippet: file.line_text(c.line).trim().to_string(),
                    message: format!(
                        "condvar wait on `{}` outside a predicate loop: spurious \
                         wakeups return with the predicate still false",
                        c.condvar.as_deref().unwrap_or("<condvar>")
                    ),
                });
            }
        }
    }

    // (2) Mutations under a paired mutex notify the paired condvar.
    for pair in &ctx.policy.conc_condvar_pairs {
        for f in &a.fns {
            let rel = a.rel(f);
            if !rel.starts_with(&pair.path) {
                continue;
            }
            if super::allowed(&ctx.policy.conc_condvar_allow, rel, &f.name) {
                continue;
            }
            // Waiters on this pair consume state; they cannot make the
            // predicate true and are not required to notify.
            let is_waiter = f.calls.iter().any(|c| {
                c.wait_guard.is_some() && c.condvar.as_deref() == Some(pair.condvar.as_str())
            });
            if is_waiter {
                continue;
            }
            let file = &a.ctx.files[f.file];
            for m in &f.mutations {
                if f.guards[m.guard].receiver != pair.mutex_receiver {
                    continue;
                }
                let notified = f
                    .notifies
                    .iter()
                    .any(|n| n.condvar == pair.condvar && n.tok > m.tok);
                if !notified {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: m.line,
                        col: m.col,
                        pass: "condvar-discipline",
                        snippet: file.line_text(m.line).trim().to_string(),
                        message: format!(
                            "state mutated under `{}` (paired with condvar `{}`) in \
                             `{}` without a later notify: waiters can sleep through \
                             this change forever",
                            pair.mutex_receiver,
                            pair.condvar,
                            base_name(&f.name)
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CondvarPairDecl, Policy};
    use crate::workspace::SourceFile;

    fn ctx(src: &str) -> Context {
        let policy = Policy {
            conc_paths: vec!["src/".to_string()],
            conc_condvar_pairs: vec![CondvarPairDecl {
                path: "src/a.rs".to_string(),
                mutex_receiver: "state".to_string(),
                condvar: "ready".to_string(),
            }],
            conc_condvar_allow: vec![("src/a.rs".to_string(), "sweep".to_string())],
            ..Policy::default()
        };
        Context::from_parts(
            policy,
            vec![SourceFile::from_source("src/a.rs", src)],
            vec![],
        )
    }

    #[test]
    fn wait_outside_loop_is_flagged() {
        let src = "\
fn take(s: &S) {
    let mut st = lock_unpoisoned(&s.state);
    st = wait_unpoisoned(&s.ready, st);
    st.queue.pop_front()
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("outside a predicate loop"));
    }

    #[test]
    fn wait_in_loop_is_clean_and_waiter_need_not_notify() {
        let src = "\
fn take(s: &S) {
    let mut st = lock_unpoisoned(&s.state);
    loop {
        if st.has_items() {
            return st.queue.pop_front();
        }
        st = wait_unpoisoned(&s.ready, st);
    }
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn mutation_without_notify_is_flagged() {
        let src = "\
fn put(s: &S, x: u32) {
    let mut st = lock_unpoisoned(&s.state);
    st.queue.push_back(x);
}
";
        let f = run(&ctx(src));
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(
            f[0].message.contains("without a later notify"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn mutation_with_notify_after_drop_is_clean() {
        let src = "\
fn put(s: &S, x: u32) {
    let mut st = lock_unpoisoned(&s.state);
    st.queue.push_back(x);
    drop(st);
    s.ready.notify_one();
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn allowlisted_pure_removal_is_clean() {
        let src = "\
fn sweep(s: &S) {
    let mut st = lock_unpoisoned(&s.state);
    st.queue.clear();
}
";
        assert!(run(&ctx(src)).is_empty());
    }

    #[test]
    fn unpaired_mutex_mutations_are_ignored() {
        let src = "\
fn other(s: &S) {
    let mut st = lock_unpoisoned(&s.misc);
    st.queue.push_back(1);
}
";
        assert!(run(&ctx(src)).is_empty());
    }
}
