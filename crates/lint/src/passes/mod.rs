//! The pass registry: nine named passes, each a pure function from
//! [`Context`] to findings.

use crate::diag::Finding;
use crate::workspace::Context;

pub mod concurrency;
pub mod determinism;
pub mod hermeticity;
pub mod oracle;
pub mod panic_policy;
pub mod unsafe_audit;

/// One registered pass.
pub struct PassInfo {
    /// Stable pass name (used in findings, baselines and `--explain`).
    pub name: &'static str,
    /// One-line summary for `--list-passes`.
    pub summary: &'static str,
    /// Long-form rationale for `--explain <pass>`.
    pub explain: &'static str,
    /// The pass body.
    pub run: fn(&Context) -> Vec<Finding>,
}

/// All passes, in the order they run and report.
pub fn registry() -> Vec<PassInfo> {
    vec![
        PassInfo {
            name: "oracle-isolation",
            summary: "predictor crates must not reach into the simulator's hidden timing model",
            explain: oracle::EXPLAIN,
            run: oracle::run,
        },
        PassInfo {
            name: "determinism",
            summary: "no wall-clock reads or unordered maps in output-producing code",
            explain: determinism::EXPLAIN,
            run: determinism::run,
        },
        PassInfo {
            name: "panic-policy",
            summary: "resilience-critical crates deny unwrap/expect; hot paths avoid panics",
            explain: panic_policy::EXPLAIN,
            run: panic_policy::run,
        },
        PassInfo {
            name: "hermeticity",
            summary: "every dependency is a workspace crate; no registry/git deps anywhere",
            explain: hermeticity::EXPLAIN,
            run: hermeticity::run,
        },
        PassInfo {
            name: "unsafe-audit",
            summary: "every `unsafe` needs an adjacent `// SAFETY:` justification",
            explain: unsafe_audit::EXPLAIN,
            run: unsafe_audit::run,
        },
        PassInfo {
            name: "lock-order",
            summary: "declared lock classes form an acyclic global acquisition order",
            explain: concurrency::lock_order::EXPLAIN,
            run: concurrency::lock_order::run,
        },
        PassInfo {
            name: "blocking-under-lock",
            summary: "no blocking primitive runs while a lock guard is held",
            explain: concurrency::blocking::EXPLAIN,
            run: concurrency::blocking::run,
        },
        PassInfo {
            name: "condvar-discipline",
            summary: "waits sit in predicate loops; mutations under a paired mutex notify",
            explain: concurrency::condvar::EXPLAIN,
            run: concurrency::condvar::run,
        },
        PassInfo {
            name: "poison-policy",
            summary: "every lock acquisition goes through the shared *_unpoisoned helpers",
            explain: concurrency::poison::EXPLAIN,
            run: concurrency::poison::run,
        },
    ]
}

/// Runs every pass and returns all findings sorted by (file, line, col).
pub fn run_all(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    for pass in registry() {
        out.extend((pass.run)(ctx));
    }
    out.sort();
    out.dedup();
    out
}
