//! The pass registry: five named passes, each a pure function from
//! [`Context`] to findings.

use crate::diag::Finding;
use crate::workspace::Context;

pub mod determinism;
pub mod hermeticity;
pub mod oracle;
pub mod panic_policy;
pub mod unsafe_audit;

/// One registered pass.
pub struct PassInfo {
    /// Stable pass name (used in findings, baselines and `--explain`).
    pub name: &'static str,
    /// One-line summary for `--list-passes`.
    pub summary: &'static str,
    /// Long-form rationale for `--explain <pass>`.
    pub explain: &'static str,
    /// The pass body.
    pub run: fn(&Context) -> Vec<Finding>,
}

/// All passes, in the order they run and report.
pub fn registry() -> Vec<PassInfo> {
    vec![
        PassInfo {
            name: "oracle-isolation",
            summary: "predictor crates must not reach into the simulator's hidden timing model",
            explain: oracle::EXPLAIN,
            run: oracle::run,
        },
        PassInfo {
            name: "determinism",
            summary: "no wall-clock reads or unordered maps in output-producing code",
            explain: determinism::EXPLAIN,
            run: determinism::run,
        },
        PassInfo {
            name: "panic-policy",
            summary: "resilience-critical crates deny unwrap/expect; hot paths avoid panics",
            explain: panic_policy::EXPLAIN,
            run: panic_policy::run,
        },
        PassInfo {
            name: "hermeticity",
            summary: "every dependency is a workspace crate; no registry/git deps anywhere",
            explain: hermeticity::EXPLAIN,
            run: hermeticity::run,
        },
        PassInfo {
            name: "unsafe-audit",
            summary: "every `unsafe` needs an adjacent `// SAFETY:` justification",
            explain: unsafe_audit::EXPLAIN,
            run: unsafe_audit::run,
        },
    ]
}

/// Runs every pass and returns all findings sorted by (file, line, col).
pub fn run_all(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    for pass in registry() {
        out.extend((pass.run)(ctx));
    }
    out.sort();
    out.dedup();
    out
}
