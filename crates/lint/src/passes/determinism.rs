//! Pass `determinism`: no hidden wall-clock or iteration-order
//! dependence in code that produces results.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::workspace::{path_in, Context, SourceFile};

/// `--explain determinism` text.
pub const EXPLAIN: &str = "\
Every dataset row, prediction and report in this workspace must be
byte-reproducible from a seed: that is what lets the conformance suite
pin the paper-reproduction numbers. Three things quietly break that:

  * `Instant::now()` / `SystemTime` reads — wall-clock values leak into
    results (e.g. straggler detection deciding to drop a sample). All
    clock reads must go through the injectable `Clock` trait; only the
    whitelisted clock modules may touch the real timers.
  * `HashMap` / `HashSet` in output-producing modules — iteration order
    is randomized per process, so any output assembled by iterating one
    is nondeterministic. Use `BTreeMap`/`BTreeSet`.
  * `partial_cmp(..).unwrap()` — panics on NaN and invites ad-hoc sort
    orders; `f64::total_cmp` is total, deterministic and NaN-safe.

Test code is skipped: tests may time themselves freely.";

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    let p = &ctx.policy;
    for f in &ctx.files {
        let clock_ok = path_in(&f.rel_path, &p.determinism_clock_paths);
        let output_module = path_in(&f.rel_path, &p.determinism_output_paths);
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || f.is_test_line(t.line) {
                continue;
            }
            if !clock_ok && (t.text == "SystemTime" || is_instant_now(toks, i)) {
                out.push(finding(
                    f,
                    t.line,
                    t.col,
                    format!(
                        "wall-clock read (`{}`) outside a whitelisted clock \
                         module; route through the `Clock` trait instead",
                        if t.text == "SystemTime" {
                            "SystemTime"
                        } else {
                            "Instant::now"
                        }
                    ),
                ));
            }
            if output_module && (t.text == "HashMap" || t.text == "HashSet") {
                out.push(finding(
                    f,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in an output-producing module: iteration order \
                         is per-process random; use `BTree{}`",
                        t.text,
                        &t.text[4..]
                    ),
                ));
            }
            if t.text == "partial_cmp" && unwrap_follows(toks, i) {
                out.push(finding(
                    f,
                    t.line,
                    t.col,
                    "`partial_cmp(..).unwrap()` panics on NaN; use \
                     `f64::total_cmp`"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// `Instant` followed by `::` `now` — the actual clock read. A bare
/// `Instant` mention (e.g. in a type position inside the clock trait's
/// impl) is not itself nondeterministic.
fn is_instant_now(toks: &[crate::lexer::Token], i: usize) -> bool {
    toks[i].text == "Instant"
        && i + 2 < toks.len()
        && toks[i + 1].kind == TokKind::PathSep
        && toks[i + 2].is_ident("now")
}

/// Looks ahead for `.unwrap(` within the next few tokens after a
/// `partial_cmp` call: matches the `a.partial_cmp(b).unwrap()` shape
/// (closure bodies in sort_by are the common site).
fn unwrap_follows(toks: &[crate::lexer::Token], i: usize) -> bool {
    // Skip the call's argument list: expect `(` ... matching `)`.
    let mut j = i + 1;
    if j >= toks.len() || !toks[j].is_punct('(') {
        return false;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    // Now expect `. unwrap` (or `. expect`).
    j + 2 < toks.len()
        && toks[j + 1].is_punct('.')
        && (toks[j + 2].is_ident("unwrap") || toks[j + 2].is_ident("expect"))
}

fn finding(f: &SourceFile, line: u32, col: u32, message: String) -> Finding {
    Finding {
        file: f.rel_path.clone(),
        line,
        col,
        pass: "determinism",
        snippet: f.line_text(line),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::SourceFile;

    fn ctx(files: Vec<SourceFile>) -> Context {
        let policy = Policy {
            oracle_crate: "x".into(),
            oracle_private_modules: vec!["y".into()],
            determinism_clock_paths: vec!["crates/scheduler/src/retry.rs".into()],
            determinism_output_paths: vec!["crates/core/src/".into()],
            ..Policy::default()
        };
        Context::from_parts(policy, files, vec![])
    }

    #[test]
    fn instant_now_outside_clock_module_is_flagged() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/dataset/src/collect.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        )]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Instant::now"));
    }

    #[test]
    fn clock_module_is_whitelisted() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/scheduler/src/retry.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        )]);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn hashmap_in_output_module_is_flagged_but_not_elsewhere() {
        let bad = ctx(vec![SourceFile::from_source(
            "crates/core/src/agg.rs",
            "use std::collections::HashMap;\n",
        )]);
        assert_eq!(run(&bad).len(), 1);
        let ok = ctx(vec![SourceFile::from_source(
            "crates/scheduler/src/pool.rs",
            "use std::collections::HashMap;\n",
        )]);
        assert!(run(&ok).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_total_cmp_is_not() {
        let bad = ctx(vec![SourceFile::from_source(
            "crates/core/src/sortit.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        )]);
        let f = run(&bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("total_cmp"));
        let ok = ctx(vec![SourceFile::from_source(
            "crates/core/src/sortit.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n",
        )]);
        assert!(run(&ok).is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/agg.rs",
            "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t() { \
             let _ = Instant::now(); }\n}\n",
        )]);
        assert!(run(&c).is_empty());
    }
}
