//! Pass `panic-policy`: resilience-critical code must not crash.

use crate::ast;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::workspace::{path_in, Context, SourceFile};

/// `--explain panic-policy` text.
pub const EXPLAIN: &str = "\
The collection pipeline is built to survive injected faults (hangs,
transient errors, corrupt traces) and degrade gracefully; a single stray
`unwrap()` turns a recoverable fault into a dead worker and a lost grid.
Two layers of defence, both checked here:

  * resilience-critical crates must carry
    `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`
    in their lib.rs — clippy then makes unwrap/expect a compile error.
    This pass verifies the attribute *structurally* (it must parse as an
    inner attribute with both lints), not by grepping for a substring.
  * hot-path files (worker pool, retry loop, collection inner loop) are
    additionally screened for bare `panic!` / `unreachable!` / `todo!` /
    `unimplemented!` and for slice indexing `x[i]`, which panics on
    out-of-bounds. Justified cases carry a baseline entry with a note.

Test code is exempt: asserting and indexing in tests is fine.";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    check_deny_attrs(ctx, &mut out);
    for f in &ctx.files {
        if path_in(&f.rel_path, &ctx.policy.panic_hot_paths) {
            check_hot_path(f, &mut out);
        }
    }
    out
}

/// Each deny-listed crate's lib.rs must carry the deny attribute.
fn check_deny_attrs(ctx: &Context, out: &mut Vec<Finding>) {
    for krate in &ctx.policy.panic_deny_crates {
        let lib = format!("{}/src/lib.rs", krate.trim_end_matches('/'));
        let Some(f) = ctx.files.iter().find(|f| f.rel_path == lib) else {
            out.push(Finding {
                file: lib.clone(),
                line: 1,
                col: 1,
                pass: "panic-policy",
                snippet: String::new(),
                message: format!(
                    "deny-listed crate `{krate}` has no lib.rs to carry the attribute"
                ),
            });
            continue;
        };
        let ok = ast::attributes(&f.lexed).iter().any(|a| {
            a.inner
                && a.contains("deny")
                && a.contains("clippy::unwrap_used")
                && a.contains("clippy::expect_used")
        });
        if !ok {
            out.push(Finding {
                file: f.rel_path.clone(),
                line: 1,
                col: 1,
                pass: "panic-policy",
                snippet: "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]"
                    .to_string(),
                message: format!(
                    "resilience-critical crate `{krate}` is missing the inner \
                     deny(clippy::unwrap_used, clippy::expect_used) attribute"
                ),
            });
        }
    }
}

/// Bare panic-family macros and slice indexing in hot-path files.
fn check_hot_path(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.is_test_line(t.line) {
            continue;
        }
        // `panic!(` / `unreachable!(` etc.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
        {
            out.push(finding(
                f,
                t.line,
                t.col,
                format!(
                    "`{}!` in a resilience hot path: faults here must be \
                     returned as errors, not crash the worker",
                    t.text
                ),
            ));
        }
        // Indexing: `[` whose previous token ends an expression
        // (identifier, `)`, or `]`). Array literals (`= [..]`), attribute
        // brackets (`#[..]`) and types (`<[..]`) have non-expression
        // predecessors and are not matched.
        if t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let is_expr_end = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(')')
                || prev.is_punct(']');
            if is_expr_end {
                out.push(finding(
                    f,
                    t.line,
                    t.col,
                    format!(
                        "slice indexing `{}[..]` can panic on out-of-bounds; \
                         prefer `.get(..)` or add a baseline note proving the \
                         bound",
                        prev.text
                    ),
                ));
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [a, b]`, `let [x, y] = ..` patterns,
/// `in [1, 2]`).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "in"
            | "if"
            | "else"
            | "match"
            | "break"
            | "as"
            | "mut"
            | "const"
            | "static"
            | "let"
            | "ref"
    )
}

fn finding(f: &SourceFile, line: u32, col: u32, message: String) -> Finding {
    Finding {
        file: f.rel_path.clone(),
        line,
        col,
        pass: "panic-policy",
        snippet: f.line_text(line),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::SourceFile;

    fn ctx(files: Vec<SourceFile>, deny: Vec<String>, hot: Vec<String>) -> Context {
        let policy = Policy {
            oracle_crate: "x".into(),
            oracle_private_modules: vec!["y".into()],
            panic_deny_crates: deny,
            panic_hot_paths: hot,
            ..Policy::default()
        };
        Context::from_parts(policy, files, vec![])
    }

    const GOOD_LIB: &str =
        "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";

    #[test]
    fn present_deny_attr_passes_structurally() {
        let c = ctx(
            vec![SourceFile::from_source("crates/core/src/lib.rs", GOOD_LIB)],
            vec!["crates/core".into()],
            vec![],
        );
        assert!(run(&c).is_empty());
    }

    #[test]
    fn missing_or_partial_deny_attr_is_flagged() {
        // A comment mentioning the attribute must NOT satisfy the check —
        // that is what "structural, not grep" means.
        let src = "// #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n\
                   #![deny(clippy::unwrap_used)]\npub fn f() {}\n";
        let c = ctx(
            vec![SourceFile::from_source("crates/core/src/lib.rs", src)],
            vec!["crates/core".into()],
            vec![],
        );
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect_used") || f[0].message.contains("deny"));
    }

    #[test]
    fn hot_path_panics_and_indexing_are_flagged() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    if i > v.len() { \
                   unreachable!(\"bad\") }\n    v[i]\n}\n";
        let c = ctx(
            vec![SourceFile::from_source("crates/scheduler/src/pool.rs", src)],
            vec![],
            vec!["crates/scheduler/src/pool.rs".into()],
        );
        let f = run(&c);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.message.contains("unreachable")));
        assert!(f.iter().any(|x| x.message.contains("indexing")));
    }

    #[test]
    fn array_literals_attrs_and_tests_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u32; 2] { [1, 2] }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(v: &[u32]) -> u32 { v[0] }\n}\n";
        let c = ctx(
            vec![SourceFile::from_source("crates/scheduler/src/pool.rs", src)],
            vec![],
            vec!["crates/scheduler/src/pool.rs".into()],
        );
        assert!(run(&c).is_empty());
    }
}
