//! Pass `hermeticity`: the workspace must build from this repository
//! alone — no registry, git or path-external dependencies.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::workspace::{Context, Manifest, SourceFile};

/// `--explain hermeticity` text.
pub const EXPLAIN: &str = "\
The repository's reproducibility story starts at the build: `cargo build
--offline` from a clean checkout must succeed with nothing but the
in-tree crates and the standard library. A registry dependency would pin
results to whatever version resolution happens to pick; a git dependency
adds a network fetch and a moving target.

Two layers are checked, and both must agree:

  * every `[dependencies]`/`[dev-dependencies]`/`[build-dependencies]`
    entry in every Cargo.toml must name a workspace member crate and be a
    `path`/`workspace = true` spec — a bare version string is a registry
    pull even if a same-named crate exists in-tree;
  * every `extern crate` and every `use` first-segment in every source
    file must resolve to std/core/alloc, a keyword root
    (crate/self/super), or a workspace crate.

This pass replaces the old ci.sh grep: it understands TOML sections and
tokenized sources, so a dependency hidden in `[target.'cfg(..)'.deps]` or
an extern behind a cfg cannot slip through on formatting tricks.";

/// Crate roots always allowed in source paths.
const BUILTIN_ROOTS: [&str; 7] = ["std", "core", "alloc", "crate", "self", "super", "test"];

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in &ctx.manifests {
        check_manifest(m, ctx, &mut out);
    }
    for f in &ctx.files {
        check_source(f, ctx, &mut out);
    }
    out
}

/// Whether `name` (dash or underscore form) is a workspace crate or an
/// explicitly allowed extern.
fn allowed_crate(ctx: &Context, name: &str) -> bool {
    let ident = name.replace('-', "_");
    BUILTIN_ROOTS.contains(&ident.as_str())
        || ident == "proc_macro"
        || ctx.crate_idents.contains(&ident)
        || ctx
            .policy
            .hermeticity_allowed_externs
            .iter()
            .any(|a| a.replace('-', "_") == ident)
}

fn check_manifest(m: &Manifest, ctx: &Context, out: &mut Vec<Finding>) {
    let mut section = String::new();
    for (n, raw) in m.src.lines().enumerate() {
        let lineno = (n + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(sec) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = sec.trim().to_string();
            // `[dependencies.foo]` header form declares a dep directly.
            if let Some(dep) = dep_name_from_section_header(&section) {
                check_dep(m, ctx, lineno, &dep, "", out);
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        let dep = key.trim().trim_matches('"').to_string();
        check_dep(m, ctx, lineno, &dep, val.trim(), out);
    }
}

/// `dependencies`, `dev-dependencies`, `build-dependencies`,
/// `workspace.dependencies`, `target.'cfg(..)'.dependencies`.
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with("dev-dependencies")
        || section.ends_with("build-dependencies")
        || section == "dev-dependencies"
        || section == "build-dependencies"
}

/// For `[dependencies.foo]`-style headers, the declared dep name.
fn dep_name_from_section_header(section: &str) -> Option<String> {
    for kind in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(kind) {
            return Some(rest.trim().to_string());
        }
        if let Some(i) = section.find(&format!(".{kind}")) {
            return Some(section[i + 1 + kind.len()..].trim().to_string());
        }
    }
    None
}

fn check_dep(
    m: &Manifest,
    ctx: &Context,
    lineno: u32,
    dep: &str,
    val: &str,
    out: &mut Vec<Finding>,
) {
    if !allowed_crate(ctx, dep) {
        out.push(Finding {
            file: m.rel_path.clone(),
            line: lineno,
            col: 1,
            pass: "hermeticity",
            snippet: format!("{dep} = {val}"),
            message: format!(
                "dependency `{dep}` is not a workspace crate: the build \
                 would leave the repository"
            ),
        });
        return;
    }
    // A workspace crate referenced by bare version string would still be
    // resolved from the registry.
    if !val.is_empty() && !val.contains("path") && !val.contains("workspace") {
        out.push(Finding {
            file: m.rel_path.clone(),
            line: lineno,
            col: 1,
            pass: "hermeticity",
            snippet: format!("{dep} = {val}"),
            message: format!(
                "dependency `{dep}` must be a `path = ...` or \
                 `workspace = true` spec, not a registry version"
            ),
        });
    }
}

fn check_source(f: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    // `extern crate <name>`.
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].is_ident("extern") && toks[i + 1].is_ident("crate") {
            let name = &toks[i + 2];
            if name.kind == TokKind::Ident && !allowed_crate(ctx, &name.text) {
                out.push(Finding {
                    file: f.rel_path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    pass: "hermeticity",
                    snippet: format!("extern crate {}", name.text),
                    message: format!("`extern crate {}` is not a workspace crate", name.text),
                });
            }
        }
    }
    // `use <root>::...` first segments. Rust 2018 uniform paths let the
    // root be any in-scope item (`use sibling_mod::X`, `use Enum::*`), so
    // collect names the file plausibly has in scope first.
    let local = local_names(f);
    for u in crate::ast::use_paths(&f.lexed) {
        let root = &u.segments[0];
        if root != "*" && !allowed_crate(ctx, root) && !local.contains(root) {
            out.push(Finding {
                file: f.rel_path.clone(),
                line: u.line,
                col: u.col,
                pass: "hermeticity",
                snippet: format!("use {}", u.display()),
                message: format!(
                    "import root `{root}` is neither std/core/alloc, a \
                     workspace crate, nor an item visible in this file"
                ),
            });
        }
    }
}

/// Names plausibly in scope as path roots: items declared in the file
/// (`mod m;`, `enum E`, ...) and leaves of other `use` declarations
/// (`use x::Enum;` makes `Enum` a legal root).
fn local_names(f: &SourceFile) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    let toks = &f.lexed.tokens;
    const DECLS: [&str; 6] = ["mod", "struct", "enum", "trait", "type", "fn"];
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && DECLS.contains(&toks[i].text.as_str())
            && toks[i + 1].kind == TokKind::Ident
        {
            names.insert(toks[i + 1].text.clone());
        }
    }
    for u in crate::ast::use_paths(&f.lexed) {
        if let Some(leaf) = u.segments.last() {
            if leaf != "*" {
                names.insert(leaf.clone());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::{Manifest, SourceFile};

    fn ctx(files: Vec<SourceFile>, manifests: Vec<Manifest>) -> Context {
        let policy = Policy {
            oracle_crate: "x".into(),
            oracle_private_modules: vec!["y".into()],
            ..Policy::default()
        };
        Context::from_parts(policy, files, manifests)
    }

    fn gpu_manifest() -> Manifest {
        Manifest {
            rel_path: "crates/gpu/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-gpu\"\n".into(),
        }
    }

    #[test]
    fn registry_dep_is_flagged() {
        let m = Manifest {
            rel_path: "crates/core/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-core\"\n[dependencies]\nserde = \"1.0\"\n".into(),
        };
        let c = ctx(vec![], vec![gpu_manifest(), m]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/core/Cargo.toml");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn workspace_path_dep_is_clean() {
        let m = Manifest {
            rel_path: "crates/core/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-core\"\n[dependencies]\n\
                  dnnperf-gpu = { path = \"../gpu\" }\n"
                .into(),
        };
        let c = ctx(vec![], vec![gpu_manifest(), m]);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn workspace_crate_by_registry_version_is_flagged() {
        let m = Manifest {
            rel_path: "crates/core/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-core\"\n[dependencies]\n\
                  dnnperf-gpu = \"0.1\"\n"
                .into(),
        };
        let c = ctx(vec![], vec![gpu_manifest(), m]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("registry version"));
    }

    #[test]
    fn dotted_dependency_header_is_seen() {
        let m = Manifest {
            rel_path: "crates/core/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-core\"\n[dependencies.rand]\nversion = \"0.8\"\n"
                .into(),
        };
        let c = ctx(vec![], vec![gpu_manifest(), m]);
        let f = run(&c);
        assert!(f.iter().any(|x| x.message.contains("rand")));
    }

    #[test]
    fn foreign_use_root_is_flagged_std_is_not() {
        let s = SourceFile::from_source(
            "crates/core/src/x.rs",
            "use std::fmt;\nuse dnnperf_gpu::GpuSpec;\nuse serde::Serialize;\n",
        );
        let c = ctx(vec![s], vec![gpu_manifest()]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn extern_crate_is_checked() {
        let s = SourceFile::from_source("crates/core/src/x.rs", "extern crate libc;\n");
        let c = ctx(vec![s], vec![gpu_manifest()]);
        assert_eq!(run(&c).len(), 1);
    }
}
