//! Pass `oracle-isolation`: predictor-side code must never see the
//! ground-truth timing model.

use crate::ast;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::workspace::{path_in, Context, SourceFile};

/// `--explain oracle-isolation` text.
pub const EXPLAIN: &str = "\
The experiment only means something if the predictor cannot peek at the
answer key. `dnnperf-gpu`'s `timing` module holds the hidden ground-truth
model (per-kernel-family efficiencies, launch/sync overheads, saturation
curves); `fault` holds the injection engine. A predictor that imported
either could fit the simulator instead of learning from traces, and every
accuracy number in the paper reproduction would be circular.

This pass enforces the boundary statically:
  * any `use` of `<oracle>::<private-module>` (e.g. `dnnperf_gpu::timing`)
    outside the oracle crate itself is a finding;
  * any inline qualified path `dnnperf_gpu::timing::...` is a finding even
    without an import;
  * the model's private parameter identifiers (`kernel_time`,
    `launch_overhead`, ...) appearing anywhere outside the oracle crate
    are findings — they have no legitimate predictor-side meaning.

The allowed surface is exactly the oracle crate's root re-exports plus its
public modules (dispatch rules, device specs, traces): the same knowledge
a real user of cuDNN + a profiler has.";

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    let p = &ctx.policy;
    for f in &ctx.files {
        if path_in(&f.rel_path, &p.oracle_exempt_paths) {
            continue;
        }
        check_imports(f, ctx, &mut out);
        check_inline_paths(f, ctx, &mut out);
        check_private_idents(f, ctx, &mut out);
    }
    out
}

/// `use dnnperf_gpu::timing::...` (any depth, groups and globs included).
fn check_imports(f: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
    let p = &ctx.policy;
    for u in ast::use_paths(&f.lexed) {
        if u.segments.len() >= 2
            && u.segments[0] == p.oracle_crate
            && p.oracle_private_modules.contains(&u.segments[1])
        {
            out.push(Finding {
                file: f.rel_path.clone(),
                line: u.line,
                col: u.col,
                pass: "oracle-isolation",
                snippet: format!("use {}", u.display()),
                message: format!(
                    "predictor-side code imports simulator-private module \
                     `{}::{}` (the hidden ground-truth model)",
                    p.oracle_crate, u.segments[1]
                ),
            });
        }
    }
}

/// Inline qualified paths `dnnperf_gpu::timing::X` outside use decls.
fn check_inline_paths(f: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
    let p = &ctx.policy;
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == p.oracle_crate
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::PathSep
            && toks[i + 2].kind == TokKind::Ident
            && p.oracle_private_modules.contains(&toks[i + 2].text)
        {
            // The `use`-decl form is already reported (with the same span)
            // by `check_imports`; `run_all` dedups identical findings, but
            // the messages differ, so skip when the previous token is
            // `use` or part of a use tree (`{`, `,`, `::`).
            if i > 0 && toks[i - 1].is_ident("use") {
                continue;
            }
            out.push(Finding {
                file: f.rel_path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                pass: "oracle-isolation",
                snippet: f.line_text(toks[i].line),
                message: format!(
                    "qualified path into simulator-private module \
                     `{}::{}`",
                    p.oracle_crate,
                    toks[i + 2].text
                ),
            });
        }
    }
}

/// Private parameter identifiers leaking outside the oracle crate.
fn check_private_idents(f: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
    let p = &ctx.policy;
    for t in &f.lexed.tokens {
        if t.kind == TokKind::Ident && p.oracle_private_idents.contains(&t.text) {
            out.push(Finding {
                file: f.rel_path.clone(),
                line: t.line,
                col: t.col,
                pass: "oracle-isolation",
                snippet: f.line_text(t.line),
                message: format!(
                    "identifier `{}` belongs to the simulator's hidden \
                     timing model and must not appear in predictor code",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::SourceFile;

    fn ctx(files: Vec<SourceFile>) -> Context {
        let policy = Policy {
            oracle_crate: "dnnperf_gpu".into(),
            oracle_private_modules: vec!["timing".into(), "fault".into()],
            oracle_private_idents: vec!["launch_overhead".into()],
            oracle_exempt_paths: vec!["crates/gpu/".into()],
            ..Policy::default()
        };
        Context::from_parts(policy, files, vec![])
    }

    #[test]
    fn import_of_private_module_is_flagged_with_span() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/peek.rs",
            "use dnnperf_gpu::timing::TimingModel;\n",
        )]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].col), (1, 5));
        assert!(f[0].message.contains("timing"));
    }

    #[test]
    fn oracle_crate_itself_is_exempt() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/gpu/src/profiler.rs",
            "use crate::timing::TimingModel;\nuse dnnperf_gpu::timing::X;\n",
        )]);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn inline_qualified_path_is_flagged() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/peek.rs",
            "fn f() { let m = dnnperf_gpu::timing::TimingModel::new(); }\n",
        )]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("qualified path"));
    }

    #[test]
    fn private_ident_leak_is_flagged_even_in_strings_not() {
        // In a string: fine (lexer strips it). As an ident: finding.
        let clean = ctx(vec![SourceFile::from_source(
            "crates/core/src/doc.rs",
            "const DOC: &str = \"launch_overhead\";\n",
        )]);
        assert!(run(&clean).is_empty());
        let dirty = ctx(vec![SourceFile::from_source(
            "crates/core/src/leak.rs",
            "fn f(launch_overhead: f64) {}\n",
        )]);
        assert_eq!(run(&dirty).len(), 1);
    }

    #[test]
    fn public_surface_is_allowed() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/ok.rs",
            "use dnnperf_gpu::{GpuSpec, Trace};\nuse dnnperf_gpu::dispatch::Fusion;\n",
        )]);
        assert!(run(&c).is_empty());
    }
}
