//! Pass `unsafe-audit`: every `unsafe` carries a written justification.

use crate::diag::Finding;
use crate::workspace::Context;

/// `--explain unsafe-audit` text.
pub const EXPLAIN: &str = "\
The workspace is `unsafe`-free by construction today (the measurement
substrate is a pure model, the predictors are pure math), and this pass
keeps any future exception honest: an `unsafe` block, fn, impl or trait
must have a `// SAFETY: ...` comment on the same line or within the three
lines above it, explaining the invariant that makes the operation sound.
An unjustified `unsafe` is a finding; so the cheap path — just not
writing the comment — fails CI, and the reviewed path documents itself.";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const ADJACENCY: u32 = 3;

/// Runs the pass.
pub fn run(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ctx.files {
        for t in &f.lexed.tokens {
            if !t.is_ident("unsafe") {
                continue;
            }
            let justified = f.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY") && c.line <= t.line && c.line + ADJACENCY >= t.line
            });
            if !justified {
                out.push(Finding {
                    file: f.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    pass: "unsafe-audit",
                    snippet: f.line_text(t.line),
                    message: "`unsafe` without an adjacent `// SAFETY:` comment \
                              justifying the invariant"
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::workspace::SourceFile;

    fn ctx(files: Vec<SourceFile>) -> Context {
        let policy = Policy {
            oracle_crate: "x".into(),
            oracle_private_modules: vec!["y".into()],
            ..Policy::default()
        };
        Context::from_parts(policy, files, vec![])
    }

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        )]);
        let f = run(&c);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].col), (2, 5));
    }

    #[test]
    fn safety_comment_within_three_lines_justifies() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is \
             valid\n    unsafe { *p }\n}\n",
        )]);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn distant_safety_comment_does_not_justify() {
        let src = "// SAFETY: way up here\n\n\n\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let c = ctx(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
        assert_eq!(run(&c).len(), 1);
    }

    #[test]
    fn unsafe_in_a_string_is_not_a_token() {
        let c = ctx(vec![SourceFile::from_source(
            "crates/core/src/x.rs",
            "const DOC: &str = \"unsafe is banned here\";\n",
        )]);
        assert!(run(&c).is_empty());
    }
}
