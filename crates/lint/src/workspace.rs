//! Workspace discovery: deterministic enumeration of Rust sources and
//! Cargo manifests, plus the loaded [`Context`] passes operate on.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::ast::{self, LineRange};
use crate::lexer::{self, Lexed};
use crate::policy::Policy;

/// One loaded Rust source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// File contents.
    pub src: String,
    /// Lexed tokens + comments.
    pub lexed: Lexed,
    /// `#[cfg(test)]` / `#[test]` line regions.
    pub test_regions: Vec<LineRange>,
    /// Whether the whole file is test/bench collateral (under a
    /// `tests/` or `benches/` directory).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Builds a source file from a path + contents (no I/O), so tests
    /// can fabricate files at synthetic paths.
    pub fn from_source(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let test_regions = ast::test_regions(&lexed);
        let is_test_file = rel_path.contains("/tests/") || rel_path.contains("/benches/");
        SourceFile {
            rel_path: rel_path.to_string(),
            src: src.to_string(),
            lexed,
            test_regions,
            is_test_file,
        }
    }

    /// Whether `line` is inside test code (or the whole file is).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file || ast::in_regions(&self.test_regions, line)
    }

    /// The trimmed source text of `line` (1-based), for snippets.
    pub fn line_text(&self, line: u32) -> String {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_string()
    }
}

/// One loaded Cargo manifest.
#[derive(Debug)]
pub struct Manifest {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// File contents.
    pub src: String,
}

impl Manifest {
    /// The `name = "..."` under `[package]`, if any.
    pub fn package_name(&self) -> Option<String> {
        let mut in_package = false;
        for raw in self.src.lines() {
            let line = raw.trim();
            if let Some(sec) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                in_package = sec.trim() == "package";
                continue;
            }
            if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        return Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
        }
        None
    }
}

/// Everything the passes see: policy + loaded files + manifests.
#[derive(Debug)]
pub struct Context {
    /// The lint policy.
    pub policy: Policy,
    /// All Rust sources, sorted by path.
    pub files: Vec<SourceFile>,
    /// All Cargo manifests, sorted by path.
    pub manifests: Vec<Manifest>,
    /// Workspace crate names in *ident* form (`dnnperf_gpu`), derived
    /// from the manifests' package names.
    pub crate_idents: Vec<String>,
}

impl Context {
    /// Builds a context from already-loaded parts (test entry point).
    pub fn from_parts(policy: Policy, files: Vec<SourceFile>, manifests: Vec<Manifest>) -> Context {
        let mut crate_idents: Vec<String> = manifests
            .iter()
            .filter_map(|m| m.package_name())
            .map(|n| n.replace('-', "_"))
            .collect();
        crate_idents.sort();
        crate_idents.dedup();
        Context {
            policy,
            files,
            manifests,
            crate_idents,
        }
    }

    /// Walks `root`, loading every `.rs` and `Cargo.toml` outside the
    /// policy's excluded prefixes.
    pub fn load(root: &Path, policy: Policy) -> io::Result<Context> {
        let mut rs = Vec::new();
        let mut toml = Vec::new();
        walk(root, root, &policy.workspace_exclude, &mut rs, &mut toml)?;
        rs.sort();
        toml.sort();
        let mut files = Vec::new();
        for rel in rs {
            let src = fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::from_source(&rel, &src));
        }
        let mut manifests = Vec::new();
        for rel in toml {
            let src = fs::read_to_string(root.join(&rel))?;
            manifests.push(Manifest { rel_path: rel, src });
        }
        Ok(Context::from_parts(policy, files, manifests))
    }
}

/// Recursive walk collecting workspace-relative paths; entries are
/// discovered in sorted order for deterministic output.
fn walk(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    rs: &mut Vec<String>,
    toml: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if is_excluded(&rel, exclude) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, exclude, rs, toml)?;
        } else if rel.ends_with(".rs") {
            rs.push(rel);
        } else if rel.ends_with("Cargo.toml") {
            toml.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Prefix match against excluded paths; `target/` and `.git/` are always
/// excluded regardless of policy.
fn is_excluded(rel: &str, exclude: &[String]) -> bool {
    let builtin = ["target", ".git"];
    if builtin
        .iter()
        .any(|b| rel == *b || rel.starts_with(&format!("{b}/")))
    {
        return true;
    }
    exclude
        .iter()
        .any(|e| rel.starts_with(e.trim_end_matches('/')) || rel.starts_with(e))
}

/// Whether `rel` starts with any prefix in `prefixes` (the common
/// "is this file covered by this policy list" test).
pub fn path_in(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_extraction() {
        let m = Manifest {
            rel_path: "crates/gpu/Cargo.toml".into(),
            src: "[package]\nname = \"dnnperf-gpu\"\nversion = \"0.1.0\"\n[dependencies]\n".into(),
        };
        assert_eq!(m.package_name().as_deref(), Some("dnnperf-gpu"));
    }

    #[test]
    fn exclusion_matches_prefixes() {
        let ex = vec!["crates/lint/tests/fixtures/".to_string()];
        assert!(is_excluded("target/debug/foo.rs", &ex));
        assert!(is_excluded(".git/config", &ex));
        assert!(is_excluded("crates/lint/tests/fixtures/bad.rs", &ex));
        assert!(!is_excluded("crates/lint/tests/passes.rs", &ex));
    }

    #[test]
    fn synthetic_source_files_detect_test_lines() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(4));
        let t = SourceFile::from_source("crates/core/tests/conformance.rs", "fn a() {}\n");
        assert!(t.is_test_line(1));
    }
}
