//! A lightweight, lossy-but-honest Rust lexer.
//!
//! `dnnperf-lint` needs exactly three guarantees from its tokenizer, and
//! nothing a full parser provides:
//!
//! 1. **comments and string/char literals never produce code tokens** — a
//!    `"dnnperf_gpu::timing"` inside a doc string must not trip the
//!    oracle-isolation pass;
//! 2. **every identifier and punctuation token carries an exact
//!    `line:col` span** so diagnostics are clickable;
//! 3. **comments are retained separately** so the unsafe-audit pass can
//!    check for adjacent `// SAFETY:` justifications.
//!
//! The lexer understands line comments, nested block comments, string /
//! raw-string / byte-string / char literals, lifetimes, raw identifiers
//! and numeric literals. It does not attempt to parse expressions — the
//! passes pattern-match on the token stream instead (see [`crate::ast`]).

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`use`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A string/char/numeric literal (content not tokenized further).
    Literal,
    /// A single punctuation character (`{`, `[`, `!`, ...).
    Punct,
    /// The two-character path separator `::`.
    PathSep,
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`] a single character; for
    /// literals, a placeholder — literal *content* is deliberately not
    /// retained so passes cannot accidentally match inside strings).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// The full comment text, including the `//` / `/*` markers.
    pub text: String,
}

/// The lexed form of one source file: code tokens plus retained comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source text.
///
/// Unknown bytes are skipped (never fatal): lint passes prefer degraded
/// coverage over refusing to analyse a file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        *self.b.get(self.i + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let (line, col) = (self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'"' => self.string_literal(line, col),
                b'\'' => self.quote(line, col),
                b'r' | b'b' | b'c' if self.raw_or_byte_literal(line, col) => {}
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(line, col),
                b'0'..=b'9' => self.number(line, col),
                b':' if self.peek(1) == b':' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::PathSep, "::".to_string(), line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    /// `"..."` with escapes. Content is discarded.
    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while self.i < self.b.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "\"...\"".to_string(), line, col);
    }

    /// A `'`: either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn quote(&mut self, line: u32, col: u32) {
        // Lifetime: 'ident not followed by a closing quote.
        let c1 = self.peek(1);
        if (c1.is_ascii_alphabetic() || c1 == b'_') && self.peek(2) != b'\'' {
            self.bump(); // '
            let start = self.i;
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            let text = format!("'{}", String::from_utf8_lossy(&self.b[start..self.i]));
            self.push(TokKind::Punct, text, line, col);
            return;
        }
        // Char literal.
        self.bump(); // opening '
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.push(TokKind::Literal, "'.'".to_string(), line, col);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`,
    /// `c"..."` and raw identifiers `r#ident`. Returns `false` when the
    /// leading `r`/`b`/`c` is just a plain identifier start.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0);
        // b'x' byte char.
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.bump();
            self.quote(line, col);
            return true;
        }
        // b"..."/c"..." byte/С string.
        if (c0 == b'b' || c0 == b'c') && self.peek(1) == b'"' {
            self.bump();
            self.string_literal(line, col);
            return true;
        }
        // br#"..."# / br"..."
        if c0 == b'b' && self.peek(1) == b'r' && (self.peek(2) == b'#' || self.peek(2) == b'"') {
            self.bump();
            self.raw_string(line, col);
            return true;
        }
        if c0 == b'r' {
            // r#"..."# / r"..."
            if self.peek(1) == b'"' {
                self.raw_string(line, col);
                return true;
            }
            if self.peek(1) == b'#' {
                // Distinguish r#"..." (raw string) from r#ident (raw ident).
                let mut j = 1;
                while self.peek(j) == b'#' {
                    j += 1;
                }
                if self.peek(j) == b'"' {
                    self.raw_string(line, col);
                    return true;
                }
                // Raw identifier: consume `r#` then lex the ident.
                self.bump();
                self.bump();
                self.ident(line, col);
                return true;
            }
        }
        false
    }

    /// `r##"..."##`-style raw string: the opening `r` (or `br`) has NOT
    /// been consumed when entering for `r`, but has for `br`.
    fn raw_string(&mut self, line: u32, col: u32) {
        if self.peek(0) == b'r' {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while self.i < self.b.len() {
            if self.bump() == b'"' {
                for j in 0..hashes {
                    if self.peek(j) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, "r\"...\"".to_string(), line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.i;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.i;
        while self.peek(0).is_ascii_alphanumeric()
            || self.peek(0) == b'_'
            || (self.peek(0) == b'.' && self.peek(1).is_ascii_digit())
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Literal, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "dnnperf_gpu::timing";
            let r = r#"SystemTime"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"timing".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn spans_are_exact() {
        let src = "use a::b;\nfn main() {}\n";
        let toks = lex(src).tokens;
        let use_tok = &toks[0];
        assert_eq!((use_tok.line, use_tok.col), (1, 1));
        let b_tok = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b_tok.line, b_tok.col), (1, 8));
        let fn_tok = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!((fn_tok.line, fn_tok.col), (2, 1));
    }

    #[test]
    fn path_sep_is_one_token() {
        let toks = lex("a::b::c").tokens;
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        assert!(toks.iter().any(|t| t.text == "'a"));
        assert!(toks.iter().all(|t| t.kind != TokKind::Literal));
    }

    #[test]
    fn comments_are_retained_with_lines() {
        let lexed = lex("// one\nlet x = 1;\n// SAFETY: fine\nunsafe {}\n");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[1].line, 3);
        assert!(lexed.comments[1].text.contains("SAFETY:"));
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
