//! Suppression baseline: grandfathered findings, checked in and expiring.
//!
//! Format (one entry per line, `#` comments allowed):
//!
//! ```text
//! <pass> <file> <snippet-key> -- <note> [expires=YYYY-MM-DD]
//! ```
//!
//! * `<snippet-key>` is the offending snippet with **all whitespace
//!   removed** (see `Finding::snippet_key`), so entries survive rustfmt;
//! * `-- <note>` is mandatory: every suppression must say *why* the
//!   finding is acceptable;
//! * `[expires=YYYY-MM-DD]` is optional; past the date the entry stops
//!   suppressing and itself becomes an error, forcing a revisit.
//!
//! Matching is exact on `(pass, file, snippet-key)`. An entry that
//! matches nothing is reported as unused (warning, not failure) so the
//! baseline shrinks monotonically as findings get real fixes.

use crate::diag::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Pass name the entry suppresses.
    pub pass: String,
    /// Workspace-relative file the entry applies to.
    pub file: String,
    /// Whitespace-free snippet key.
    pub snippet_key: String,
    /// Why the suppression exists.
    pub note: String,
    /// Optional `YYYY-MM-DD` expiry.
    pub expires: Option<String>,
    /// 1-based line in the baseline file (for diagnostics).
    pub line: usize,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

/// Result of applying a baseline to a finding set.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by any live baseline entry — these fail CI.
    pub unsuppressed: Vec<Finding>,
    /// Findings whose only covering entries had expired, rendered as
    /// messages — these fail CI too (the entry must be renewed or fixed).
    pub expired: Vec<String>,
    /// Entries that matched nothing — stale; warned, not fatal.
    pub unused: Vec<Entry>,
    /// Entries naming files absent from the scanned workspace, rendered
    /// as messages — these fail CI: the file was deleted or renamed, so
    /// the suppression is dead text and must be removed or updated.
    pub dangling: Vec<String>,
    /// Number of findings suppressed by live entries.
    pub suppressed_count: usize,
}

impl Baseline {
    /// Parses baseline text.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (n, raw) in src.lines().enumerate() {
            let lineno = n + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, note) = line
                .split_once(" -- ")
                .ok_or_else(|| format!("baseline:{lineno}: missing ` -- <note>`"))?;
            let mut parts = head.split_whitespace();
            let (Some(pass), Some(file), Some(snippet_key), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline:{lineno}: expected `<pass> <file> <snippet-key> -- <note>`"
                ));
            };
            let note = note.trim();
            let expires = note.rfind("[expires=").map(|i| {
                note[i + "[expires=".len()..]
                    .trim_end_matches(']')
                    .to_string()
            });
            if let Some(d) = &expires {
                if !is_iso_date(d) {
                    return Err(format!(
                        "baseline:{lineno}: bad expiry `{d}` (want YYYY-MM-DD)"
                    ));
                }
            }
            entries.push(Entry {
                pass: pass.to_string(),
                file: file.to_string(),
                snippet_key: snippet_key.to_string(),
                note: note.to_string(),
                expires,
                line: lineno,
            });
        }
        Ok(Baseline { entries })
    }

    /// Applies the baseline: partitions `findings` into suppressed /
    /// unsuppressed / expired, and reports unused entries. `today` is an
    /// ISO `YYYY-MM-DD` date (injectable for tests).
    pub fn apply(&self, findings: Vec<Finding>, today: &str) -> Applied {
        let mut used = vec![false; self.entries.len()];
        let mut out = Applied::default();
        for f in findings {
            let key = f.snippet_key();
            let mut matched_live = false;
            let mut matched_expired: Option<&Entry> = None;
            for (i, e) in self.entries.iter().enumerate() {
                if e.pass == f.pass && e.file == f.file && e.snippet_key == key {
                    used[i] = true;
                    // ISO dates compare correctly as strings.
                    if e.expires.as_deref().is_some_and(|d| d < today) {
                        matched_expired = Some(e);
                    } else {
                        matched_live = true;
                    }
                }
            }
            if matched_live {
                out.suppressed_count += 1;
            } else if let Some(e) = matched_expired {
                out.expired.push(format!(
                    "{}:{}:{}: [{}] baseline entry (line {}) expired {}: {}",
                    f.file,
                    f.line,
                    f.col,
                    f.pass,
                    e.line,
                    e.expires.as_deref().unwrap_or("?"),
                    f.message
                ));
            } else {
                out.unsuppressed.push(f);
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !used[i] {
                out.unused.push(e.clone());
            }
        }
        out
    }

    /// Renders an error message for every entry whose `file` is rejected
    /// by `known` — the baseline hygiene self-check. A dangling entry is
    /// worse than an unused one: the file it names no longer exists, so
    /// the suppression can never fire again and is pure rot.
    pub fn dangling_entries(&self, known: impl Fn(&str) -> bool) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !known(&e.file))
            .map(|e| {
                format!(
                    "baseline line {}: [{}] entry references `{}`, \
                     which is not in the scanned workspace",
                    e.line, e.pass, e.file
                )
            })
            .collect()
    }
}

fn is_iso_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| matches!(i, 4 | 7) || c.is_ascii_digit())
}

/// Today's date as `YYYY-MM-DD`, derived from the system clock.
///
/// This is the lint tool's *only* wall-clock read (expiry is inherently a
/// calendar question); the policy whitelists this module for its own
/// determinism pass.
pub fn today_iso() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days-since-1970 to a (year, month, day) civil date
/// (Gregorian, proleptic). Standard era-based algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 7,
            col: 3,
            pass,
            snippet: snippet.to_string(),
            message: "msg".to_string(),
        }
    }

    const BL: &str = "\
# grandfathered
panic-policy crates/scheduler/src/pool.rs deques[ -- bounded by construction [expires=2027-01-01]
determinism crates/core/src/x.rs HashMap -- ordered downstream
";

    #[test]
    fn live_entry_suppresses() {
        let bl = Baseline::parse(BL).unwrap();
        let a = bl.apply(
            vec![finding(
                "panic-policy",
                "crates/scheduler/src/pool.rs",
                "deques [",
            )],
            "2026-08-06",
        );
        assert_eq!(a.suppressed_count, 1);
        assert!(a.unsuppressed.is_empty());
        assert!(a.expired.is_empty());
        // The determinism entry matched nothing.
        assert_eq!(a.unused.len(), 1);
        assert_eq!(a.unused[0].pass, "determinism");
    }

    #[test]
    fn expired_entry_fails() {
        let bl = Baseline::parse(BL).unwrap();
        let a = bl.apply(
            vec![finding(
                "panic-policy",
                "crates/scheduler/src/pool.rs",
                "deques[",
            )],
            "2027-06-01",
        );
        assert_eq!(a.suppressed_count, 0);
        assert_eq!(a.expired.len(), 1);
        assert!(a.expired[0].contains("expired 2027-01-01"));
    }

    #[test]
    fn unmatched_finding_stays_unsuppressed() {
        let bl = Baseline::parse(BL).unwrap();
        let a = bl.apply(
            vec![finding(
                "oracle-isolation",
                "crates/core/src/a.rs",
                "timing",
            )],
            "2026-08-06",
        );
        assert_eq!(a.unsuppressed.len(), 1);
    }

    #[test]
    fn dangling_entries_name_missing_files() {
        let bl = Baseline::parse(BL).unwrap();
        let msgs = bl.dangling_entries(|f| f == "crates/scheduler/src/pool.rs");
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("crates/core/src/x.rs"), "{}", msgs[0]);
        assert!(msgs[0].contains("line 3"), "{}", msgs[0]);
        assert!(bl.dangling_entries(|_| true).is_empty());
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(Baseline::parse("no separators here\n").is_err());
        assert!(Baseline::parse("p f s extra -- note\n").is_err());
        assert!(Baseline::parse("p f s -- note [expires=tomorrow]\n").is_err());
    }

    #[test]
    fn civil_date_roundtrip_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_724), (2024, 1, 2));
        // 2026-08-06 is 20671 days after the epoch.
        assert_eq!(civil_from_days(20_671), (2026, 8, 6));
        let t = today_iso();
        assert!(is_iso_date(&t), "{t}");
    }
}
