//! `dnnperf-lint` CLI.
//!
//! ```text
//! cargo run -p dnnperf-lint -- [--root DIR] [--policy FILE] [--baseline FILE]
//!                              [--format human|json] [--list-passes]
//!                              [--explain PASS]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (new or expired-baseline), `2`
//! usage / I/O / policy errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dnnperf_lint::{baseline, diag, lint_workspace, passes};

struct Args {
    root: PathBuf,
    policy: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    list_passes: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: dnnperf-lint [--root DIR] [--policy FILE] [--baseline FILE]\n\
     \u{20}                  [--format human|json] [--list-passes] [--explain PASS]\n\
     \n\
     Runs the workspace's static-analysis passes. Policy defaults to\n\
     <root>/lint.toml, baseline to <root>/lint-baseline.txt.\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        policy: None,
        baseline: None,
        json: false,
        list_passes: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(need(&mut it, "--root")?),
            "--policy" => args.policy = Some(PathBuf::from(need(&mut it, "--policy")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(need(&mut it, "--baseline")?)),
            "--format" => match need(&mut it, "--format")?.as_str() {
                "json" => args.json = true,
                "human" => args.json = false,
                other => return Err(format!("unknown format `{other}` (want human|json)")),
            },
            "--list-passes" => args.list_passes = true,
            "--explain" => args.explain = Some(need(&mut it, "--explain")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("dnnperf-lint: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_passes {
        for p in passes::registry() {
            println!("{:<20} {}", p.name, p.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.explain {
        return match passes::registry().into_iter().find(|p| p.name == name) {
            Some(p) => {
                println!("{}\n\n{}", p.name, p.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("dnnperf-lint: no pass named `{name}`; try --list-passes");
                ExitCode::from(2)
            }
        };
    }

    let policy = args.policy.unwrap_or_else(|| args.root.join("lint.toml"));
    let bl_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint-baseline.txt"));
    let today = baseline::today_iso();

    let outcome = match lint_workspace(&args.root, &policy, Some(&bl_path), &today) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dnnperf-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // JSON mode keeps stdout machine-pure (just the findings array, for
    // CI artifacts); everything advisory goes to stderr in both modes.
    if args.json {
        print!("{}", diag::render_json(&outcome.applied.unsuppressed));
    } else {
        for f in &outcome.applied.unsuppressed {
            print!("{}", f.render_human());
        }
    }
    for msg in &outcome.applied.expired {
        eprintln!("{msg}");
    }
    for msg in &outcome.applied.dangling {
        eprintln!("error: {msg}");
    }
    for e in &outcome.applied.unused {
        eprintln!(
            "warning: unused baseline entry (line {}): {} {} {}",
            e.line, e.pass, e.file, e.snippet_key
        );
    }
    eprintln!(
        "dnnperf-lint: {} files + {} manifests scanned, {} findings \
         ({} suppressed by baseline, {} new, {} expired, {} dangling baseline entries)",
        outcome.files_scanned,
        outcome.manifests_scanned,
        outcome.total_findings,
        outcome.applied.suppressed_count,
        outcome.applied.unsuppressed.len(),
        outcome.applied.expired.len(),
        outcome.applied.dangling.len(),
    );

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
