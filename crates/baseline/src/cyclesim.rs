//! A cycle-approximate GPU simulator.
//!
//! Simulates every kernel launch wave by wave over the GPU's SMs, pricing
//! each wave with a roofline over *nominal* per-algorithm efficiencies (an
//! engineer's calibration table). Two properties matter for the Table 2
//! comparison:
//!
//! * **cost**: simulation time is proportional to the number of thread
//!   blocks stepped through — exactly the reason detailed simulators need
//!   hours where the KW model needs microseconds;
//! * **accuracy**: the calibration table is *nominal*, not per-kernel, so
//!   predictions carry a systematic per-kernel error the data-driven KW
//!   model does not have.

use dnnperf_dnn::Network;
use dnnperf_gpu::dispatch::dispatch_network;
use dnnperf_gpu::kernel::{KernelDesc, KernelFamily};
use dnnperf_gpu::GpuSpec;

/// Nominal calibration for one kernel family: traffic multiplier, DRAM
/// efficiency, compute efficiency. These are an engineer's round numbers,
/// deliberately *not* the measurement substrate's hidden per-kernel values.
#[derive(Debug, Clone, Copy)]
struct Calib {
    kappa: f64,
    eff_mem: f64,
    eff_comp: f64,
}

fn calibration(f: KernelFamily) -> Calib {
    use KernelFamily::*;
    let c = |kappa, eff_mem, eff_comp| Calib {
        kappa,
        eff_mem,
        eff_comp,
    };
    match f {
        Im2col => c(10.0, 0.7, 0.04),
        GemmConv => c(10.0, 0.7, 0.20),
        Gemm1x1 => c(7.0, 0.7, 0.20),
        WinogradIn | WinogradOut => c(6.0, 0.7, 0.08),
        WinogradGemm => c(7.0, 0.7, 0.22),
        FftIn | FftOut => c(8.0, 0.7, 0.08),
        FftGemm => c(7.0, 0.7, 0.18),
        DirectConv => c(17.0, 0.7, 0.08),
        DepthwiseConv => c(2.5, 0.7, 0.05),
        GroupedGemm => c(7.0, 0.7, 0.15),
        GemmFc => c(2.5, 0.7, 0.22),
        BatchedGemm => c(6.0, 0.7, 0.22),
        ConcatCopy | ShuffleCopy | Softmax | LayerNormK => c(2.0, 0.75, 0.03),
        EmbedLookup => c(1.5, 0.55, 0.03),
        DgradConv => c(11.0, 0.7, 0.18),
        WgradConv => c(12.0, 0.65, 0.16),
        BnBwd | PoolBwd | ElementwiseBwd => c(1.5, 0.7, 0.03),
        OptimizerStep => c(3.0, 0.75, 0.03),
        _ => c(1.0, 0.8, 0.03),
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Predicted execution time in seconds.
    pub predicted_seconds: f64,
    /// Number of thread blocks the simulator stepped through — the cost
    /// metric that PKS/PKA reduce.
    pub simulated_blocks: u64,
}

/// The cycle-approximate simulator for one GPU.
#[derive(Debug, Clone)]
pub struct CycleSim {
    gpu: GpuSpec,
}

/// Per-block simulation work factor: xorshift steps per thread block,
/// standing in for the per-block microarchitectural bookkeeping a detailed
/// simulator performs. This is what makes detailed simulation *slow*; lower
/// it and the simulator gets faster and is still exactly as (in)accurate.
/// (xorshift rather than an LCG: LCG compositions are affine and would be
/// constant-folded away.)
const STEPS_PER_BLOCK: u32 = 96;

impl CycleSim {
    /// Creates a simulator for `gpu`.
    pub fn new(gpu: GpuSpec) -> Self {
        CycleSim { gpu }
    }

    /// The simulated GPU.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Simulates one kernel launch wave by wave.
    pub fn simulate_kernel(&self, k: &KernelDesc) -> SimResult {
        let calib = calibration(k.family);
        let blocks = k.blocks();
        let sms = self.gpu.sm_count as u64;
        let waves = blocks.div_ceil(sms).max(1);

        // Per-block traffic and flops.
        let bytes_per_block = k.bytes as f64 * calib.kappa / blocks as f64;
        let flops_per_block = k.flops as f64 / blocks as f64;

        let mut total = 0.0;
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ blocks;
        let mut remaining = blocks;
        for _ in 0..waves {
            let wave_blocks = remaining.min(sms);
            remaining -= wave_blocks;
            // Step every block in the wave (the detailed part: this loop is
            // the simulator's cost).
            for _ in 0..wave_blocks {
                for _ in 0..STEPS_PER_BLOCK {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                }
            }
            // A partial wave cannot use the whole machine: device throughput
            // scales with occupancy, saturating once a quarter of the SMs
            // are busy (memory systems saturate before full occupancy).
            let occupancy = wave_blocks as f64 / sms as f64;
            let throughput = (occupancy * 4.0).min(1.0);
            let t_mem = wave_blocks as f64 * bytes_per_block
                / (calib.eff_mem * self.gpu.bandwidth_bytes() * throughput);
            let t_comp = wave_blocks as f64 * flops_per_block
                / (calib.eff_comp * self.gpu.peak_flops() * throughput);
            total += t_mem.max(t_comp);
        }
        // Fold the LCG state in at zero weight so the detailed loop cannot
        // be optimized away.
        total += (state & 1) as f64 * 1e-18;
        SimResult {
            predicted_seconds: total + 3.0e-6, // nominal launch overhead
            simulated_blocks: blocks,
        }
    }

    /// Simulates a full network at a batch size, kernel by kernel.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_baseline::CycleSim;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// let sim = CycleSim::new(GpuSpec::by_name("V100").unwrap());
    /// let r = sim.simulate_network(&dnnperf_dnn::zoo::resnet::resnet18(), 8);
    /// assert!(r.predicted_seconds > 0.0);
    /// ```
    pub fn simulate_network(&self, net: &Network, batch: usize) -> SimResult {
        let mut seconds = 40.0e-6; // nominal per-batch sync overhead
        let mut blocks = 0;
        for kernels in dispatch_network(net, batch) {
            for k in kernels {
                let r = self.simulate_kernel(&k);
                seconds += r.predicted_seconds;
                blocks += r.simulated_blocks;
            }
        }
        SimResult {
            predicted_seconds: seconds,
            simulated_blocks: blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_gpu::Profiler;

    fn v100() -> GpuSpec {
        GpuSpec::by_name("V100").unwrap()
    }

    #[test]
    fn error_vs_measurement_is_simulator_grade() {
        // The paper cites simulator errors around 10-20%; our substitute
        // should land in that regime, clearly worse than the KW model's.
        let sim = CycleSim::new(v100());
        let prof = Profiler::new(v100());
        for net in [
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ] {
            let pred = sim.simulate_network(&net, 64).predicted_seconds;
            let meas = prof.profile(&net, 64).unwrap().e2e_seconds;
            let err = (pred - meas).abs() / meas;
            assert!(err < 0.45, "{}: cycle-sim error {err}", net.name());
        }
    }

    #[test]
    fn cost_scales_with_batch() {
        let sim = CycleSim::new(v100());
        let net = dnnperf_dnn::zoo::resnet::resnet18();
        let small = sim.simulate_network(&net, 8);
        let big = sim.simulate_network(&net, 64);
        assert!(big.simulated_blocks > 6 * small.simulated_blocks);
    }

    #[test]
    fn deterministic() {
        let sim = CycleSim::new(v100());
        let net = dnnperf_dnn::zoo::mobilenet::mobilenet_v2(0.5, 1.0);
        assert_eq!(
            sim.simulate_network(&net, 16),
            sim.simulate_network(&net, 16)
        );
    }

    #[test]
    fn bigger_network_takes_longer() {
        let sim = CycleSim::new(v100());
        let t18 = sim.simulate_network(&dnnperf_dnn::zoo::resnet::resnet18(), 32);
        let t50 = sim.simulate_network(&dnnperf_dnn::zoo::resnet::resnet50(), 32);
        assert!(t50.predicted_seconds > t18.predicted_seconds);
    }
}
