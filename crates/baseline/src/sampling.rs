//! Principal Kernel Selection (PKS) and Principal Kernel Analysis (PKA)
//! on top of the cycle-approximate simulator.
//!
//! Both methods avoid simulating every kernel launch in detail:
//!
//! * **PKS** simulates the first `detail_launches` occurrences of every
//!   kernel *symbol* in detail, then projects later occurrences from the
//!   observed per-block cost of that symbol. Most of the work is still
//!   simulated, so its error stays close to the full simulator's.
//! * **PKA** groups launches much more aggressively — by kernel *family*
//!   (the variant suffix is exactly what its counter-based clustering
//!   collapses) — and simulates a single representative per group, scaling
//!   all other launches by their block count. Far fewer blocks simulated,
//!   larger error: the Table 2 trade-off.

use crate::cyclesim::{CycleSim, SimResult};
use dnnperf_dnn::Network;
use dnnperf_gpu::dispatch::dispatch_network;
use std::collections::BTreeMap;

fn family_key(kernel_name: &str) -> String {
    // Strip the variant suffix: everything after the last "_aiN" /
    // geometry marker; fall back to the first three underscore components.
    let base: Vec<&str> = kernel_name.split('_').take(3).collect();
    base.join("_")
}

/// PKS: detailed simulation of the first `detail_launches` occurrences per
/// kernel symbol; later occurrences are projected at per-block cost.
///
/// # Panics
///
/// Panics if `detail_launches` is zero.
///
/// # Examples
///
/// ```
/// use dnnperf_baseline::{pks_estimate, CycleSim};
/// use dnnperf_gpu::GpuSpec;
///
/// let sim = CycleSim::new(GpuSpec::by_name("V100").unwrap());
/// let full = sim.simulate_network(&dnnperf_dnn::zoo::resnet::resnet18(), 8);
/// let pks = pks_estimate(&sim, &dnnperf_dnn::zoo::resnet::resnet18(), 8, 3);
/// assert!(pks.simulated_blocks < full.simulated_blocks);
/// ```
pub fn pks_estimate(
    sim: &CycleSim,
    net: &Network,
    batch: usize,
    detail_launches: usize,
) -> SimResult {
    assert!(
        detail_launches > 0,
        "PKS needs at least one detailed launch per kernel"
    );
    let mut seen: BTreeMap<String, (usize, f64, u64)> = BTreeMap::new(); // count, time, blocks
    let mut seconds = 40.0e-6;
    let mut blocks = 0;
    for kernels in dispatch_network(net, batch) {
        for k in kernels {
            let entry = seen.entry(k.name.clone()).or_insert((0, 0.0, 0));
            if entry.0 < detail_launches {
                let r = sim.simulate_kernel(&k);
                entry.0 += 1;
                entry.1 += r.predicted_seconds;
                entry.2 += r.simulated_blocks;
                seconds += r.predicted_seconds;
                blocks += r.simulated_blocks;
            } else {
                // Project from the symbol's observed per-block cost.
                let per_block = entry.1 / entry.2.max(1) as f64;
                seconds += per_block * k.blocks() as f64;
            }
        }
    }
    SimResult {
        predicted_seconds: seconds,
        simulated_blocks: blocks,
    }
}

/// PKA: one detailed representative per kernel *family*; every other launch
/// is scaled by block count.
///
/// # Examples
///
/// ```
/// use dnnperf_baseline::{pka_estimate, pks_estimate, CycleSim};
/// use dnnperf_gpu::GpuSpec;
///
/// let sim = CycleSim::new(GpuSpec::by_name("V100").unwrap());
/// let net = dnnperf_dnn::zoo::resnet::resnet18();
/// let pka = pka_estimate(&sim, &net, 8);
/// let pks = pks_estimate(&sim, &net, 8, 3);
/// assert!(pka.simulated_blocks < pks.simulated_blocks);
/// ```
pub fn pka_estimate(sim: &CycleSim, net: &Network, batch: usize) -> SimResult {
    let mut reps: BTreeMap<String, (f64, u64)> = BTreeMap::new(); // time, blocks
    let mut seconds = 40.0e-6;
    let mut blocks = 0;
    for kernels in dispatch_network(net, batch) {
        for k in kernels {
            let key = family_key(&k.name);
            match reps.get(&key) {
                Some((t, b)) => {
                    seconds += t / *b as f64 * k.blocks() as f64;
                }
                None => {
                    let r = sim.simulate_kernel(&k);
                    seconds += r.predicted_seconds;
                    blocks += r.simulated_blocks;
                    reps.insert(key, (r.predicted_seconds, r.simulated_blocks.max(1)));
                }
            }
        }
    }
    SimResult {
        predicted_seconds: seconds,
        simulated_blocks: blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_gpu::{GpuSpec, Profiler};

    fn v100_sim() -> CycleSim {
        CycleSim::new(GpuSpec::by_name("V100").unwrap())
    }

    #[test]
    fn sampling_reduces_cost_monotonically() {
        let sim = v100_sim();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let full = sim.simulate_network(&net, 32);
        let pks = pks_estimate(&sim, &net, 32, 3);
        let pka = pka_estimate(&sim, &net, 32);
        assert!(full.simulated_blocks > pks.simulated_blocks);
        assert!(pks.simulated_blocks > pka.simulated_blocks);
    }

    #[test]
    fn pks_stays_close_to_full_simulation() {
        let sim = v100_sim();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let full = sim.simulate_network(&net, 32).predicted_seconds;
        let pks = pks_estimate(&sim, &net, 32, 3).predicted_seconds;
        let dev = (pks - full).abs() / full;
        assert!(dev < 0.15, "PKS deviates {dev} from full simulation");
    }

    #[test]
    fn error_ordering_matches_table2() {
        // vs ground-truth measurement: PKS <= PKA (with slack), both worse
        // than nothing special — the KW comparison lives in the bench.
        let sim = v100_sim();
        let prof = Profiler::new(GpuSpec::by_name("V100").unwrap());
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let meas = prof.profile(&net, 32).unwrap().e2e_seconds;
        let e = |p: f64| (p - meas).abs() / meas;
        let e_pks = e(pks_estimate(&sim, &net, 32, 3).predicted_seconds);
        let e_pka = e(pka_estimate(&sim, &net, 32).predicted_seconds);
        assert!(e_pks < e_pka + 0.05, "pks {e_pks} vs pka {e_pka}");
    }

    #[test]
    fn family_key_strips_variants() {
        assert_eq!(
            family_key("implicit_convolve_sgemm_k3_ai32"),
            family_key("implicit_convolve_sgemm_k5_ai12")
        );
        assert_ne!(
            family_key("im2col_kernel_k3s2"),
            family_key("winograd_fwd_sgemm_t4_ai30")
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_detail_launches_panics() {
        let sim = v100_sim();
        pks_estimate(&sim, &dnnperf_dnn::zoo::resnet::resnet18(), 8, 0);
    }
}
