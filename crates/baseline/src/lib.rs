//! The Table 2 baseline: a cycle-approximate GPU simulator with Principal
//! Kernel Selection (PKS) and Principal Kernel Analysis (PKA) sampling.
//!
//! The paper compares its KW model against PKA/PKS (Baddouh et al.,
//! MICRO '21), which accelerate an Accel-Sim-style detailed simulator by
//! simulating only representative kernel launches. Accel-Sim itself is not
//! reproducible here, so this crate substitutes a *cycle-approximate*
//! simulator ([`CycleSim`]) with the same cost structure: simulation effort
//! proportional to the number of thread blocks simulated, and accuracy
//! limited by an engineer's calibration of per-algorithm efficiencies
//! (it does not know the measurement substrate's hidden per-kernel
//! parameters). PKS and PKA then trade simulated blocks for error, exactly
//! the trade-off of the paper's Table 2.

#![warn(missing_docs)]

pub mod cyclesim;
pub mod sampling;

pub use cyclesim::{CycleSim, SimResult};
pub use sampling::{pka_estimate, pks_estimate};
