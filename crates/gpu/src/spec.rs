//! GPU hardware specifications (the paper's Table 1).

use std::fmt;

/// Static specification of a GPU, matching the columns of the paper's
/// Table 1 plus the SM count used by the saturation model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100"`.
    pub name: String,
    /// Theoretical memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Device memory in GB.
    pub memory_gb: f64,
    /// Theoretical FP32 throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// Tensor core count (informational; the FP32 paths modeled here do not
    /// use them).
    pub tensor_cores: u32,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
}

impl GpuSpec {
    /// Creates a custom (possibly hypothetical) GPU specification, as used by
    /// the paper's Case Study 1 design-space exploration.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// let custom = GpuSpec::new("TITAN-mod", 900.0, 24.0, 16.3, 576, 72);
    /// assert_eq!(custom.bandwidth_gbps, 900.0);
    /// ```
    pub fn new(
        name: impl Into<String>,
        bandwidth_gbps: f64,
        memory_gb: f64,
        fp32_tflops: f64,
        tensor_cores: u32,
        sm_count: u32,
    ) -> Self {
        GpuSpec {
            name: name.into(),
            bandwidth_gbps,
            memory_gb,
            fp32_tflops,
            tensor_cores,
            sm_count,
        }
    }

    /// Returns a copy with a modified memory bandwidth (Case Study 1:
    /// "running ResNet-50 on modified TITAN RTX").
    pub fn with_bandwidth(&self, bandwidth_gbps: f64) -> Self {
        let mut g = self.clone();
        g.bandwidth_gbps = bandwidth_gbps;
        g.name = format!("{}@{:.0}GB/s", self.name, bandwidth_gbps);
        g
    }

    /// Returns a Multi-Instance GPU slice holding `numerator`/`denominator`
    /// of the device: SMs, memory bandwidth and memory capacity partition
    /// proportionally, as on NVIDIA MIG (e.g. an A100 `3/7` slice). This is
    /// the hardware side of the paper's future-work item on "emerging GPU
    /// hardware (e.g., multi-instance GPUs)".
    ///
    /// # Panics
    ///
    /// Panics if `numerator` is zero or exceeds `denominator`.
    ///
    /// # Examples
    ///
    /// ```
    /// let a100 = dnnperf_gpu::GpuSpec::by_name("A100").unwrap();
    /// let slice = a100.mig_slice(3, 7);
    /// assert!(slice.sm_count < a100.sm_count);
    /// assert!(slice.name.contains("3/7"));
    /// ```
    pub fn mig_slice(&self, numerator: u32, denominator: u32) -> Self {
        assert!(
            numerator >= 1 && numerator <= denominator,
            "MIG slice must be a fraction in (0, 1]"
        );
        let frac = numerator as f64 / denominator as f64;
        GpuSpec {
            name: format!("{}[{numerator}/{denominator}]", self.name),
            bandwidth_gbps: self.bandwidth_gbps * frac,
            memory_gb: self.memory_gb * frac,
            fp32_tflops: self.fp32_tflops * frac,
            tensor_cores: (self.tensor_cores as f64 * frac) as u32,
            sm_count: ((self.sm_count as f64 * frac).round() as u32).max(1),
        }
    }

    /// Theoretical bandwidth in bytes per second.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.bandwidth_gbps * 1e9
    }

    /// Theoretical FP32 throughput in FLOPs per second.
    pub fn peak_flops(&self) -> f64 {
        self.fp32_tflops * 1e12
    }

    /// Device memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gb * 1e9) as u64
    }

    /// The seven GPUs of the paper's Table 1.
    pub fn all() -> Vec<GpuSpec> {
        vec![
            GpuSpec::new("A100", 1555.0, 40.0, 19.5, 432, 108),
            GpuSpec::new("A40", 696.0, 48.0, 37.4, 336, 84),
            GpuSpec::new("GTX 1080 Ti", 484.0, 11.0, 11.3, 0, 28),
            GpuSpec::new("Quadro P620", 80.0, 2.0, 1.4, 0, 4),
            GpuSpec::new("RTX A5000", 768.0, 24.0, 27.8, 256, 64),
            GpuSpec::new("TITAN RTX", 672.0, 24.0, 16.3, 576, 72),
            GpuSpec::new("V100", 900.0, 16.0, 14.1, 640, 80),
        ]
    }

    /// Looks a Table 1 GPU up by name.
    ///
    /// # Examples
    ///
    /// ```
    /// let v100 = dnnperf_gpu::GpuSpec::by_name("V100").unwrap();
    /// assert_eq!(v100.bandwidth_gbps, 900.0);
    /// ```
    pub fn by_name(name: &str) -> Option<GpuSpec> {
        GpuSpec::all().into_iter().find(|g| g.name == name)
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GB/s, {} GB, {} TFLOPS FP32, {} SMs)",
            self.name, self.bandwidth_gbps, self.memory_gb, self.fp32_tflops, self.sm_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_gpus() {
        assert_eq!(GpuSpec::all().len(), 7);
    }

    #[test]
    fn table1_values_match_paper() {
        let a100 = GpuSpec::by_name("A100").unwrap();
        assert_eq!(a100.bandwidth_gbps, 1555.0);
        assert_eq!(a100.fp32_tflops, 19.5);
        assert_eq!(a100.tensor_cores, 432);
        let titan = GpuSpec::by_name("TITAN RTX").unwrap();
        assert_eq!(titan.bandwidth_gbps, 672.0);
        assert_eq!(titan.memory_gb, 24.0);
        let p620 = GpuSpec::by_name("Quadro P620").unwrap();
        assert_eq!(p620.memory_gb, 2.0);
        assert_eq!(p620.tensor_cores, 0);
    }

    #[test]
    fn by_name_misses_unknown() {
        assert!(GpuSpec::by_name("H100").is_none());
    }

    #[test]
    fn with_bandwidth_renames() {
        let g = GpuSpec::by_name("TITAN RTX").unwrap().with_bandwidth(900.0);
        assert_eq!(g.bandwidth_gbps, 900.0);
        assert!(g.name.contains("TITAN RTX"));
        assert!(g.name.contains("900"));
    }

    #[test]
    fn unit_conversions() {
        let g = GpuSpec::by_name("V100").unwrap();
        assert_eq!(g.bandwidth_bytes(), 900e9);
        assert_eq!(g.peak_flops(), 14.1e12);
        assert_eq!(g.memory_bytes(), 16_000_000_000);
    }
}
