//! cuDNN-like kernel dispatch: maps each layer to the GPU kernels that
//! execute it.
//!
//! Mirrors the behaviour the paper observes in cuDNN (Section 2.2 and O5):
//!
//! * convolutions are lowered through one of several algorithms chosen by
//!   layer geometry — implicit GEMM for 1x1, Winograd for stride-1 3x3,
//!   FFT for large filters on large maps, im2col+GEMM or direct otherwise;
//! * layers follow a *pre-process -> compute -> post-process* pipeline, so a
//!   single layer may launch several kernels;
//! * "even if the same method is used ... GPU libraries might use different
//!   implementations according to the layer size" — kernel names carry
//!   tile/geometry variant suffixes, so one family fans out into many
//!   concrete kernels (~180 across the zoo, as in the paper's dataset).
//!
//! Dispatch depends only on the layer (never on the GPU), matching the
//! paper's inter-GPU assumption that "the same kernels \[are\] used on multiple
//! GPUs".

use crate::kernel::{KernelDesc, KernelFamily, KernelRole};
use dnnperf_dnn::flops::{layer_flops, layer_params, BYTES_PER_ELEM};
use dnnperf_dnn::{ActivationFn, Layer, LayerKind, PoolKind};

/// Winograd F(4x4, 3x3) reduces the multiplication count of a 3x3
/// convolution by 2.25x; we fold that into the main kernel's actual FLOPs.
const WINOGRAD_FLOP_SCALE: f64 = 1.0 / 2.25;

/// Buckets a per-sample arithmetic-intensity value into a half-log2 step.
/// Tile-variant suffixes derive from it: real libraries select tile sizes by
/// problem geometry, which correlates with arithmetic intensity.
fn ai_bucket(flops_per_sample: u64, act_elems_per_sample: u64) -> i32 {
    if flops_per_sample == 0 || act_elems_per_sample == 0 {
        return 0;
    }
    let ai = flops_per_sample as f64 / (act_elems_per_sample as f64 * BYTES_PER_ELEM as f64);
    (2.0 * ai.max(1e-6).log2()).round() as i32
}

fn channel_bucket(c: usize) -> u32 {
    (c.max(1) as f64).log2().round() as u32
}

struct Ctx {
    batch: u64,
    in_elems: u64,         // per launch (batch applied)
    out_elems: u64,        // per launch
    flops_per_sample: u64, // per sample, so scaled FLOPs stay exactly linear in batch
    weight_elems: u64,
}

impl Ctx {
    fn new(layer: &Layer, batch: usize) -> Self {
        let n = batch as u64;
        Ctx {
            batch: n,
            in_elems: layer.input.elems() as u64 * n,
            out_elems: layer.output.elems() as u64 * n,
            flops_per_sample: layer_flops(layer),
            weight_elems: layer_params(layer),
        }
    }

    fn pre(&self, family: KernelFamily, name: String) -> KernelDesc {
        KernelDesc {
            name,
            family,
            role: KernelRole::Pre,
            flops: 4 * self.in_elems,
            bytes: self.in_elems * BYTES_PER_ELEM,
            work_items: self.in_elems,
        }
    }

    fn main(&self, family: KernelFamily, name: String, flop_scale: f64) -> KernelDesc {
        KernelDesc {
            name,
            family,
            role: KernelRole::Main,
            // Scale per sample, then apply the batch, so per-launch FLOPs
            // are exactly linear in batch size (O3).
            flops: (self.flops_per_sample as f64 * flop_scale) as u64 * self.batch,
            bytes: (self.in_elems + self.out_elems + self.weight_elems) * BYTES_PER_ELEM,
            work_items: self.out_elems,
        }
    }

    fn post(&self, family: KernelFamily, name: String) -> KernelDesc {
        KernelDesc {
            name,
            family,
            role: KernelRole::Post,
            flops: 2 * self.out_elems,
            bytes: self.out_elems * BYTES_PER_ELEM,
            work_items: self.out_elems,
        }
    }
}

/// The convolution lowering chosen for a layer's geometry. Shared between
/// the dispatcher and the exact-count pre-sizing so the two can never
/// disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConvAlgo {
    Depthwise,
    Grouped,
    Pointwise,
    Winograd,
    Fft,
    Direct,
    Im2colGemm,
}

impl ConvAlgo {
    /// Number of kernels the algorithm launches.
    fn kernel_count(self) -> usize {
        match self {
            ConvAlgo::Winograd | ConvAlgo::Fft => 3,
            ConvAlgo::Im2colGemm => 2,
            _ => 1,
        }
    }
}

fn conv_algo(layer: &Layer, c: &dnnperf_dnn::Conv2d) -> ConvAlgo {
    let spatial = layer.output.spatial();
    if c.is_depthwise() {
        ConvAlgo::Depthwise
    } else if c.groups > 1 {
        ConvAlgo::Grouped
    } else if c.is_pointwise() {
        ConvAlgo::Pointwise
    } else if c.kh == 3 && c.kw == 3 && c.stride == 1 && c.in_ch >= 16 && c.out_ch >= 16 {
        ConvAlgo::Winograd
    } else if c.kh >= 5 && c.stride == 1 && spatial >= 28 * 28 && c.in_ch >= 16 {
        ConvAlgo::Fft
    } else if c.in_ch < 16 {
        ConvAlgo::Direct
    } else {
        ConvAlgo::Im2colGemm
    }
}

/// Exact number of kernels [`dispatch_layer`] will produce for this layer.
///
/// Used to pre-size kernel vectors with a single exact allocation; a
/// debug assertion in [`dispatch_layer_into`] keeps it honest.
pub fn forward_kernel_count(layer: &Layer) -> usize {
    match &layer.kind {
        LayerKind::Conv2d(c) => conv_algo(layer, c).kernel_count(),
        LayerKind::Linear(_) => 2,
        LayerKind::Flatten => 0,
        _ => 1,
    }
}

/// Exact number of kernels [`dispatch_layer_backward`] will produce.
pub fn backward_kernel_count(layer: &Layer) -> usize {
    let base = match &layer.kind {
        LayerKind::Conv2d(_) => 2,
        LayerKind::Linear(_) => 3,
        LayerKind::MatMul(_) => 2,
        LayerKind::Add | LayerKind::Flatten => 0,
        _ => 1,
    };
    base + usize::from(layer_params(layer) > 0)
}

/// Dispatches one layer at the given batch size into its kernel sequence.
///
/// Returns an empty vector for layers that compile away (e.g.
/// [`LayerKind::Flatten`] is a view change).
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::{Conv2d, Layer, LayerKind, TensorShape};
/// use dnnperf_gpu::dispatch::dispatch_layer;
///
/// # fn main() -> Result<(), dnnperf_dnn::ShapeError> {
/// let conv = Layer::apply(
///     LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1)),
///     TensorShape::chw(64, 56, 56),
/// )?;
/// let kernels = dispatch_layer(&conv, 32);
/// // Stride-1 3x3 goes through Winograd: transform-in, GEMM, transform-out.
/// assert_eq!(kernels.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn dispatch_layer(layer: &Layer, batch: usize) -> Vec<KernelDesc> {
    let mut out = Vec::with_capacity(forward_kernel_count(layer));
    dispatch_layer_into(layer, batch, &mut out);
    out
}

/// Push-based variant of [`dispatch_layer`]: appends the layer's kernels to
/// `out` without allocating an intermediate vector. Callers batching many
/// layers into one buffer (e.g. [`dispatch_network_training`]) pre-size
/// `out` once with [`forward_kernel_count`] + [`backward_kernel_count`].
pub fn dispatch_layer_into(layer: &Layer, batch: usize, out: &mut Vec<KernelDesc>) {
    assert!(batch > 0, "batch size must be positive");
    let ctx = Ctx::new(layer, batch);
    let act_per_sample = (layer.input.elems() + layer.output.elems()) as u64;
    let flops_per_sample = layer_flops(layer);
    let ai = ai_bucket(flops_per_sample, act_per_sample);
    let before = out.len();

    match &layer.kind {
        LayerKind::Conv2d(c) => dispatch_conv_into(layer, c, &ctx, ai, out),
        LayerKind::Linear(l) => {
            // Narrow outputs run a GEMV-style kernel; both belong to the FC
            // GEMM family for pricing purposes.
            let family = KernelFamily::GemmFc;
            let name = if l.out_features >= 64 {
                format!(
                    "{}_n{}_ai{}",
                    family.base_name(),
                    channel_bucket(l.out_features),
                    ai
                )
            } else {
                format!("gemv_n_small_ai{ai}")
            };
            out.push(ctx.main(family, name, 1.0));
            out.push(ctx.post(
                KernelFamily::BiasAct,
                KernelFamily::BiasAct.base_name().to_string(),
            ));
        }
        LayerKind::Pool2d(p) => {
            let tag = match p.kind {
                PoolKind::Max => "max",
                PoolKind::Avg => "avg",
            };
            out.push(ctx.pre(
                KernelFamily::Pooling,
                format!("{}_{}_k{}", KernelFamily::Pooling.base_name(), tag, p.k),
            ));
        }
        LayerKind::GlobalAvgPool => {
            out.push(ctx.pre(
                KernelFamily::Reduce,
                KernelFamily::Reduce.base_name().to_string(),
            ));
        }
        LayerKind::BatchNorm => {
            out.push(ctx.pre(
                KernelFamily::BnInf,
                KernelFamily::BnInf.base_name().to_string(),
            ));
        }
        LayerKind::LayerNorm => {
            out.push(ctx.pre(
                KernelFamily::LayerNormK,
                KernelFamily::LayerNormK.base_name().to_string(),
            ));
        }
        LayerKind::Activation(f) => {
            let tag = match f {
                ActivationFn::Relu => "relu",
                ActivationFn::Relu6 => "relu6",
                ActivationFn::Gelu => "gelu",
                ActivationFn::Sigmoid => "sigmoid",
            };
            out.push(ctx.pre(
                KernelFamily::Elementwise,
                format!("{}_{}", KernelFamily::Elementwise.base_name(), tag),
            ));
        }
        LayerKind::Add => {
            out.push(ctx.post(
                KernelFamily::AddTensor,
                KernelFamily::AddTensor.base_name().to_string(),
            ));
        }
        LayerKind::Concat { .. } => {
            out.push(ctx.post(
                KernelFamily::ConcatCopy,
                KernelFamily::ConcatCopy.base_name().to_string(),
            ));
        }
        LayerKind::Softmax => {
            out.push(ctx.pre(
                KernelFamily::Softmax,
                KernelFamily::Softmax.base_name().to_string(),
            ));
        }
        LayerKind::Embedding(_) => {
            out.push(ctx.post(
                KernelFamily::EmbedLookup,
                KernelFamily::EmbedLookup.base_name().to_string(),
            ));
        }
        LayerKind::MatMul(m) => {
            out.push(ctx.main(
                KernelFamily::BatchedGemm,
                format!(
                    "{}_h{}_ai{}",
                    KernelFamily::BatchedGemm.base_name(),
                    channel_bucket(m.heads),
                    ai
                ),
                1.0,
            ));
        }
        LayerKind::Flatten => {}
        LayerKind::ChannelShuffle { .. } => {
            out.push(ctx.pre(
                KernelFamily::ShuffleCopy,
                KernelFamily::ShuffleCopy.base_name().to_string(),
            ));
        }
    }
    debug_assert_eq!(
        out.len() - before,
        forward_kernel_count(layer),
        "forward_kernel_count out of sync with dispatch_layer_into"
    );
}

fn dispatch_conv_into(
    layer: &Layer,
    c: &dnnperf_dnn::Conv2d,
    ctx: &Ctx,
    ai: i32,
    out: &mut Vec<KernelDesc>,
) {
    let spatial = layer.output.spatial();
    match conv_algo(layer, c) {
        ConvAlgo::Depthwise => out.push(ctx.main(
            KernelFamily::DepthwiseConv,
            format!(
                "{}_k{}s{}",
                KernelFamily::DepthwiseConv.base_name(),
                c.kh,
                c.stride
            ),
            1.0,
        )),
        ConvAlgo::Grouped => out.push(ctx.main(
            KernelFamily::GroupedGemm,
            format!(
                "{}_g{}_ai{}",
                KernelFamily::GroupedGemm.base_name(),
                c.groups,
                ai
            ),
            1.0,
        )),
        ConvAlgo::Pointwise => out.push(ctx.main(
            KernelFamily::Gemm1x1,
            format!(
                "{}_c{}_ai{}",
                KernelFamily::Gemm1x1.base_name(),
                channel_bucket(c.out_ch),
                ai
            ),
            1.0,
        )),
        ConvAlgo::Winograd => {
            // Winograd pipeline: tile size 4 for large maps, 2 for small ones.
            let tile = if spatial >= 28 * 28 { 4 } else { 2 };
            out.push(ctx.pre(
                KernelFamily::WinogradIn,
                format!("{}_t{}", KernelFamily::WinogradIn.base_name(), tile),
            ));
            out.push(ctx.main(
                KernelFamily::WinogradGemm,
                format!(
                    "{}_t{}_ai{}",
                    KernelFamily::WinogradGemm.base_name(),
                    tile,
                    ai
                ),
                WINOGRAD_FLOP_SCALE,
            ));
            out.push(ctx.post(
                KernelFamily::WinogradOut,
                format!("{}_t{}", KernelFamily::WinogradOut.base_name(), tile),
            ));
        }
        ConvAlgo::Fft => {
            // FFT pipeline for big filters on big maps.
            out.push(ctx.pre(
                KernelFamily::FftIn,
                format!("{}_k{}", KernelFamily::FftIn.base_name(), c.kh),
            ));
            out.push(ctx.main(
                KernelFamily::FftGemm,
                format!("{}_k{}_ai{}", KernelFamily::FftGemm.base_name(), c.kh, ai),
                0.6,
            ));
            out.push(ctx.post(
                KernelFamily::FftOut,
                format!("{}_k{}", KernelFamily::FftOut.base_name(), c.kh),
            ));
        }
        ConvAlgo::Direct => {
            // Shallow-input convolutions (network stems) run a direct kernel.
            out.push(ctx.main(
                KernelFamily::DirectConv,
                format!(
                    "{}_k{}s{}",
                    KernelFamily::DirectConv.base_name(),
                    c.kh,
                    c.stride
                ),
                1.0,
            ));
        }
        ConvAlgo::Im2colGemm => {
            // General case: im2col expansion followed by a GEMM.
            out.push(ctx.pre(
                KernelFamily::Im2col,
                format!(
                    "{}_k{}s{}",
                    KernelFamily::Im2col.base_name(),
                    c.kh,
                    c.stride
                ),
            ));
            out.push(ctx.main(
                KernelFamily::GemmConv,
                format!("{}_k{}_ai{}", KernelFamily::GemmConv.base_name(), c.kh, ai),
                1.0,
            ));
        }
    }
}

/// Dispatches every layer of a network, preserving layer order.
///
/// The outer vector is indexed by layer; empty entries correspond to layers
/// that launch no kernels.
pub fn dispatch_network(net: &dnnperf_dnn::Network, batch: usize) -> Vec<Vec<KernelDesc>> {
    net.layers()
        .iter()
        .map(|l| dispatch_layer(l, batch))
        .collect()
}

/// Runtime operator-fusion policy.
///
/// Real inference runtimes (cuDNN runtime fusion, TensorRT) fold
/// normalization and activation epilogues into the preceding convolution,
/// eliminating their kernels and memory round-trips — the behaviour
/// nn-Meter's "fused kernel" analysis revolves around. Kernel *selection*
/// changes under fusion, so the measured kernel names differ; the
/// data-driven KW model absorbs this transparently by learning the fused
/// mapping from fused traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fusion {
    /// One kernel sequence per layer (PyTorch eager mode; the paper's
    /// measurement setting).
    #[default]
    None,
    /// Fuse `Conv -> BatchNorm [-> Activation]` chains into the
    /// convolution's epilogue.
    ConvBnAct,
}

/// Dispatches every layer of a network under a fusion policy.
///
/// Under [`Fusion::ConvBnAct`], a convolution directly followed by a
/// shape-compatible `BatchNorm` (and optionally an activation) absorbs
/// them: the convolution's final kernel gains a fused epilogue (same kernel
/// symbol — the epilogue is register-resident and does not change the
/// kernel's performance character — plus the BN parameter traffic) and the
/// absorbed layers launch nothing.
pub fn dispatch_network_with(
    net: &dnnperf_dnn::Network,
    batch: usize,
    fusion: Fusion,
) -> Vec<Vec<KernelDesc>> {
    if fusion == Fusion::None {
        return dispatch_network(net, batch);
    }
    let layers = net.layers();
    let mut out: Vec<Vec<KernelDesc>> = Vec::with_capacity(layers.len());
    let mut i = 0;
    while i < layers.len() {
        let layer = &layers[i];
        let fusible = matches!(layer.kind, LayerKind::Conv2d(_));
        let mut absorbed = 0usize;
        if fusible {
            if let Some(next) = layers.get(i + 1) {
                if next.kind == LayerKind::BatchNorm && next.input == layer.output {
                    absorbed = 1;
                    if let Some(next2) = layers.get(i + 2) {
                        if let LayerKind::Activation(_) = next2.kind {
                            if next2.input == next.output {
                                absorbed = 2;
                            }
                        }
                    }
                }
            }
        }
        let mut kernels = dispatch_layer(layer, batch);
        if absorbed > 0 {
            // The epilogue rides on the convolution's last kernel.
            let bn_params = 4 * layer.output.channels() as u64;
            if let Some(last) = kernels.last_mut() {
                last.bytes += bn_params * BYTES_PER_ELEM;
            }
        }
        out.push(kernels);
        for _ in 0..absorbed {
            out.push(Vec::new());
        }
        i += 1 + absorbed;
    }
    out
}

/// Dispatches the *backward* pass of one layer (training support, the
/// paper's stated future work). Convolutions and GEMMs launch a
/// data-gradient and a weight-gradient kernel — each costing roughly the
/// forward FLOPs, so a training step lands near 3x inference — while
/// normalization/activation/pooling layers launch stream-style backward
/// kernels. Parameterised layers additionally launch an optimizer update.
pub fn dispatch_layer_backward(layer: &Layer, batch: usize) -> Vec<KernelDesc> {
    let mut out = Vec::with_capacity(backward_kernel_count(layer));
    dispatch_layer_backward_into(layer, batch, &mut out);
    out
}

/// Push-based variant of [`dispatch_layer_backward`]; see
/// [`dispatch_layer_into`].
pub fn dispatch_layer_backward_into(layer: &Layer, batch: usize, out: &mut Vec<KernelDesc>) {
    assert!(batch > 0, "batch size must be positive");
    let ctx = Ctx::new(layer, batch);
    let act_per_sample = (layer.input.elems() + layer.output.elems()) as u64;
    let ai = ai_bucket(layer_flops(layer), act_per_sample);
    let before = out.len();

    match &layer.kind {
        LayerKind::Conv2d(c) => {
            let tag = if c.is_depthwise() {
                "dw".to_string()
            } else if c.groups > 1 {
                format!("g{}", c.groups)
            } else {
                format!("k{}", c.kh)
            };
            out.push(KernelDesc {
                name: format!("{}_{}_ai{}", KernelFamily::DgradConv.base_name(), tag, ai),
                family: KernelFamily::DgradConv,
                role: KernelRole::Main,
                flops: ctx.flops_per_sample * ctx.batch,
                bytes: (ctx.in_elems + ctx.out_elems + ctx.weight_elems) * BYTES_PER_ELEM,
                work_items: ctx.in_elems,
            });
            out.push(KernelDesc {
                name: format!("{}_{}_ai{}", KernelFamily::WgradConv.base_name(), tag, ai),
                family: KernelFamily::WgradConv,
                role: KernelRole::Main,
                flops: ctx.flops_per_sample * ctx.batch,
                bytes: (ctx.in_elems + ctx.out_elems + ctx.weight_elems) * BYTES_PER_ELEM,
                work_items: ctx.out_elems,
            });
        }
        LayerKind::Linear(_) => {
            out.push(ctx.main(
                KernelFamily::GemmFc,
                format!("{}_dgrad_ai{}", KernelFamily::GemmFc.base_name(), ai),
                1.0,
            ));
            out.push(ctx.main(
                KernelFamily::GemmFc,
                format!("{}_wgrad_ai{}", KernelFamily::GemmFc.base_name(), ai),
                1.0,
            ));
            out.push(ctx.post(KernelFamily::Reduce, "reduce_bias_grad".to_string()));
        }
        LayerKind::MatMul(m) => {
            let mk = |side: &str| {
                ctx.main(
                    KernelFamily::BatchedGemm,
                    format!(
                        "{}_{}_h{}_ai{}",
                        KernelFamily::BatchedGemm.base_name(),
                        side,
                        channel_bucket(m.heads),
                        ai
                    ),
                    1.0,
                )
            };
            out.push(mk("bwda"));
            out.push(mk("bwdb"));
        }
        LayerKind::BatchNorm => {
            out.push(ctx.pre(
                KernelFamily::BnBwd,
                KernelFamily::BnBwd.base_name().to_string(),
            ));
        }
        LayerKind::LayerNorm => {
            out.push(ctx.pre(KernelFamily::BnBwd, "layer_norm_bwd".to_string()));
        }
        LayerKind::Activation(f) => {
            out.push(ctx.pre(
                KernelFamily::ElementwiseBwd,
                format!("{}_{f}", KernelFamily::ElementwiseBwd.base_name()),
            ));
        }
        LayerKind::Pool2d(p) => {
            let tag = match p.kind {
                PoolKind::Max => "max",
                PoolKind::Avg => "avg",
            };
            out.push(ctx.pre(
                KernelFamily::PoolBwd,
                format!("{}_{}_k{}", KernelFamily::PoolBwd.base_name(), tag, p.k),
            ));
        }
        LayerKind::GlobalAvgPool => {
            out.push(ctx.pre(
                KernelFamily::ElementwiseBwd,
                "broadcast_grad_spatial".to_string(),
            ));
        }
        LayerKind::Softmax => {
            out.push(ctx.pre(KernelFamily::ElementwiseBwd, "softmax_bwd".to_string()));
        }
        LayerKind::Concat { .. } => {
            out.push(ctx.pre(KernelFamily::ConcatCopy, "cat_array_grad_split".to_string()));
        }
        LayerKind::ChannelShuffle { .. } => {
            out.push(ctx.pre(KernelFamily::ShuffleCopy, "channel_shuffle_bwd".to_string()));
        }
        LayerKind::Embedding(_) => {
            out.push(ctx.post(
                KernelFamily::EmbedLookup,
                "embedding_grad_scatter".to_string(),
            ));
        }
        // Residual adds and views route gradients without a kernel.
        LayerKind::Add | LayerKind::Flatten => {}
    }

    // Optimizer step on the layer's parameters (batch-independent).
    let params = layer_params(layer);
    if params > 0 {
        out.push(KernelDesc {
            name: KernelFamily::OptimizerStep.base_name().to_string(),
            family: KernelFamily::OptimizerStep,
            role: KernelRole::Post,
            flops: 2 * params,
            bytes: 3 * params * BYTES_PER_ELEM, // weights + gradient + momentum
            work_items: params,
        });
    }
    debug_assert_eq!(
        out.len() - before,
        backward_kernel_count(layer),
        "backward_kernel_count out of sync with dispatch_layer_backward_into"
    );
}

/// Dispatches one full training step: per layer, the forward kernels
/// followed by the backward/update kernels.
///
/// Each per-layer vector is allocated once at its exact final size
/// (forward + backward counts) and filled by the push-based dispatchers —
/// no intermediate scratch vector, no `extend`-triggered reallocation.
pub fn dispatch_network_training(net: &dnnperf_dnn::Network, batch: usize) -> Vec<Vec<KernelDesc>> {
    net.layers()
        .iter()
        .map(|l| {
            let mut ks = Vec::with_capacity(forward_kernel_count(l) + backward_kernel_count(l));
            dispatch_layer_into(l, batch, &mut ks);
            dispatch_layer_backward_into(l, batch, &mut ks);
            ks
        })
        .collect()
}

/// Sanity statistic used by tests and DESIGN.md: bytes of theoretical traffic
/// covered by the dispatched kernels of one layer.
pub fn dispatched_bytes(kernels: &[KernelDesc]) -> u64 {
    kernels.iter().map(|k| k.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::{Conv2d, TensorShape};
    use std::collections::HashSet;

    fn conv(c: Conv2d, input: TensorShape) -> Layer {
        Layer::apply(LayerKind::Conv2d(c), input).unwrap()
    }

    #[test]
    fn pointwise_uses_implicit_gemm() {
        let l = conv(
            Conv2d::square(256, 64, 1, 1, 0),
            TensorShape::chw(256, 56, 56),
        );
        let ks = dispatch_layer(&l, 8);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].family, KernelFamily::Gemm1x1);
        assert_eq!(ks[0].role, KernelRole::Main);
    }

    #[test]
    fn winograd_for_stride1_3x3() {
        let l = conv(
            Conv2d::square(64, 64, 3, 1, 1),
            TensorShape::chw(64, 56, 56),
        );
        let ks = dispatch_layer(&l, 8);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].role, KernelRole::Pre);
        assert_eq!(ks[1].role, KernelRole::Main);
        assert_eq!(ks[2].role, KernelRole::Post);
        assert_eq!(ks[1].family, KernelFamily::WinogradGemm);
        // Winograd reduces the actual multiplications.
        assert!(ks[1].flops < dnnperf_dnn::flops::layer_flops(&l) * 8);
    }

    #[test]
    fn strided_3x3_uses_im2col_gemm() {
        let l = conv(
            Conv2d::square(64, 128, 3, 2, 1),
            TensorShape::chw(64, 56, 56),
        );
        let ks = dispatch_layer(&l, 8);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].family, KernelFamily::Im2col);
        assert_eq!(ks[1].family, KernelFamily::GemmConv);
    }

    #[test]
    fn stem_conv_is_direct() {
        let l = conv(
            Conv2d::square(3, 64, 7, 2, 3),
            TensorShape::chw(3, 224, 224),
        );
        let ks = dispatch_layer(&l, 8);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].family, KernelFamily::DirectConv);
    }

    #[test]
    fn large_filter_on_large_map_uses_fft() {
        let l = conv(
            Conv2d::square(96, 96, 5, 1, 2),
            TensorShape::chw(96, 56, 56),
        );
        let ks = dispatch_layer(&l, 4);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].family, KernelFamily::FftGemm);
    }

    #[test]
    fn depthwise_and_grouped() {
        let dw = conv(Conv2d::depthwise(32, 3, 1, 1), TensorShape::chw(32, 28, 28));
        assert_eq!(
            dispatch_layer(&dw, 4)[0].family,
            KernelFamily::DepthwiseConv
        );
        let mut g = Conv2d::square(240, 60, 1, 1, 0);
        g.groups = 3;
        let gl = conv(g, TensorShape::chw(240, 28, 28));
        assert_eq!(dispatch_layer(&gl, 4)[0].family, KernelFamily::GroupedGemm);
    }

    #[test]
    fn flatten_launches_nothing() {
        let l = Layer::apply(LayerKind::Flatten, TensorShape::chw(512, 7, 7)).unwrap();
        assert!(dispatch_layer(&l, 4).is_empty());
    }

    #[test]
    fn batch_scales_work_linearly() {
        let l = conv(
            Conv2d::square(64, 64, 3, 1, 1),
            TensorShape::chw(64, 56, 56),
        );
        let k1 = dispatch_layer(&l, 1);
        let k8 = dispatch_layer(&l, 8);
        for (a, b) in k1.iter().zip(&k8) {
            assert_eq!(a.name, b.name, "kernel selection must not depend on batch");
            assert_eq!(a.flops * 8, b.flops);
            assert_eq!(a.work_items * 8, b.work_items);
        }
    }

    #[test]
    fn zoo_kernel_name_count_matches_paper_scale() {
        // The paper records ~182 distinct kernels per GPU over the dataset.
        let mut names = HashSet::new();
        for net in dnnperf_dnn::zoo::full_zoo() {
            for ks in dispatch_network(&net, 16) {
                for k in ks {
                    names.insert(k.name);
                }
            }
        }
        let n = names.len();
        assert!((100..300).contains(&n), "distinct kernels: {n}");
    }

    #[test]
    fn ai_bucket_is_batch_invariant_monotone() {
        assert_eq!(ai_bucket(0, 10), 0);
        let lo = ai_bucket(100, 1000);
        let hi = ai_bucket(100_000, 1000);
        assert!(hi > lo);
    }

    #[test]
    fn kernel_counts_are_exact_over_the_zoo() {
        // The pre-sizing counts must agree with what dispatch emits for
        // every layer of every zoo network, forward and backward.
        for net in dnnperf_dnn::zoo::full_zoo() {
            for l in net.layers() {
                let fwd = dispatch_layer(l, 4);
                assert_eq!(fwd.len(), forward_kernel_count(l), "{:?}", l.kind);
                assert_eq!(fwd.capacity(), forward_kernel_count(l).max(fwd.len()));
                let bwd = dispatch_layer_backward(l, 4);
                assert_eq!(bwd.len(), backward_kernel_count(l), "{:?}", l.kind);
            }
        }
    }

    #[test]
    fn training_dispatch_is_forward_then_backward() {
        let net = dnnperf_dnn::zoo::resnet::resnet18();
        let fused = dispatch_network_training(&net, 8);
        for (l, ks) in net.layers().iter().zip(&fused) {
            let expect = forward_kernel_count(l) + backward_kernel_count(l);
            assert_eq!(ks.len(), expect);
            // Exactly one allocation: capacity == final length.
            assert_eq!(ks.capacity(), expect.max(ks.len()));
            let fwd = dispatch_layer(l, 8);
            let bwd = dispatch_layer_backward(l, 8);
            let concat: Vec<_> = fwd.into_iter().chain(bwd).collect();
            assert_eq!(*ks, concat);
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let l = Layer::apply(LayerKind::BatchNorm, TensorShape::chw(4, 4, 4)).unwrap();
        dispatch_layer(&l, 0);
    }
}
