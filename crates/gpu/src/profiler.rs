//! The profiler: runs a network on a (simulated) GPU and produces a
//! [`Trace`], standing in for `torch.cuda.Event` timing plus the PyTorch
//! Profiler's layer-to-kernel mapping.

use crate::hashrng::hash_with;
use crate::memory;
use crate::spec::GpuSpec;
use crate::timing::TimingModel;
use crate::trace::{KernelTrace, LayerTrace, Trace};
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::Network;
use std::error::Error;
use std::fmt;

/// Lognormal sigma of the run-level systematic measurement deviation.
const RUN_SIGMA: f64 = 0.04;

/// Errors produced when a profiling run cannot execute.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The run does not fit in device memory (the paper's cleaned-out
    /// "fail-to-execute experiments").
    OutOfMemory {
        /// Network that failed.
        network: String,
        /// Batch size of the attempted run.
        batch: usize,
        /// Estimated bytes required.
        needed: u64,
        /// Device capacity in bytes.
        available: u64,
    },
    /// A transient measurement failure (driver hiccup, ECC retire, CUDA
    /// launch timeout). Retrying the run is expected to succeed; only
    /// injected by the fault layer ([`crate::fault::FaultyProfiler`]),
    /// never by the clean simulator.
    Transient {
        /// Network that failed.
        network: String,
        /// Batch size of the attempted run.
        batch: usize,
        /// Zero-based attempt index on which the fault fired.
        attempt: u32,
    },
    /// The requested batch size was zero; no kernels can be launched.
    ZeroBatch {
        /// Network of the rejected request.
        network: String,
    },
    /// The network has no layers; there is nothing to measure.
    EmptyNetwork {
        /// Name of the rejected network.
        network: String,
    },
}

impl ProfileError {
    /// Whether retrying the identical run can plausibly succeed.
    ///
    /// Out-of-memory and request-validation failures are deterministic
    /// properties of the workload and permanent; transient faults are, by
    /// definition, worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, ProfileError::Transient { .. })
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::OutOfMemory { network, batch, needed, available } => write!(
                f,
                "out of memory running {network} at batch {batch}: needs {needed} B, device has {available} B"
            ),
            ProfileError::Transient { network, batch, attempt } => write!(
                f,
                "transient profiling failure running {network} at batch {batch} (attempt {attempt})"
            ),
            ProfileError::ZeroBatch { network } => {
                write!(f, "cannot profile {network} at batch 0")
            }
            ProfileError::EmptyNetwork { network } => {
                write!(f, "cannot profile empty network {network}: no layers")
            }
        }
    }
}

impl Error for ProfileError {}

/// Rejects malformed profiling requests with typed errors at the
/// measurement boundary, so every caller (serial, parallel, fault-injected)
/// sees one contract instead of ad-hoc downstream checks.
pub(crate) fn validate_request(net: &Network, batch: usize) -> Result<(), ProfileError> {
    if batch == 0 {
        return Err(ProfileError::ZeroBatch {
            network: net.name().to_string(),
        });
    }
    if net.num_layers() == 0 {
        return Err(ProfileError::EmptyNetwork {
            network: net.name().to_string(),
        });
    }
    Ok(())
}

/// Profiles networks on one GPU.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::resnet::resnet18;
/// use dnnperf_gpu::{GpuSpec, Profiler};
///
/// # fn main() -> Result<(), dnnperf_gpu::ProfileError> {
/// let prof = Profiler::new(GpuSpec::by_name("A100").unwrap());
/// let trace = prof.profile(&resnet18(), 64)?;
/// assert!(trace.e2e_seconds > 0.0);
/// assert_eq!(trace.layers.len(), resnet18().num_layers());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    gpu: GpuSpec,
    timing: TimingModel,
    fusion: crate::dispatch::Fusion,
}

impl Profiler {
    /// Creates a profiler for `gpu` with the canonical ground-truth timing
    /// and no operator fusion (PyTorch eager mode, the paper's setting).
    pub fn new(gpu: GpuSpec) -> Self {
        Profiler {
            gpu,
            timing: TimingModel::new(),
            fusion: crate::dispatch::Fusion::None,
        }
    }

    /// Creates a profiler with an explicit timing model (robustness tests).
    pub fn with_timing(gpu: GpuSpec, timing: TimingModel) -> Self {
        Profiler {
            gpu,
            timing,
            fusion: crate::dispatch::Fusion::None,
        }
    }

    /// Sets the runtime operator-fusion policy the measured workloads run
    /// under (a TensorRT-style deployment instead of eager execution).
    pub fn with_fusion(mut self, fusion: crate::dispatch::Fusion) -> Self {
        self.fusion = fusion;
        self
    }

    /// The GPU this profiler measures on.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Runs `net` at `batch` and returns the measured trace.
    ///
    /// Follows the paper's measurement protocol: the returned times are the
    /// stable post-warmup averages (warm-up transients are not modelled, only
    /// their residual noise).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroBatch`] / [`ProfileError::EmptyNetwork`]
    /// for malformed requests and [`ProfileError::OutOfMemory`] when the
    /// run does not fit in device memory.
    pub fn profile(&self, net: &Network, batch: usize) -> Result<Trace, ProfileError> {
        validate_request(net, batch)?;
        let needed = memory::footprint_bytes(net, batch);
        self.check_memory(net, batch, needed)?;
        let per_layer = crate::dispatch::dispatch_network_with(net, batch, self.fusion);
        let salt = match self.fusion {
            crate::dispatch::Fusion::None => 0x5EED,
            crate::dispatch::Fusion::ConvBnAct => 0xF5ED,
        };
        Ok(self.run(net, batch, &per_layer, salt))
    }

    /// Runs one *training step* of `net` at `batch` (forward + backward +
    /// optimizer update) and returns the measured trace. This is the
    /// paper's stated future-work extension ("extending our models for more
    /// diverse workloads (e.g., training)").
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroBatch`] / [`ProfileError::EmptyNetwork`]
    /// for malformed requests and [`ProfileError::OutOfMemory`] when the
    /// training step (which keeps all activations alive) does not fit in
    /// device memory.
    pub fn profile_training(&self, net: &Network, batch: usize) -> Result<Trace, ProfileError> {
        validate_request(net, batch)?;
        let needed = memory::training_footprint_bytes(net, batch);
        self.check_memory(net, batch, needed)?;
        let per_layer = crate::dispatch::dispatch_network_training(net, batch);
        Ok(self.run(net, batch, &per_layer, 0x7124))
    }

    fn check_memory(&self, net: &Network, batch: usize, needed: u64) -> Result<(), ProfileError> {
        let available = self.gpu.memory_bytes();
        if needed > available {
            return Err(ProfileError::OutOfMemory {
                network: net.name().to_string(),
                batch,
                needed,
                available,
            });
        }
        Ok(())
    }

    fn run(
        &self,
        net: &Network,
        batch: usize,
        per_layer: &[Vec<crate::kernel::KernelDesc>],
        mode_salt: u64,
    ) -> Trace {
        // Run-level systematic deviation (clocks, thermals, co-located
        // load): affects every kernel of one measurement campaign alike and
        // is not predictable from structure — part of any model's error
        // floor, as on real hardware. Keyed by (network, batch, GPU) only:
        // machine conditions do not depend on the execution mode.
        let run_dev = crate::hashrng::lognormal(
            crate::hashrng::hash_with(net.name(), 0x5EED ^ (batch as u64) << 8)
                ^ crate::hashrng::hash_with(&self.gpu.name, 0x0D5),
            RUN_SIGMA,
        );

        let mut layers = Vec::with_capacity(net.num_layers());
        let mut gpu_time = 0.0;
        for (li, (layer, descs)) in net.layers().iter().zip(per_layer).enumerate() {
            let mut kernels = Vec::with_capacity(descs.len());
            for (ki, desc) in descs.iter().enumerate() {
                let key = hash_with(
                    net.name(),
                    mode_salt ^ (batch as u64) ^ ((li as u64) << 20) ^ ((ki as u64) << 40),
                );
                let seconds = self.timing.kernel_time(desc, &self.gpu, key) * run_dev;
                gpu_time += seconds;
                kernels.push(KernelTrace {
                    name: desc.name.clone(),
                    seconds,
                });
            }
            let n = batch as u64;
            layers.push(LayerTrace {
                layer_index: li,
                type_tag: layer.type_tag(),
                flops: layer_flops(layer) * n,
                in_elems: layer.input.elems() as u64 * n,
                out_elems: layer.output.elems() as u64 * n,
                kernels,
            });
        }

        Trace {
            network: net.name().to_string(),
            family: net.family().to_string(),
            batch,
            gpu: self.gpu.name.clone(),
            layers,
            e2e_seconds: gpu_time + self.timing.sync_overhead(&self.gpu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    fn a100() -> Profiler {
        Profiler::new(GpuSpec::by_name("A100").unwrap())
    }

    #[test]
    fn resnet50_e2e_time_is_plausible_at_bs512() {
        // Figure 4's line puts ~4 GFLOPs networks in the tens-to-hundreds of
        // milliseconds at batch 512; our substrate runs a small constant
        // factor slower (see EXPERIMENTS.md) but must stay in that decade.
        let t = a100().profile(&zoo::resnet::resnet50(), 512).unwrap();
        let ms = t.e2e_seconds * 1e3;
        assert!(ms > 10.0 && ms < 1500.0, "ResNet-50 @512 on A100: {ms} ms");
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = a100().profile(&zoo::resnet::resnet18(), 64).unwrap();
        let b = a100().profile(&zoo::resnet::resnet18(), 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn time_roughly_linear_in_batch_when_saturated() {
        // The paper's O3: execution time is linear in batch size once the
        // GPU is fully utilised.
        let p = a100();
        let net = zoo::resnet::resnet50();
        let t128 = p.profile(&net, 128).unwrap().e2e_seconds;
        let t512 = p.profile(&net, 512).unwrap().e2e_seconds;
        let ratio = t512 / t128;
        assert!(ratio > 3.2 && ratio < 4.8, "ratio {ratio}");
    }

    #[test]
    fn small_batch_is_less_efficient() {
        // Achieved throughput at batch 1 is well below batch 256 (Figure 6).
        let p = a100();
        let net = zoo::resnet::resnet50();
        let t1 = p.profile(&net, 1).unwrap();
        let t256 = p.profile(&net, 256).unwrap();
        let tput1 = t1.total_flops() as f64 / t1.e2e_seconds;
        let tput256 = t256.total_flops() as f64 / t256.e2e_seconds;
        assert!(tput256 > 2.0 * tput1, "{tput1} vs {tput256}");
    }

    #[test]
    fn zero_batch_is_a_typed_error() {
        let err = a100().profile(&zoo::resnet::resnet18(), 0).unwrap_err();
        assert!(matches!(err, ProfileError::ZeroBatch { .. }));
        assert!(!err.is_transient());
        let err = a100()
            .profile_training(&zoo::resnet::resnet18(), 0)
            .unwrap_err();
        assert!(matches!(err, ProfileError::ZeroBatch { .. }));
    }

    #[test]
    fn empty_network_is_a_typed_error() {
        use dnnperf_dnn::{Family, Network, TensorShape};
        let empty = Network::from_parts("Empty", Family::Custom, TensorShape::chw(3, 8, 8), vec![]);
        let err = a100().profile(&empty, 32).unwrap_err();
        assert!(matches!(err, ProfileError::EmptyNetwork { .. }));
        assert!(err.to_string().contains("no layers"));
    }

    #[test]
    fn oom_propagates() {
        let p620 = Profiler::new(GpuSpec::by_name("Quadro P620").unwrap());
        let err = p620.profile(&zoo::vgg::vgg16(), 512).unwrap_err();
        assert!(matches!(err, ProfileError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn faster_gpu_runs_faster() {
        let net = zoo::resnet::resnet50();
        let t_a100 = a100().profile(&net, 256).unwrap().e2e_seconds;
        let t_1080 = Profiler::new(GpuSpec::by_name("GTX 1080 Ti").unwrap())
            .profile(&net, 256)
            .unwrap()
            .e2e_seconds;
        assert!(t_1080 > 1.5 * t_a100, "a100 {t_a100}, 1080ti {t_1080}");
    }

    #[test]
    fn layer_to_kernel_mapping_shapes() {
        let t = a100().profile(&zoo::resnet::resnet18(), 32).unwrap();
        assert_eq!(t.layers.len(), zoo::resnet::resnet18().num_layers());
        // Every conv layer launched at least one kernel.
        for l in &t.layers {
            if l.type_tag == "conv" {
                assert!(!l.kernels.is_empty());
            }
        }
        assert!(t.kernel_count() > t.layers.len() / 2);
    }

    #[test]
    fn vgg_more_efficient_than_resnet_per_flop() {
        // Figure 4: VGG sits on a faster line (more time-efficient per FLOP)
        // than ResNet due to its large uniform convolutions.
        let p = a100();
        let r = p.profile(&zoo::resnet::resnet50(), 256).unwrap();
        let v = p.profile(&zoo::vgg::vgg16(), 256).unwrap();
        let r_s_per_gf = r.e2e_seconds / (r.total_flops() as f64 / 1e9);
        let v_s_per_gf = v.e2e_seconds / (v.total_flops() as f64 / 1e9);
        assert!(
            v_s_per_gf < r_s_per_gf,
            "VGG {v_s_per_gf} s/GFLOP vs ResNet {r_s_per_gf} s/GFLOP"
        );
    }
}
