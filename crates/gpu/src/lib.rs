//! GPU measurement substrate for dnnperf.
//!
//! This crate substitutes for the paper's physical GPUs + CUDA/cuDNN +
//! PyTorch Profiler stack. It provides:
//!
//! * [`spec`] — the paper's Table 1 GPU catalogue ([`GpuSpec`]);
//! * [`dispatch`] — a cuDNN-like kernel dispatcher mapping each DNN layer to
//!   the sequence of GPU kernels that executes it (algorithm selection by
//!   layer geometry: implicit 1x1 GEMM, Winograd, im2col+GEMM, FFT, direct,
//!   depthwise, ...);
//! * `timing` (private) — the **hidden ground-truth timing model**: a
//!   roofline `max(compute, memory)` per kernel with per-kernel-family
//!   efficiencies, per-GPU deviations, SM saturation, launch/sync
//!   overheads, and seeded measurement noise;
//! * [`profiler`] — the PyTorch-Profiler stand-in that runs a network at a
//!   batch size on a GPU and returns a [`Trace`] with per-kernel times,
//!   layer-to-kernel mapping and the end-to-end time;
//! * [`memory`] — an out-of-memory screen mirroring the paper's dataset
//!   cleaning of fail-to-execute runs.
//!
//! The prediction crates never read `timing`'s internal parameters: they
//! only see traces, exactly like the paper's predictor only sees measured
//! CSVs. The `timing` and `fault` modules are therefore **private**: the
//! predictor-visible surface is exactly the crate-root re-exports below
//! (plus the public `dispatch`/`kernel`/`memory`/`spec`/`profiler`/`trace`
//! modules, which mirror knowledge a real user has — cuDNN's dispatch
//! rules, device datasheets, profiler traces). `dnnperf-lint`'s
//! oracle-isolation pass enforces the same boundary statically, so even a
//! `pub(crate)` leak reintroduced here would be caught at the import site.

#![warn(missing_docs)]

pub mod dispatch;
mod fault;
pub mod kernel;
pub mod memory;
pub mod profiler;
pub mod spec;
mod timing;
pub mod trace;

/// The deterministic hash/PRNG machinery (promoted to `dnnperf-testkit` so
/// the property-testing harness can share it; re-exported here because the
/// timing model's reproducible parameters are derived from it).
pub use dnnperf_testkit::hashrng;

pub use dispatch::Fusion;
pub use fault::{Corruption, FaultKinds, FaultPlan, FaultyProfiler, InjectedFault};
pub use kernel::{KernelDesc, KernelRole};
pub use profiler::{ProfileError, Profiler};
pub use spec::GpuSpec;
pub use timing::TimingModel;
pub use trace::{KernelTrace, LayerTrace, Trace};
