//! The hidden ground-truth kernel timing model.
//!
//! This module substitutes for physical GPU execution. Per kernel launch it
//! prices a roofline:
//!
//! ```text
//! t = max( actual_bytes / (eff_mem * dev * BW * sat),
//!          actual_flops / (eff_comp * dev * PEAK * sat) )
//!     * measurement_noise  +  launch_overhead
//! ```
//!
//! * `actual_bytes = kappa(family) * theoretical_bytes` — real kernels move a
//!   family-specific multiple of the theoretical minimum traffic (im2col
//!   replication, GEMM re-reads, transform buffers). This is what makes the
//!   *measured* "bandwidth efficiency" computed from theoretical bytes come
//!   out around 10% and stay stable across GPUs (the paper's O6/Figure 9).
//! * `eff_mem`/`eff_comp` are per-kernel-name efficiencies drawn (via hash)
//!   from family-specific ranges, GPU-independent.
//! * `dev` is a small per-(kernel, GPU) lognormal deviation — the reason the
//!   paper's Inter-GPU model bottoms out around 15% error.
//! * `sat` models SM under-utilisation when a launch has too few thread
//!   blocks to fill the device (the paper's O1 small-workload deviation and
//!   Figure 6 batch-size saturation).
//!
//! **The prediction crates must never read these parameters.** They see only
//! the produced times, as the paper's predictor sees only measured CSVs.

use crate::hashrng::{hash_with, lognormal, uniform};
use crate::kernel::{KernelDesc, KernelFamily};
use crate::spec::GpuSpec;

/// Minimum duration of any kernel (scheduling floor).
const MIN_KERNEL_SECONDS: f64 = 1.5e-6;

/// Scale (in waves of thread blocks per SM) of the saturation curve.
const SATURATION_WAVES: f64 = 8.0;

/// Shape constant of the hyperbolic saturation curve: at one full wave the
/// device reaches `1 / (1 + SATURATION_KNEE)` of peak.
const SATURATION_KNEE: f64 = 0.25;

/// Hidden per-family pricing parameters.
#[derive(Debug, Clone, Copy)]
struct FamilyParams {
    /// Actual-to-theoretical traffic multiplier.
    kappa: f64,
    /// DRAM efficiency range sampled per kernel name.
    eff_mem: (f64, f64),
    /// Compute efficiency range sampled per kernel name.
    eff_comp: (f64, f64),
}

fn family_params(f: KernelFamily) -> FamilyParams {
    use KernelFamily::*;
    let p = |kappa, eff_mem, eff_comp| FamilyParams {
        kappa,
        eff_mem,
        eff_comp,
    };
    match f {
        Im2col => p(10.0, (0.60, 0.85), (0.02, 0.05)),
        GemmConv => p(10.5, (0.55, 0.85), (0.13, 0.26)),
        Gemm1x1 => p(7.0, (0.60, 0.90), (0.13, 0.26)),
        WinogradIn => p(6.0, (0.60, 0.85), (0.05, 0.10)),
        WinogradGemm => p(7.7, (0.55, 0.85), (0.16, 0.29)),
        WinogradOut => p(6.0, (0.60, 0.85), (0.05, 0.10)),
        FftIn => p(8.0, (0.55, 0.80), (0.05, 0.10)),
        FftGemm => p(7.0, (0.55, 0.80), (0.13, 0.23)),
        FftOut => p(8.0, (0.55, 0.80), (0.05, 0.10)),
        DirectConv => p(18.0, (0.50, 0.80), (0.05, 0.12)),
        DepthwiseConv => p(2.5, (0.50, 0.80), (0.02, 0.08)),
        GroupedGemm => p(7.5, (0.55, 0.85), (0.10, 0.21)),
        GemmFc => p(2.5, (0.55, 0.85), (0.15, 0.30)),
        BiasAct => p(1.0, (0.70, 0.95), (0.01, 0.05)),
        BnInf => p(1.0, (0.65, 0.90), (0.01, 0.05)),
        Pooling => p(1.1, (0.60, 0.85), (0.01, 0.05)),
        Elementwise => p(1.0, (0.70, 0.95), (0.01, 0.05)),
        AddTensor => p(1.0, (0.70, 0.95), (0.01, 0.05)),
        ConcatCopy => p(2.0, (0.65, 0.90), (0.01, 0.05)),
        Reduce => p(1.0, (0.60, 0.85), (0.01, 0.05)),
        Softmax => p(2.0, (0.55, 0.85), (0.01, 0.05)),
        LayerNormK => p(2.0, (0.55, 0.85), (0.01, 0.05)),
        EmbedLookup => p(1.5, (0.40, 0.70), (0.01, 0.05)),
        BatchedGemm => p(6.0, (0.55, 0.85), (0.15, 0.30)),
        ShuffleCopy => p(2.0, (0.65, 0.90), (0.01, 0.05)),
        // Training backward kernels: gradient GEMMs behave like their
        // forward counterparts with somewhat worse locality; the
        // element-wise/statistics backward passes are plain streams.
        DgradConv => p(11.0, (0.55, 0.85), (0.12, 0.24)),
        WgradConv => p(12.0, (0.50, 0.80), (0.10, 0.22)),
        BnBwd => p(1.5, (0.60, 0.85), (0.01, 0.05)),
        PoolBwd => p(1.5, (0.55, 0.80), (0.01, 0.05)),
        ElementwiseBwd => p(1.5, (0.70, 0.95), (0.01, 0.05)),
        OptimizerStep => p(3.0, (0.65, 0.90), (0.01, 0.05)),
    }
}

/// Family-specific scale on the per-shape deviation: dense GEMM and
/// streaming kernels are heavily tuned and behave smoothly across problem
/// shapes, while convolution algorithms suffer tile-quantisation cliffs.
fn shape_scale(f: KernelFamily) -> f64 {
    use KernelFamily::*;
    match f {
        GemmFc | BatchedGemm => 0.2,
        BiasAct | BnInf | Elementwise | AddTensor | ConcatCopy | Reduce | Softmax | LayerNormK
        | ShuffleCopy | EmbedLookup | Pooling | BnBwd | PoolBwd | ElementwiseBwd
        | OptimizerStep => 0.5,
        _ => 1.0,
    }
}

/// The ground-truth timing model: deterministic given its seed.
#[derive(Debug, Clone)]
pub struct TimingModel {
    seed: u64,
    /// Lognormal sigma of the per-(kernel, GPU) efficiency deviation.
    dev_sigma: f64,
    /// Lognormal sigma of the per-(kernel, problem shape) deviation: the
    /// same kernel is not perfectly linear in its driver variable across
    /// layer shapes (tile quantisation, cache behaviour). GPU-independent.
    shape_sigma: f64,
    /// Lognormal sigma of residual measurement noise (after the paper's
    /// 30-batch averaging).
    noise_sigma: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new()
    }
}

impl TimingModel {
    /// The canonical hidden ground truth used by the whole evaluation.
    pub fn new() -> Self {
        TimingModel {
            seed: 0x00d1_ce00_c0ff_ee00,
            dev_sigma: 0.22,
            shape_sigma: 0.18,
            noise_sigma: 0.02,
        }
    }

    /// An alternative universe with different hidden parameters; used by
    /// robustness tests to show the predictor is not tuned to one seed.
    pub fn with_seed(seed: u64) -> Self {
        TimingModel {
            seed,
            ..TimingModel::new()
        }
    }

    /// The seed identifying this measurement universe.
    ///
    /// This is *not* a pricing parameter leak: the seed carries no
    /// information about efficiencies, deviations or overheads — it only
    /// names which universe produced a set of measurements. The dataset
    /// cache keys cached collections on it so measurements from different
    /// universes can never be confused, while the predictors still see
    /// nothing but the produced times.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-kernel CPU launch overhead on this GPU's host, in seconds.
    pub fn launch_overhead(&self, gpu: &GpuSpec) -> f64 {
        3.0e-6 * uniform(hash_with(&gpu.name, self.seed ^ 0x11), 0.8, 1.3)
    }

    /// Per-batch CPU/GPU synchronisation overhead, in seconds.
    pub fn sync_overhead(&self, gpu: &GpuSpec) -> f64 {
        40.0e-6 * uniform(hash_with(&gpu.name, self.seed ^ 0x22), 0.8, 1.4)
    }

    /// SM saturation factor in `(0, 1)` for a launch of `blocks` blocks:
    /// a smooth hyperbolic ramp that approaches full utilisation once the
    /// launch spans a few waves of thread blocks.
    pub fn saturation(&self, blocks: u64, gpu: &GpuSpec) -> f64 {
        let x = blocks as f64 / (SATURATION_WAVES * gpu.sm_count as f64);
        x / (x + SATURATION_KNEE)
    }

    /// Prices one kernel launch on `gpu`. `noise_key` must identify the
    /// measurement (network, batch, layer, kernel index) so repeated
    /// measurements are reproducible while distinct ones decorrelate.
    pub fn kernel_time(&self, k: &KernelDesc, gpu: &GpuSpec, noise_key: u64) -> f64 {
        let p = family_params(k.family);
        let hk = hash_with(&k.name, self.seed);
        let eff_mem = uniform(
            hash_with(&k.name, self.seed ^ 0xA1),
            p.eff_mem.0,
            p.eff_mem.1,
        );
        let eff_comp = uniform(
            hash_with(&k.name, self.seed ^ 0xA2),
            p.eff_comp.0,
            p.eff_comp.1,
        );
        let dev_key = hash_with(&gpu.name, hk);
        let dev = lognormal(dev_key, self.dev_sigma);
        let shape_key = hk ^ k.flops.rotate_left(17) ^ k.bytes.rotate_left(41) ^ k.work_items;
        let shape_dev = lognormal(
            crate::hashrng::splitmix(shape_key),
            self.shape_sigma * shape_scale(k.family),
        );
        let sat = self.saturation(k.blocks(), gpu);

        let t_mem = (k.bytes as f64 * p.kappa) / (eff_mem * dev * gpu.bandwidth_bytes() * sat);
        let t_comp = k.flops as f64 / (eff_comp * dev * gpu.peak_flops() * sat);
        let t = (t_mem.max(t_comp) * shape_dev).max(MIN_KERNEL_SECONDS);
        let noise = lognormal(hash_with(&k.name, self.seed ^ noise_key), self.noise_sigma);
        t * noise + self.launch_overhead(gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelRole;

    fn gpu(name: &str) -> GpuSpec {
        GpuSpec::by_name(name).unwrap()
    }

    fn kernel(family: KernelFamily, flops: u64, bytes: u64, work: u64) -> KernelDesc {
        KernelDesc {
            name: format!("{}_test", family.base_name()),
            family,
            role: KernelRole::Main,
            flops,
            bytes,
            work_items: work,
        }
    }

    #[test]
    fn deterministic_given_same_key() {
        let m = TimingModel::new();
        let k = kernel(KernelFamily::BnInf, 1 << 20, 1 << 22, 1 << 20);
        let a = m.kernel_time(&k, &gpu("A100"), 42);
        let b = m.kernel_time(&k, &gpu("A100"), 42);
        assert_eq!(a, b);
        let c = m.kernel_time(&k, &gpu("A100"), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn memory_bound_kernel_scales_with_bytes() {
        let m = TimingModel::new();
        let g = gpu("A100");
        let small = kernel(KernelFamily::BnInf, 1 << 20, 100 << 20, 100 << 18);
        let big = kernel(KernelFamily::BnInf, 1 << 21, 200 << 20, 200 << 18);
        let ts = m.kernel_time(&small, &g, 1);
        let tb = m.kernel_time(&big, &g, 1);
        let ratio = tb / ts;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn faster_memory_means_faster_kernels() {
        let m = TimingModel::new();
        // Saturated, memory-bound kernel with the SAME name on both GPUs.
        let k = kernel(KernelFamily::AddTensor, 1 << 20, 1 << 30, 1 << 28);
        let t_a100 = m.kernel_time(&k, &gpu("A100"), 1);
        let t_1080 = m.kernel_time(&k, &gpu("GTX 1080 Ti"), 1);
        assert!(t_1080 > 2.0 * t_a100, "a100 {t_a100}, 1080ti {t_1080}");
    }

    #[test]
    fn unsaturated_launch_is_slower_per_byte() {
        let m = TimingModel::new();
        let g = gpu("A100");
        // 8 blocks on a 108-SM GPU: far from saturation.
        let tiny = kernel(KernelFamily::AddTensor, 1 << 10, 1 << 14, 1 << 13);
        let sat_tiny = m.saturation(tiny.blocks(), &g);
        assert!(sat_tiny < 0.3, "{sat_tiny}");
        let huge = kernel(KernelFamily::AddTensor, 1 << 20, 1 << 30, 1 << 28);
        let sat_huge = m.saturation(huge.blocks(), &g);
        assert!(sat_huge > 0.99 && sat_huge < 1.0, "{sat_huge}");
        assert!(sat_tiny < sat_huge);
    }

    #[test]
    fn compute_bound_kernel_ignores_bandwidth() {
        let m = TimingModel::new();
        // Enormous FLOPs, tiny bytes: compute bound everywhere.
        let k = kernel(KernelFamily::GemmFc, 1 << 42, 1 << 20, 1 << 28);
        let t_a40 = m.kernel_time(&k, &gpu("A40"), 1); // 37.4 TFLOPS
        let t_titan = m.kernel_time(&k, &gpu("TITAN RTX"), 1); // 16.3 TFLOPS
        assert!(t_titan > 1.5 * t_a40);
    }

    #[test]
    fn launch_overhead_floor() {
        let m = TimingModel::new();
        let k = kernel(KernelFamily::Elementwise, 1, 1, 1);
        let t = m.kernel_time(&k, &gpu("V100"), 7);
        assert!(t >= MIN_KERNEL_SECONDS);
        assert!(t < 50e-6, "tiny kernel should cost microseconds, got {t}");
    }

    #[test]
    fn measured_bandwidth_efficiency_is_paperlike() {
        // theoretical_bytes / (t * BW) should land near ~10% for the
        // conv GEMM families (Figure 9's stable band), on every GPU.
        let m = TimingModel::new();
        for gname in ["A100", "A40", "GTX 1080 Ti", "TITAN RTX"] {
            let g = gpu(gname);
            let k = kernel(KernelFamily::GemmConv, 1 << 28, 1 << 28, 1 << 26);
            let t = m.kernel_time(&k, &g, 3);
            let eff = (1u64 << 28) as f64 / (t * g.bandwidth_bytes());
            assert!(eff > 0.03 && eff < 0.6, "{gname}: eff {eff}");
        }
    }

    #[test]
    fn different_seeds_give_different_universes() {
        let a = TimingModel::new();
        let b = TimingModel::with_seed(99);
        let k = kernel(KernelFamily::GemmConv, 1 << 28, 1 << 28, 1 << 26);
        assert_ne!(
            a.kernel_time(&k, &gpu("A100"), 1),
            b.kernel_time(&k, &gpu("A100"), 1)
        );
    }
}
