//! Deterministic hash-based pseudo-randomness.
//!
//! The ground-truth timing model needs *reproducible* per-kernel and per-GPU
//! parameters: the same (kernel, GPU) pair must always get the same hidden
//! efficiency, and the same (kernel, network, batch) measurement must always
//! return the same noisy value — otherwise dataset deduplication and the
//! paper's repeat-measurement protocol would be meaningless. We therefore
//! derive everything from FNV-1a string hashing finalized with SplitMix64
//! rather than from a stateful RNG.

/// FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structured inputs.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a string combined with a numeric salt.
pub fn hash_with(s: &str, salt: u64) -> u64 {
    splitmix(fnv1a(s.as_bytes()) ^ splitmix(salt))
}

/// Uniform sample in `[0, 1)` derived from a hash.
pub fn unit(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform sample in `[lo, hi)` derived from a hash.
pub fn uniform(h: u64, lo: f64, hi: f64) -> f64 {
    lo + unit(h) * (hi - lo)
}

/// Standard normal sample derived from a hash (Box–Muller on two
/// decorrelated sub-hashes).
pub fn normal(h: u64) -> f64 {
    let u1 = unit(splitmix(h ^ 0xA5A5_A5A5_A5A5_A5A5)).max(1e-12);
    let u2 = unit(splitmix(h ^ 0x5A5A_5A5A_5A5A_5A5A));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal multiplicative factor `exp(sigma * z)` with unit median.
pub fn lognormal(h: u64, sigma: f64) -> f64 {
    (sigma * normal(h)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_with("sgemm", 7), hash_with("sgemm", 7));
        assert_ne!(hash_with("sgemm", 7), hash_with("sgemm", 8));
        assert_ne!(hash_with("sgemm", 7), hash_with("dgemm", 7));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit(splitmix(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_range() {
        for i in 0..1000u64 {
            let u = uniform(splitmix(i), 2.0, 3.0);
            assert!((2.0..3.0).contains(&u));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit(splitmix(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_has_unit_scale() {
        let n = 10_000u64;
        let samples: Vec<f64> = (0..n).map(|i| normal(splitmix(i.wrapping_mul(2654435761)))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut samples: Vec<f64> = (0..9999u64)
            .map(|i| lognormal(splitmix(i.wrapping_mul(0x9E3779B9)), 0.1))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[samples.len() / 2];
        assert!((med - 1.0).abs() < 0.02, "median {med}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }
}
