//! GPU kernel descriptors.
//!
//! A [`KernelDesc`] is what the dispatcher emits for a layer: a concrete
//! named kernel (the name plays the role of the cuDNN kernel symbol that the
//! PyTorch Profiler records) together with the work it performs. The hidden
//! timing model prices a descriptor; the predictor only ever sees the *name*
//! and the measured time.

use std::fmt;

/// The implementation family a kernel belongs to. Families group kernels
/// that share an algorithm and therefore share hidden efficiency
/// characteristics; individual kernel names within a family (tile variants)
/// perturb those characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelFamily {
    /// im2col input expansion (pre-processing).
    Im2col,
    /// GEMM over an im2col buffer (main convolution work).
    GemmConv,
    /// Implicit GEMM for 1x1 convolutions.
    Gemm1x1,
    /// Winograd input tile transform (pre-processing).
    WinogradIn,
    /// Winograd element-wise GEMM (main work, reduced multiplications).
    WinogradGemm,
    /// Winograd output tile transform (post-processing).
    WinogradOut,
    /// FFT forward transform (pre-processing).
    FftIn,
    /// FFT point-wise complex multiply (main work).
    FftGemm,
    /// FFT inverse transform (post-processing).
    FftOut,
    /// Direct (nested-loop) convolution.
    DirectConv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Grouped 1x1 convolution GEMM.
    GroupedGemm,
    /// Fully connected GEMM.
    GemmFc,
    /// Bias addition epilogue.
    BiasAct,
    /// Batch normalization (inference, spatial).
    BnInf,
    /// 2-D pooling.
    Pooling,
    /// Point-wise activation.
    Elementwise,
    /// Element-wise tensor addition (residual merge).
    AddTensor,
    /// Concatenation copy.
    ConcatCopy,
    /// Spatial reduction (global average pooling).
    Reduce,
    /// Softmax.
    Softmax,
    /// Layer normalization.
    LayerNormK,
    /// Embedding table gather.
    EmbedLookup,
    /// Batched GEMM (attention).
    BatchedGemm,
    /// Channel shuffle copy.
    ShuffleCopy,
    /// Convolution data-gradient GEMM (training backward pass).
    DgradConv,
    /// Convolution weight-gradient GEMM (training backward pass).
    WgradConv,
    /// Batch normalization backward.
    BnBwd,
    /// Pooling backward.
    PoolBwd,
    /// Point-wise activation backward.
    ElementwiseBwd,
    /// Optimizer weight update (SGD step).
    OptimizerStep,
}

impl KernelFamily {
    /// The base symbol name of the family, styled after real cuDNN/cuBLAS
    /// kernel names.
    pub fn base_name(&self) -> &'static str {
        match self {
            KernelFamily::Im2col => "im2col_kernel",
            KernelFamily::GemmConv => "implicit_convolve_sgemm",
            KernelFamily::Gemm1x1 => "conv1x1_implicit_gemm",
            KernelFamily::WinogradIn => "winograd_transform_input",
            KernelFamily::WinogradGemm => "winograd_fwd_sgemm",
            KernelFamily::WinogradOut => "winograd_transform_output",
            KernelFamily::FftIn => "fft2d_r2c",
            KernelFamily::FftGemm => "fft2d_pointwise_cgemm",
            KernelFamily::FftOut => "fft2d_c2r",
            KernelFamily::DirectConv => "explicit_convolve_dgrad",
            KernelFamily::DepthwiseConv => "depthwise_fprop",
            KernelFamily::GroupedGemm => "grouped_conv1x1_sgemm",
            KernelFamily::GemmFc => "ampere_sgemm_fc",
            KernelFamily::BiasAct => "bias_activation_epilogue",
            KernelFamily::BnInf => "bn_fw_inf_1C11_kernel",
            KernelFamily::Pooling => "pooling_fw_4d",
            KernelFamily::Elementwise => "vectorized_elementwise",
            KernelFamily::AddTensor => "add_tensor_kernel",
            KernelFamily::ConcatCopy => "cat_array_batched_copy",
            KernelFamily::Reduce => "reduce_spatial_kernel",
            KernelFamily::Softmax => "softmax_warp_forward",
            KernelFamily::LayerNormK => "layer_norm_fwd",
            KernelFamily::EmbedLookup => "embedding_bag_gather",
            KernelFamily::BatchedGemm => "cublas_batched_sgemm",
            KernelFamily::ShuffleCopy => "channel_shuffle_ncdhw",
            KernelFamily::DgradConv => "convolve_dgrad_sgemm",
            KernelFamily::WgradConv => "convolve_wgrad_sgemm",
            KernelFamily::BnBwd => "bn_bwd_1C11_kernel",
            KernelFamily::PoolBwd => "pooling_bwd_4d",
            KernelFamily::ElementwiseBwd => "vectorized_elementwise_bwd",
            KernelFamily::OptimizerStep => "sgd_momentum_update",
        }
    }

    /// All families, for exhaustive iteration in tests and parameter tables.
    pub fn all() -> &'static [KernelFamily] {
        use KernelFamily::*;
        &[
            Im2col,
            GemmConv,
            Gemm1x1,
            WinogradIn,
            WinogradGemm,
            WinogradOut,
            FftIn,
            FftGemm,
            FftOut,
            DirectConv,
            DepthwiseConv,
            GroupedGemm,
            GemmFc,
            BiasAct,
            BnInf,
            Pooling,
            Elementwise,
            AddTensor,
            ConcatCopy,
            Reduce,
            Softmax,
            LayerNormK,
            EmbedLookup,
            BatchedGemm,
            ShuffleCopy,
            DgradConv,
            WgradConv,
            BnBwd,
            PoolBwd,
            ElementwiseBwd,
            OptimizerStep,
        ]
    }
}

impl fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.base_name())
    }
}

/// The position of a kernel within its layer's cuDNN-style
/// pre-process / compute / post-process pipeline (the paper's O5).
///
/// The ground truth uses this taxonomy to shape the data; the predictor must
/// *rediscover* it from correlations and never reads this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelRole {
    /// Works on the layer input (paper: input-driven).
    Pre,
    /// Performs the layer operation (paper: operation-driven).
    Main,
    /// Works on the layer output (paper: output-driven).
    Post,
}

/// A dispatched kernel: name, family, role and the per-launch work counts
/// (batch dimension already applied).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Concrete kernel symbol, e.g.
    /// `"implicit_convolve_sgemm_k3_c64_ai32"`.
    pub name: String,
    /// Implementation family.
    pub family: KernelFamily,
    /// Pipeline role.
    pub role: KernelRole,
    /// Floating point operations this launch performs.
    pub flops: u64,
    /// Theoretical bytes this launch touches.
    pub bytes: u64,
    /// Independent work items (used to derive the thread-block count for the
    /// SM saturation model).
    pub work_items: u64,
}

impl KernelDesc {
    /// Thread blocks launched, at 1024 work items per block.
    pub fn blocks(&self) -> u64 {
        self.work_items.div_ceil(1024).max(1)
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} FLOPs, {} B)", self.name, self.flops, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            KernelFamily::all().iter().map(|f| f.base_name()).collect();
        assert_eq!(names.len(), KernelFamily::all().len());
    }

    #[test]
    fn blocks_round_up() {
        let mut k = KernelDesc {
            name: "x".into(),
            family: KernelFamily::BnInf,
            role: KernelRole::Pre,
            flops: 0,
            bytes: 0,
            work_items: 1025,
        };
        assert_eq!(k.blocks(), 2);
        k.work_items = 0;
        assert_eq!(k.blocks(), 1);
        k.work_items = 1024;
        assert_eq!(k.blocks(), 1);
    }
}
