//! Device memory footprint estimation and out-of-memory screening.
//!
//! The paper cleans its dataset by "removing the duplications and
//! fail-to-execute experiments (e.g., out-of-memory error)". This module
//! provides the corresponding screen: a coarse but monotone footprint
//! estimate compared against the GPU's memory capacity.

use crate::spec::GpuSpec;
use dnnperf_dnn::flops::BYTES_PER_ELEM;
use dnnperf_dnn::{LayerKind, Network};

/// Bytes reserved by the runtime (CUDA context, cuDNN handles, allocator
/// slack).
const RUNTIME_RESERVED_BYTES: u64 = 600_000_000;

/// Workspace cap applied by the library (real cuDNN bounds its im2col /
/// FFT workspaces).
const WORKSPACE_CAP_BYTES: u64 = 1_000_000_000;

/// Allocator overhead factor on activations.
const ACTIVATION_SLACK: f64 = 1.2;

/// Estimated device memory footprint of running `net` at batch size `batch`.
///
/// Counts model parameters, the peak live activation set scaled by the batch
/// size, the (capped) convolution workspace, and fixed runtime reservations.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::resnet::resnet50;
/// use dnnperf_gpu::memory::footprint_bytes;
///
/// let net = resnet50();
/// assert!(footprint_bytes(&net, 512) > footprint_bytes(&net, 8));
/// ```
pub fn footprint_bytes(net: &Network, batch: usize) -> u64 {
    let n = batch as u64;
    let act = (net.peak_activation_bytes() as f64 * n as f64 * ACTIVATION_SLACK) as u64;
    net.param_bytes() + act + workspace_bytes(net, batch) + RUNTIME_RESERVED_BYTES
}

/// Estimated convolution workspace: the largest im2col expansion buffer any
/// convolution needs, capped at the library limit.
pub fn workspace_bytes(net: &Network, batch: usize) -> u64 {
    let n = batch as u64;
    let max_expansion = net
        .layers()
        .iter()
        .filter_map(|l| match l.kind {
            LayerKind::Conv2d(c) if !c.is_pointwise() && !c.is_depthwise() => {
                let per_sample = l.input.elems() as u64 * (c.kh * c.kw) as u64;
                Some(per_sample * n * BYTES_PER_ELEM)
            }
            _ => None,
        })
        .max()
        .unwrap_or(0);
    max_expansion.min(WORKSPACE_CAP_BYTES)
}

/// Returns `true` if running `net` at `batch` fits in `gpu`'s memory.
pub fn fits(net: &Network, batch: usize, gpu: &GpuSpec) -> bool {
    footprint_bytes(net, batch) <= gpu.memory_bytes()
}

/// Estimated device memory footprint of a *training* step: backward passes
/// keep every activation alive and the optimizer holds gradients and
/// momentum alongside the weights.
pub fn training_footprint_bytes(net: &Network, batch: usize) -> u64 {
    let n = batch as u64;
    let all_activations: u64 = net
        .layers()
        .iter()
        .map(|l| l.output.elems() as u64)
        .sum::<u64>()
        * dnnperf_dnn::flops::BYTES_PER_ELEM;
    net.param_bytes() * 3
        + (all_activations as f64 * n as f64 * ACTIVATION_SLACK) as u64
        + workspace_bytes(net, batch)
        + RUNTIME_RESERVED_BYTES
}

/// Returns `true` if a training step of `net` at `batch` fits on `gpu`.
pub fn fits_training(net: &Network, batch: usize, gpu: &GpuSpec) -> bool {
    training_footprint_bytes(net, batch) <= gpu.memory_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    #[test]
    fn resnet50_fits_on_a100_at_512() {
        let net = zoo::resnet::resnet50();
        let a100 = GpuSpec::by_name("A100").unwrap();
        assert!(fits(&net, 512, &a100));
    }

    #[test]
    fn most_networks_oom_on_p620_at_512() {
        // The 2 GB Quadro P620 cannot hold large-batch ImageNet inference.
        let p620 = GpuSpec::by_name("Quadro P620").unwrap();
        assert!(!fits(&zoo::resnet::resnet50(), 512, &p620));
        assert!(!fits(&zoo::vgg::vgg16(), 512, &p620));
    }

    #[test]
    fn small_batches_fit_where_large_do_not() {
        let net = zoo::vgg::vgg16();
        let v100 = GpuSpec::by_name("V100").unwrap();
        assert!(fits(&net, 8, &v100));
        assert!(!fits(&net, 512, &v100), "VGG-16 @ 512 needs > 16 GB");
    }

    #[test]
    fn footprint_monotone_in_batch() {
        let net = zoo::mobilenet::mobilenet_v2(1.0, 1.0);
        let mut prev = 0;
        for bs in [1, 4, 16, 64, 256] {
            let f = footprint_bytes(&net, bs);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn workspace_is_capped() {
        let net = zoo::vgg::vgg16();
        assert!(workspace_bytes(&net, 512) <= WORKSPACE_CAP_BYTES);
    }
}
