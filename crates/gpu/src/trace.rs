//! Profiler traces: the layer-to-kernel mapping with measured times
//! (the stand-in for the paper's PyTorch Profiler output, Figure 2).

/// One timed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Kernel symbol name.
    pub name: String,
    /// Measured execution time in seconds (averaged over the measurement
    /// batches, per the paper's protocol).
    pub seconds: f64,
}

/// One layer's execution record: static work descriptors plus the kernels it
/// launched.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Index of the layer within the network.
    pub layer_index: usize,
    /// Layer type tag (`"conv"`, `"bn"`, ...).
    pub type_tag: &'static str,
    /// Theoretical FLOPs for the whole batch.
    pub flops: u64,
    /// Input size `N*C*H*W` (total input elements for the batch).
    pub in_elems: u64,
    /// Output size `N*C*H*W` (total output elements for the batch).
    pub out_elems: u64,
    /// Kernels launched for this layer, in order.
    pub kernels: Vec<KernelTrace>,
}

impl LayerTrace {
    /// Total GPU time of the layer (sum of its kernels), in seconds.
    pub fn seconds(&self) -> f64 {
        self.kernels.iter().map(|k| k.seconds).sum()
    }
}

/// A complete profiled run of one network at one batch size on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Network display name.
    pub network: String,
    /// Network family tag.
    pub family: String,
    /// Batch size.
    pub batch: usize,
    /// GPU name.
    pub gpu: String,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerTrace>,
    /// Measured end-to-end batch time in seconds (GPU time plus CPU-side
    /// synchronisation overhead).
    pub e2e_seconds: f64,
}

impl Trace {
    /// Total GPU kernel time in seconds.
    pub fn gpu_seconds(&self) -> f64 {
        self.layers.iter().map(LayerTrace::seconds).sum()
    }

    /// Number of kernel launches in the run.
    pub fn kernel_count(&self) -> usize {
        self.layers.iter().map(|l| l.kernels.len()).sum()
    }

    /// Total theoretical FLOPs of the run.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            network: "n".into(),
            family: "custom".into(),
            batch: 2,
            gpu: "A100".into(),
            layers: vec![
                LayerTrace {
                    layer_index: 0,
                    type_tag: "conv",
                    flops: 100,
                    in_elems: 10,
                    out_elems: 20,
                    kernels: vec![
                        KernelTrace {
                            name: "a".into(),
                            seconds: 1.0,
                        },
                        KernelTrace {
                            name: "b".into(),
                            seconds: 2.0,
                        },
                    ],
                },
                LayerTrace {
                    layer_index: 1,
                    type_tag: "bn",
                    flops: 7,
                    in_elems: 20,
                    out_elems: 20,
                    kernels: vec![KernelTrace {
                        name: "c".into(),
                        seconds: 0.5,
                    }],
                },
            ],
            e2e_seconds: 3.6,
        }
    }

    #[test]
    fn aggregations() {
        let t = sample();
        assert_eq!(t.gpu_seconds(), 3.5);
        assert_eq!(t.kernel_count(), 3);
        assert_eq!(t.total_flops(), 107);
        assert_eq!(t.layers[0].seconds(), 3.0);
    }
}
