//! Deterministic fault injection around the profiler.
//!
//! On real hardware, profiling campaigns fail in ways our simulator never
//! does: driver hiccups abort a run, a co-located job turns one measurement
//! into a straggler, ECC or clock glitches corrupt a timing. The paper's
//! pipeline (and Habitat-style runtime predictors generally) must survive
//! all of these. This module makes those failure modes *reproducible*: a
//! seeded [`FaultPlan`] decides, purely from
//! `(seed, gpu, network, batch, attempt)`, whether a given profiling
//! attempt fails transiently, straggles, panics, or returns corrupted
//! times — without ever touching the hidden timing model.
//!
//! Two properties make the plan compatible with the collection engine's
//! byte-identical-output invariant:
//!
//! 1. **Attempt-keyed faults.** The decision depends on the attempt index,
//!    so a retried job sees an *independent* fault draw — not the same
//!    fault forever.
//! 2. **Bounded depth.** Once `attempt >= max_faulty_attempts`, the plan
//!    always answers "no fault". A retry policy with at least
//!    `max_faulty_attempts` retries therefore deterministically converges
//!    to the clean measurement, which is bit-identical to the fault-free
//!    run because the underlying profiler is deterministic.

use crate::hashrng::{hash_with, splitmix, unit};
use crate::profiler::{ProfileError, Profiler};
use crate::trace::Trace;
use dnnperf_dnn::Network;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// How a corrupted measurement is damaged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// One kernel time becomes NaN (propagates into the e2e sum).
    Nan,
    /// One kernel time becomes +inf.
    Inf,
    /// One kernel time flips negative.
    Negative,
    /// One kernel time is multiplied by the factor (a silent outlier:
    /// finite and positive, so it survives the validity screen and must be
    /// caught statistically downstream).
    Scale(f64),
}

/// A single injected fault for one profiling attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// The attempt fails with [`ProfileError::Transient`].
    Transient,
    /// The attempt succeeds but only after the given extra wall-time.
    Straggler(Duration),
    /// The attempt succeeds but the returned trace is damaged.
    Corrupt(Corruption),
    /// The attempt panics (a crashed worker process).
    Panic,
}

/// Which fault kinds a plan may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKinds {
    /// Allow [`InjectedFault::Transient`].
    pub transient: bool,
    /// Allow [`InjectedFault::Straggler`].
    pub straggler: bool,
    /// Allow [`InjectedFault::Corrupt`].
    pub corrupt: bool,
    /// Allow [`InjectedFault::Panic`].
    pub panic: bool,
}

impl FaultKinds {
    /// Only transient errors and stragglers: every fault is recoverable by
    /// retrying, so collection output must be byte-identical to fault-free.
    pub fn transient_only() -> Self {
        FaultKinds {
            transient: true,
            straggler: true,
            corrupt: false,
            panic: false,
        }
    }

    /// Everything at once (chaos testing).
    pub fn chaos() -> Self {
        FaultKinds {
            transient: true,
            straggler: true,
            corrupt: true,
            panic: true,
        }
    }

    fn enabled_count(&self) -> u64 {
        u64::from(self.transient)
            + u64::from(self.straggler)
            + u64::from(self.corrupt)
            + u64::from(self.panic)
    }
}

/// A seeded, deterministic fault schedule.
///
/// `decide` is a pure function of the plan and
/// `(gpu, network, batch, attempt)`: two plans with equal fields make
/// identical decisions on any machine, any thread interleaving, any run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed separating independent fault universes.
    pub seed: u64,
    /// Per-attempt fault probability in `[0, 1]`.
    pub rate: f64,
    /// Which fault kinds may fire.
    pub kinds: FaultKinds,
    /// Attempts `>= max_faulty_attempts` are always clean, bounding how
    /// many retries any job can need. Must be at least 1 for faults to
    /// fire at all.
    pub max_faulty_attempts: u32,
    /// Extra latency injected for stragglers.
    pub straggler_delay: Duration,
}

impl FaultPlan {
    /// A recoverable-faults-only plan: transients and stragglers at `rate`.
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate,
            kinds: FaultKinds::transient_only(),
            max_faulty_attempts: 3,
            straggler_delay: Duration::from_millis(25),
        }
    }

    /// An everything-can-happen plan at `rate` (corruption and panics too).
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate,
            kinds: FaultKinds::chaos(),
            max_faulty_attempts: 3,
            straggler_delay: Duration::from_millis(25),
        }
    }

    /// Hash key for one `(gpu, net, batch, attempt)` cell.
    fn cell(&self, gpu: &str, net: &str, batch: usize, attempt: u32) -> u64 {
        let g = hash_with(gpu, self.seed ^ 0xFA17_0001);
        let n = hash_with(net, self.seed ^ 0xFA17_0002);
        splitmix(g ^ n.rotate_left(17) ^ (batch as u64) << 3 ^ u64::from(attempt) << 48)
    }

    /// Decides the fault (if any) for one profiling attempt.
    ///
    /// Deterministic in all arguments; `None` whenever
    /// `attempt >= max_faulty_attempts`, whenever `rate <= 0`, or whenever
    /// no fault kind is enabled.
    pub fn decide(
        &self,
        gpu: &str,
        net: &str,
        batch: usize,
        attempt: u32,
    ) -> Option<InjectedFault> {
        if attempt >= self.max_faulty_attempts || self.rate <= 0.0 {
            return None;
        }
        let kinds = self.kinds.enabled_count();
        if kinds == 0 {
            return None;
        }
        let h = self.cell(gpu, net, batch, attempt);
        if unit(h) >= self.rate {
            return None;
        }
        // Pick among the enabled kinds with an independent draw.
        let pick = splitmix(h ^ 0x9E37_79B9_7F4A_7C15) % kinds;
        let mut order = Vec::with_capacity(4);
        if self.kinds.transient {
            order.push(0u8);
        }
        if self.kinds.straggler {
            order.push(1);
        }
        if self.kinds.corrupt {
            order.push(2);
        }
        if self.kinds.panic {
            order.push(3);
        }
        Some(match order[pick as usize] {
            0 => InjectedFault::Transient,
            1 => InjectedFault::Straggler(self.straggler_delay),
            2 => {
                let c = splitmix(h ^ 0x00C0_FFEE) % 4;
                InjectedFault::Corrupt(match c {
                    0 => Corruption::Nan,
                    1 => Corruption::Inf,
                    2 => Corruption::Negative,
                    // The base factor is perturbed by the attempt index so
                    // two corrupted attempts can never agree byte-for-byte:
                    // replicate comparison is then a *sound* corruption
                    // detector (agreement implies both replicates clean).
                    _ => Corruption::Scale(
                        if splitmix(h ^ 0xD1CE) & 1 == 0 {
                            40.0
                        } else {
                            0.025
                        } * (1.0 + f64::from(attempt) * 1e-6),
                    ),
                })
            }
            _ => InjectedFault::Panic,
        })
    }

    /// A digest of every field that influences decisions, for folding into
    /// dataset cache keys: two plans with equal digests produce identical
    /// fault schedules.
    pub fn digest(&self) -> u64 {
        let mut d = splitmix(self.seed ^ 0xFA17_D16E);
        d = splitmix(d ^ self.rate.to_bits());
        d = splitmix(
            d ^ self.kinds.enabled_count() << 32
                ^ u64::from(self.kinds.transient)
                ^ u64::from(self.kinds.straggler) << 1
                ^ u64::from(self.kinds.corrupt) << 2
                ^ u64::from(self.kinds.panic) << 3,
        );
        d = splitmix(d ^ u64::from(self.max_faulty_attempts));
        splitmix(d ^ self.straggler_delay.as_nanos() as u64)
    }
}

/// Applies a [`Corruption`] to a trace in place, damaging one
/// deterministically chosen kernel and keeping `e2e_seconds` consistent
/// with the damaged sum (as a real corrupted timing stream would).
pub fn corrupt_trace(trace: &mut Trace, corruption: Corruption, pick: u64) {
    let total: usize = trace.layers.iter().map(|l| l.kernels.len()).sum();
    if total == 0 {
        return;
    }
    let mut target = (pick % total as u64) as usize;
    for layer in &mut trace.layers {
        if target < layer.kernels.len() {
            let k = &mut layer.kernels[target];
            let old = k.seconds;
            let new = match corruption {
                Corruption::Nan => f64::NAN,
                Corruption::Inf => f64::INFINITY,
                Corruption::Negative => -old.abs(),
                Corruption::Scale(f) => old * f,
            };
            k.seconds = new;
            // Keep the e2e aggregate consistent with the damaged kernel
            // stream; NaN/Inf propagate as they would in a real sum.
            trace.e2e_seconds = trace.e2e_seconds - old + new;
            return;
        }
        target -= layer.kernels.len();
    }
}

/// A decorator around [`Profiler`] that injects the faults a [`FaultPlan`]
/// schedules, while delegating all clean measurements to the inner
/// profiler untouched.
///
/// Stateless with respect to timing: the fault decision depends only on
/// the plan and the attempt index, never on wall-clock or thread identity.
#[derive(Debug)]
pub struct FaultyProfiler {
    inner: Profiler,
    plan: FaultPlan,
    /// Attempt counters for the stateful [`FaultyProfiler::profile`]
    /// convenience entry point, keyed by `(network, batch)`.
    attempts: Mutex<HashMap<(String, usize), u32>>,
}

impl FaultyProfiler {
    /// Wraps `inner` with the fault schedule `plan`.
    pub fn new(inner: Profiler, plan: FaultPlan) -> Self {
        FaultyProfiler {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped clean profiler.
    pub fn inner(&self) -> &Profiler {
        &self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Profiles `net` at `batch` as attempt number `attempt` (zero-based).
    ///
    /// This is the pure entry point retry loops should use: passing the
    /// attempt index explicitly keeps the fault schedule independent of
    /// call interleaving across threads.
    ///
    /// # Errors
    ///
    /// Propagates the inner profiler's validation/OOM errors (these are
    /// checked *before* fault injection: a malformed request is permanent,
    /// not transient) and returns [`ProfileError::Transient`] when the
    /// plan schedules a transient fault.
    ///
    /// # Panics
    ///
    /// Panics when the plan schedules [`InjectedFault::Panic`] for this
    /// attempt — deliberately, to exercise caller-side panic isolation.
    pub fn profile_attempt(
        &self,
        net: &Network,
        batch: usize,
        attempt: u32,
    ) -> Result<Trace, ProfileError> {
        self.faulted(net, batch, attempt, |n, b| self.inner.profile(n, b))
    }

    /// Training-step counterpart of [`FaultyProfiler::profile_attempt`].
    ///
    /// # Errors
    ///
    /// As for [`FaultyProfiler::profile_attempt`].
    pub fn profile_training_attempt(
        &self,
        net: &Network,
        batch: usize,
        attempt: u32,
    ) -> Result<Trace, ProfileError> {
        self.faulted(net, batch, attempt, |n, b| {
            self.inner.profile_training(n, b)
        })
    }

    /// Drop-in replacement for [`Profiler::profile`] that tracks the
    /// attempt index internally per `(network, batch)`.
    ///
    /// Convenient for sequential callers; parallel retry loops should
    /// prefer [`FaultyProfiler::profile_attempt`] so attempt numbering is
    /// explicit rather than dependent on call order.
    ///
    /// # Errors
    ///
    /// As for [`FaultyProfiler::profile_attempt`].
    pub fn profile(&self, net: &Network, batch: usize) -> Result<Trace, ProfileError> {
        let attempt = {
            let mut m = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
            let slot = m.entry((net.name().to_string(), batch)).or_insert(0);
            let a = *slot;
            *slot += 1;
            a
        };
        self.profile_attempt(net, batch, attempt)
    }

    fn faulted(
        &self,
        net: &Network,
        batch: usize,
        attempt: u32,
        run: impl Fn(&Network, usize) -> Result<Trace, ProfileError>,
    ) -> Result<Trace, ProfileError> {
        // Permanent failures (validation, OOM) surface before injection:
        // the request itself is wrong, no fault universe changes that.
        let mut trace = run(net, batch)?;
        match self
            .plan
            .decide(&self.inner.gpu().name, net.name(), batch, attempt)
        {
            None => Ok(trace),
            Some(InjectedFault::Transient) => Err(ProfileError::Transient {
                network: net.name().to_string(),
                batch,
                attempt,
            }),
            Some(InjectedFault::Straggler(delay)) => {
                std::thread::sleep(delay);
                Ok(trace)
            }
            Some(InjectedFault::Corrupt(c)) => {
                let pick = splitmix(
                    self.plan
                        .cell(&self.inner.gpu().name, net.name(), batch, attempt)
                        ^ 0x5E1EC7,
                );
                corrupt_trace(&mut trace, c, pick);
                Ok(trace)
            }
            Some(InjectedFault::Panic) => panic!(
                "injected profiler crash: {} at batch {batch} (attempt {attempt})",
                net.name()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use dnnperf_dnn::zoo;

    fn a100() -> Profiler {
        Profiler::new(GpuSpec::by_name("A100").unwrap())
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::chaos(42, 0.5);
        let q = FaultPlan::chaos(42, 0.5);
        for attempt in 0..4 {
            for batch in [1usize, 16, 256] {
                assert_eq!(
                    p.decide("A100", "ResNet-18", batch, attempt),
                    q.decide("A100", "ResNet-18", batch, attempt)
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let p = FaultPlan::chaos(1, 0.5);
        let q = FaultPlan::chaos(2, 0.5);
        let grid: Vec<_> = (0..64)
            .map(|i| {
                (
                    p.decide("A100", "VGG-16", i, 0).is_some(),
                    q.decide("A100", "VGG-16", i, 0).is_some(),
                )
            })
            .collect();
        assert!(grid.iter().any(|(a, b)| a != b), "seeds never disagreed");
    }

    #[test]
    fn fault_rate_is_respected_roughly() {
        let p = FaultPlan::transient_only(7, 0.25);
        let fired = (0..400)
            .filter(|&b| p.decide("V100", "ResNet-50", b, 0).is_some())
            .count();
        // 400 draws at p=0.25: expect ~100, allow a wide band.
        assert!((50..180).contains(&fired), "fired {fired}/400");
    }

    #[test]
    fn attempts_beyond_bound_are_always_clean() {
        let p = FaultPlan::chaos(3, 1.0);
        for b in 0..50 {
            assert_eq!(p.decide("A100", "VGG-16", b, p.max_faulty_attempts), None);
            assert!(p.decide("A100", "VGG-16", b, 0).is_some(), "rate 1.0");
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let p = FaultPlan::chaos(3, 0.0);
        for b in 0..50 {
            assert_eq!(p.decide("A100", "VGG-16", b, 0), None);
        }
    }

    #[test]
    fn transient_only_plans_never_corrupt_or_panic() {
        let p = FaultPlan::transient_only(11, 1.0);
        for b in 1..200 {
            match p.decide("A100", "ResNet-18", b, 0) {
                Some(InjectedFault::Corrupt(_)) | Some(InjectedFault::Panic) => {
                    panic!("transient-only plan drew a destructive fault")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn digest_tracks_every_field() {
        let base = FaultPlan::transient_only(5, 0.1);
        let mut seed = base.clone();
        seed.seed = 6;
        let mut rate = base.clone();
        rate.rate = 0.2;
        let mut depth = base.clone();
        depth.max_faulty_attempts = 4;
        let mut kinds = base.clone();
        kinds.kinds = FaultKinds::chaos();
        let d = base.digest();
        assert_ne!(d, seed.digest());
        assert_ne!(d, rate.digest());
        assert_ne!(d, depth.digest());
        assert_ne!(d, kinds.digest());
    }

    #[test]
    fn retried_faulty_profile_converges_to_clean() {
        let net = zoo::resnet::resnet18();
        let clean = a100().profile(&net, 64).unwrap();
        let fp = FaultyProfiler::new(a100(), FaultPlan::transient_only(9, 1.0));
        // Rate 1.0: the first max_faulty_attempts attempts fault (transient
        // or straggler), then the bound forces a clean run.
        let mut got = None;
        for attempt in 0..=fp.plan().max_faulty_attempts {
            match fp.profile_attempt(&net, 64, attempt) {
                Ok(t) => {
                    got = Some(t);
                    break;
                }
                Err(e) => assert!(e.is_transient(), "unexpected: {e}"),
            }
        }
        assert_eq!(got.expect("bounded plan must converge"), clean);
    }

    #[test]
    fn corruption_damages_exactly_one_kernel() {
        let net = zoo::resnet::resnet18();
        let clean = a100().profile(&net, 32).unwrap();
        let mut t = clean.clone();
        corrupt_trace(&mut t, Corruption::Nan, 12345);
        let nans: usize = t
            .layers
            .iter()
            .flat_map(|l| &l.kernels)
            .filter(|k| k.seconds.is_nan())
            .count();
        assert_eq!(nans, 1);
        assert!(t.e2e_seconds.is_nan(), "NaN must propagate to the e2e sum");

        let mut s = clean.clone();
        corrupt_trace(&mut s, Corruption::Scale(40.0), 999);
        let changed: usize = s
            .layers
            .iter()
            .flat_map(|l| &l.kernels)
            .zip(clean.layers.iter().flat_map(|l| &l.kernels))
            .filter(|(a, b)| a.seconds != b.seconds)
            .count();
        assert_eq!(changed, 1);
        assert!(s.e2e_seconds > clean.e2e_seconds);
    }

    #[test]
    fn stateful_profile_advances_attempts() {
        let net = zoo::resnet::resnet18();
        let fp = FaultyProfiler::new(a100(), FaultPlan::transient_only(9, 1.0));
        let clean = a100().profile(&net, 64).unwrap();
        // Call until the attempt counter passes the fault bound.
        let mut ok = None;
        for _ in 0..=fp.plan().max_faulty_attempts {
            if let Ok(t) = fp.profile(&net, 64) {
                ok = Some(t);
                break;
            }
        }
        assert_eq!(ok.expect("stateful retries converge"), clean);
    }

    #[test]
    fn permanent_errors_win_over_faults() {
        let net = zoo::vgg::vgg16();
        let p620 = Profiler::new(GpuSpec::by_name("Quadro P620").unwrap());
        let fp = FaultyProfiler::new(p620, FaultPlan::chaos(1, 1.0));
        let err = fp.profile_attempt(&net, 512, 0).unwrap_err();
        assert!(matches!(err, ProfileError::OutOfMemory { .. }));
        let err = fp.profile_attempt(&net, 0, 0).unwrap_err();
        assert!(matches!(err, ProfileError::ZeroBatch { .. }));
    }

    #[test]
    fn injected_panic_fires() {
        let mut plan = FaultPlan::chaos(4, 1.0);
        plan.kinds = FaultKinds {
            transient: false,
            straggler: false,
            corrupt: false,
            panic: true,
        };
        let fp = FaultyProfiler::new(a100(), plan);
        let net = zoo::resnet::resnet18();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fp.profile_attempt(&net, 8, 0)
        }));
        assert!(r.is_err(), "panic-only plan at rate 1.0 must panic");
    }
}
