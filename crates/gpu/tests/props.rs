//! Property-based tests for the GPU measurement substrate.

use dnnperf_dnn::{Conv2d, Layer, LayerKind, TensorShape};
use dnnperf_gpu::dispatch::{dispatch_layer, dispatched_bytes};
use dnnperf_gpu::kernel::{KernelDesc, KernelFamily, KernelRole};
use dnnperf_gpu::{GpuSpec, Profiler, TimingModel};
use dnnperf_testkit::prelude::*;

fn arb_conv_layer() -> impl Gen<Value = Layer> {
    (
        1usize..128,
        1usize..128,
        4usize..64,
        select(vec![1usize, 3, 5, 7]),
        1usize..3,
    )
        .prop_filter_map("conv must fit", |(c_in, c_out, hw, k, stride)| {
            let conv = Conv2d::square(c_in, c_out, k, stride, k / 2);
            Layer::apply(LayerKind::Conv2d(conv), TensorShape::chw(c_in, hw, hw)).ok()
        })
}

/// Body of `dispatch_is_total_and_consistent`, shared with the pinned
/// regression case below.
fn check_dispatch_total_and_consistent(layer: &Layer, batch: usize) {
    let kernels = dispatch_layer(layer, batch);
    prop_assert!(!kernels.is_empty(), "convolutions always launch kernels");
    // Exactly one main kernel per convolution.
    let mains = kernels
        .iter()
        .filter(|k| k.role == KernelRole::Main)
        .count();
    prop_assert_eq!(mains, 1);
    for k in &kernels {
        prop_assert!(k.bytes > 0);
        prop_assert!(k.work_items > 0);
        prop_assert!(!k.name.is_empty());
    }
    prop_assert!(dispatched_bytes(&kernels) > 0);
}

/// Body of `dispatch_work_is_linear_in_batch`, shared with the pinned
/// regression case below.
fn check_dispatch_linear_in_batch(layer: &Layer, batch: usize) {
    let one = dispatch_layer(layer, batch);
    let two = dispatch_layer(layer, 2 * batch);
    prop_assert_eq!(one.len(), two.len());
    for (a, b) in one.iter().zip(&two) {
        prop_assert_eq!(
            &a.name,
            &b.name,
            "kernel selection must not depend on batch"
        );
        prop_assert_eq!(2 * a.flops, b.flops);
        prop_assert_eq!(2 * a.work_items, b.work_items);
    }
}

/// Body of `profiling_scales_sublinearly_superlinearly_bounded`, shared
/// with the pinned regression case below.
fn check_profiling_scaling(batch: usize) {
    // Time at batch N is between 0.3x and 1.5x of N * time-per-sample
    // at batch 128 (saturation + overheads bend it, but not wildly).
    let net = dnnperf_dnn::zoo::mobilenet::mobilenet_v2(0.5, 1.0);
    let prof = Profiler::new(GpuSpec::by_name("A100").unwrap());
    let t_ref = prof.profile(&net, 128).unwrap().e2e_seconds / 128.0;
    let t = prof.profile(&net, batch).unwrap().e2e_seconds / batch as f64;
    let ratio = t / t_ref;
    prop_assert!(
        ratio > 0.5 && ratio < 40.0,
        "per-sample ratio {ratio} at batch {batch}"
    );
    // Never much faster per sample than near-saturated execution (the
    // two runs carry independent ~4% run-level measurement deviations).
    prop_assert!(
        ratio > 0.8,
        "small batches cannot beat saturated throughput: {ratio}"
    );
}

props! {
    #[test]
    fn dispatch_is_total_and_consistent(layer in arb_conv_layer(), batch in 1usize..128) {
        check_dispatch_total_and_consistent(&layer, batch);
    }

    #[test]
    fn dispatch_work_is_linear_in_batch(layer in arb_conv_layer(), batch in 1usize..64) {
        check_dispatch_linear_in_batch(&layer, batch);
    }

    #[test]
    fn kernel_time_is_positive_and_monotone_in_bytes(
        bytes in 1u64..(1 << 34),
        gpu_idx in 0usize..7,
    ) {
        let gpus = GpuSpec::all();
        let gpu = &gpus[gpu_idx];
        let model = TimingModel::new();
        let mk = |bytes| KernelDesc {
            name: "bn_fw_inf_1C11_kernel".into(),
            family: KernelFamily::BnInf,
            role: KernelRole::Pre,
            flops: bytes / 4,
            bytes,
            work_items: bytes / 4,
        };
        let t1 = model.kernel_time(&mk(bytes), gpu, 1);
        let t2 = model.kernel_time(&mk(bytes * 2), gpu, 1);
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1 * 0.8, "doubling work must not speed things up: {t1} vs {t2}");
    }

    #[test]
    fn saturation_is_a_fraction_and_monotone(blocks in 1u64..1_000_000, gpu_idx in 0usize..7) {
        let gpus = GpuSpec::all();
        let model = TimingModel::new();
        let s1 = model.saturation(blocks, &gpus[gpu_idx]);
        let s2 = model.saturation(blocks * 2, &gpus[gpu_idx]);
        prop_assert!(s1 > 0.0 && s1 < 1.0);
        prop_assert!(s2 >= s1);
    }

    #[test]
    fn profiling_scales_sublinearly_superlinearly_bounded(batch in 1usize..65) {
        check_profiling_scaling(batch);
    }
}

/// The 28-channel 7x7 conv the historical shrinker pinned (was
/// `cc 8cdb0352…` in the deleted `props.proptest-regressions` file).
fn regression_conv_layer() -> Layer {
    let conv = Conv2d {
        in_ch: 28,
        out_ch: 84,
        kh: 7,
        kw: 7,
        stride: 1,
        padding: 3,
        groups: 1,
    };
    Layer::apply(LayerKind::Conv2d(conv), TensorShape::chw(28, 57, 57)).expect("conv fits")
}

/// Pinned historical failure of the dispatch properties at batch 13 (the
/// side-file did not record which of the two layer+batch properties shrank
/// to this input, so both are re-checked).
#[test]
fn regression_dispatch_conv28_batch_13() {
    let layer = regression_conv_layer();
    check_dispatch_total_and_consistent(&layer, 13);
    check_dispatch_linear_in_batch(&layer, 13);
}

/// Pinned historical failure of `profiling_scales_…` at batch 52 (was
/// `cc 27c9e601…`).
#[test]
fn regression_profiling_scaling_batch_52() {
    check_profiling_scaling(52);
}
