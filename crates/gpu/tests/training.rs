//! Training-mode substrate tests (forward + backward + optimizer update).

use dnnperf_gpu::dispatch::{dispatch_layer, dispatch_layer_backward, dispatch_network_training};
use dnnperf_gpu::kernel::KernelFamily;
use dnnperf_gpu::{memory, GpuSpec, Profiler};

#[test]
fn conv_backward_launches_dgrad_and_wgrad() {
    let net = dnnperf_dnn::zoo::resnet::resnet18();
    let conv = net
        .layers()
        .iter()
        .find(|l| l.type_tag() == "conv")
        .expect("conv layer");
    let bwd = dispatch_layer_backward(conv, 16);
    let families: Vec<KernelFamily> = bwd.iter().map(|k| k.family).collect();
    assert!(families.contains(&KernelFamily::DgradConv));
    assert!(families.contains(&KernelFamily::WgradConv));
    assert!(families.contains(&KernelFamily::OptimizerStep));
    // Backward compute roughly doubles the forward FLOPs.
    let fwd_flops: u64 = dispatch_layer(conv, 16).iter().map(|k| k.flops).sum();
    let bwd_flops: u64 = bwd.iter().map(|k| k.flops).sum();
    assert!(bwd_flops >= fwd_flops, "bwd {bwd_flops} vs fwd {fwd_flops}");
}

#[test]
fn training_step_takes_about_three_times_inference() {
    let prof = Profiler::new(GpuSpec::by_name("A100").unwrap());
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let inf = prof.profile(&net, 64).unwrap().e2e_seconds;
    let train = prof.profile_training(&net, 64).unwrap().e2e_seconds;
    let ratio = train / inf;
    assert!(
        ratio > 2.0 && ratio < 4.5,
        "training/inference ratio {ratio} (rule of thumb: ~3x)"
    );
}

#[test]
fn training_needs_more_memory_than_inference() {
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    assert!(memory::training_footprint_bytes(&net, 64) > memory::footprint_bytes(&net, 64));
    // A batch that fits for inference can OOM for training.
    let v100 = GpuSpec::by_name("V100").unwrap();
    assert!(memory::fits(&net, 128, &v100));
    assert!(!memory::fits_training(&net, 128, &v100));
}

#[test]
fn training_traces_are_deterministic_and_distinct_from_inference() {
    let prof = Profiler::new(GpuSpec::by_name("A100").unwrap());
    let net = dnnperf_dnn::zoo::mobilenet::mobilenet_v2(0.5, 1.0);
    let a = prof.profile_training(&net, 16).unwrap();
    let b = prof.profile_training(&net, 16).unwrap();
    assert_eq!(a, b);
    let inf = prof.profile(&net, 16).unwrap();
    assert!(a.kernel_count() > inf.kernel_count());
    assert!(a.e2e_seconds > inf.e2e_seconds);
}

#[test]
fn optimizer_step_is_batch_independent() {
    let net = dnnperf_dnn::zoo::resnet::resnet18();
    let conv = net
        .layers()
        .iter()
        .find(|l| l.type_tag() == "conv")
        .expect("conv layer");
    let small = dispatch_layer_backward(conv, 4);
    let big = dispatch_layer_backward(conv, 64);
    let opt = |ks: &[dnnperf_gpu::KernelDesc]| {
        ks.iter()
            .find(|k| k.family == KernelFamily::OptimizerStep)
            .map(|k| (k.flops, k.bytes))
            .expect("optimizer step")
    };
    assert_eq!(opt(&small), opt(&big));
}

#[test]
fn add_and_flatten_have_free_backward() {
    let net = dnnperf_dnn::zoo::resnet::resnet18();
    let add = net.layers().iter().find(|l| l.type_tag() == "add").unwrap();
    assert!(dispatch_layer_backward(add, 8).is_empty());
}

#[test]
fn training_dispatch_covers_every_layer() {
    let net = dnnperf_dnn::zoo::densenet::densenet121();
    let per_layer = dispatch_network_training(&net, 8);
    assert_eq!(per_layer.len(), net.num_layers());
    let fwd: usize = dnnperf_gpu::dispatch::dispatch_network(&net, 8)
        .iter()
        .map(Vec::len)
        .sum();
    let total: usize = per_layer.iter().map(Vec::len).sum();
    assert!(
        total > 3 * fwd / 2,
        "training adds kernels: {total} vs {fwd}"
    );
}
