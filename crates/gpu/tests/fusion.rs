//! Operator-fusion substrate tests.

use dnnperf_gpu::dispatch::{dispatch_network, dispatch_network_with, Fusion};
use dnnperf_gpu::{GpuSpec, Profiler};

#[test]
fn fusion_absorbs_bn_and_activation_kernels() {
    let net = dnnperf_dnn::zoo::resnet::resnet18();
    let plain = dispatch_network(&net, 16);
    let fused = dispatch_network_with(&net, 16, Fusion::ConvBnAct);
    assert_eq!(plain.len(), fused.len(), "per-layer structure preserved");
    let count = |v: &[Vec<dnnperf_gpu::KernelDesc>]| v.iter().map(Vec::len).sum::<usize>();
    assert!(
        count(&fused) < count(&plain),
        "fusion must eliminate kernels: {} vs {}",
        count(&fused),
        count(&plain)
    );
    // Absorbed BN layers launch nothing.
    let empty_bns = net
        .layers()
        .iter()
        .zip(&fused)
        .filter(|(l, ks)| l.type_tag() == "bn" && ks.is_empty())
        .count();
    assert!(empty_bns > 10, "absorbed BN layers: {empty_bns}");
}

#[test]
fn fusion_none_is_the_default_and_identical() {
    let net = dnnperf_dnn::zoo::vgg::vgg11();
    assert_eq!(
        dispatch_network(&net, 8),
        dispatch_network_with(&net, 8, Fusion::None)
    );
}

#[test]
fn fused_execution_is_faster() {
    let gpu = GpuSpec::by_name("A100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let plain = Profiler::new(gpu.clone()).profile(&net, 64).unwrap();
    let fused = Profiler::new(gpu)
        .with_fusion(Fusion::ConvBnAct)
        .profile(&net, 64)
        .unwrap();
    assert!(fused.kernel_count() < plain.kernel_count());
    let speedup = plain.e2e_seconds / fused.e2e_seconds;
    assert!(
        speedup > 1.02 && speedup < 1.6,
        "fusion speedup {speedup} (eliminates elementwise round-trips)"
    );
}

#[test]
fn fusion_skips_shape_incompatible_chains() {
    // VGG without BN: conv -> relu has no BatchNorm, so ConvBnAct fusion
    // must leave everything alone except where the pattern matches.
    let net = dnnperf_dnn::zoo::vgg::vgg11();
    let plain = dispatch_network(&net, 8);
    let fused = dispatch_network_with(&net, 8, Fusion::ConvBnAct);
    assert_eq!(plain, fused, "no conv->bn chains in plain VGG");
}
