//! Property-based tests for the DNN IR, shape inference and the zoo
//! generators.

use dnnperf_dnn::flops::{layer_bytes, layer_flops};
use dnnperf_dnn::zoo;
use dnnperf_dnn::{Conv2d, Layer, LayerKind, TensorShape};
use dnnperf_testkit::prelude::*;

props! {
    #[test]
    fn conv_shape_formula_holds(
        c_in in 1usize..64,
        c_out in 1usize..64,
        h in 4usize..64,
        w in 4usize..64,
        k in 1usize..6,
        stride in 1usize..4,
        padding in 0usize..3,
    ) {
        let conv = Conv2d { in_ch: c_in, out_ch: c_out, kh: k, kw: k, stride, padding, groups: 1 };
        let input = TensorShape::chw(c_in, h, w);
        match Layer::apply(LayerKind::Conv2d(conv), input) {
            Ok(layer) => {
                let expect_h = (h + 2 * padding - k) / stride + 1;
                let expect_w = (w + 2 * padding - k) / stride + 1;
                prop_assert_eq!(layer.output, TensorShape::chw(c_out, expect_h, expect_w));
                // The paper's FLOPs formula.
                prop_assert_eq!(
                    layer_flops(&layer),
                    (c_out * expect_h * expect_w * c_in * k * k) as u64
                );
            }
            Err(_) => prop_assert!(h + 2 * padding < k || w + 2 * padding < k),
        }
    }

    #[test]
    fn pointwise_layers_conserve_shape(c in 1usize..128, h in 1usize..64, w in 1usize..64) {
        let input = TensorShape::chw(c, h, w);
        for kind in [LayerKind::BatchNorm, LayerKind::Add, LayerKind::Activation(dnnperf_dnn::ActivationFn::Relu)] {
            let l = Layer::apply(kind, input).unwrap();
            prop_assert_eq!(l.input, l.output);
            // Bytes grow at least linearly with elements.
            prop_assert!(layer_bytes(&l) >= 2 * input.elems() as u64 * 4);
        }
    }

    #[test]
    fn resnet_generator_is_total_and_monotone(
        b1 in 1usize..4, b2 in 1usize..5, b3 in 1usize..9, b4 in 1usize..4,
        bottleneck in any_bool(),
    ) {
        let small = zoo::resnet::resnet_from_blocks(&[b1, b2, b3, b4], bottleneck, 1.0);
        let big = zoo::resnet::resnet_from_blocks(&[b1, b2, b3 + 1, b4], bottleneck, 1.0);
        prop_assert!(small.total_flops() > 0);
        prop_assert!(big.total_flops() > small.total_flops());
        prop_assert!(big.num_layers() > small.num_layers());
        // The classifier ends at 1000 classes.
        prop_assert_eq!(
            small.layers().last().unwrap().output,
            TensorShape::features(1000)
        );
    }

    #[test]
    fn vgg_generator_flops_monotone_in_stage_convs(
        c1 in 1usize..3, c2 in 1usize..4, c3 in 1usize..4, c4 in 1usize..4, c5 in 1usize..4,
    ) {
        let base = zoo::vgg::vgg_from_stages(&[c1, c2, c3, c4, c5], false);
        let more = zoo::vgg::vgg_from_stages(&[c1 + 1, c2, c3, c4, c5], false);
        prop_assert!(more.total_flops() > base.total_flops());
    }

    #[test]
    fn densenet_channel_accounting(growth in 8usize..48, n1 in 1usize..8) {
        let net = zoo::densenet::densenet_from_cfg(growth, &[n1, 2, 2, 2]);
        // After the stem (2*growth channels) and n1 dense layers, the first
        // transition conv must see 2*growth + n1*growth input channels.
        let expected = 2 * growth + n1 * growth;
        let transition = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d(c) if c.is_pointwise()))
            .find(|l| l.output.channels() == expected / 2);
        prop_assert!(transition.is_some(), "no transition conv at {} channels", expected);
    }

    #[test]
    fn transformer_flops_scale_linearly_with_depth(
        layers in 1usize..10, hidden_x64 in 2usize..10, seq in 16usize..200,
    ) {
        let hidden = hidden_x64 * 64;
        let cfg = |l| zoo::transformer::TransformerConfig {
            layers: l,
            hidden,
            heads: hidden / 64,
            seq_len: seq,
            mlp_ratio: 4,
            vocab: 1000,
            classes: 2,
        };
        // Encoder blocks are identical, so FLOPs increments per added block
        // are exactly constant.
        let f1 = zoo::transformer::text_classifier(cfg(layers)).total_flops();
        let f2 = zoo::transformer::text_classifier(cfg(layers + 1)).total_flops();
        let f3 = zoo::transformer::text_classifier(cfg(layers + 2)).total_flops();
        prop_assert_eq!(f2 - f1, f3 - f2);
        prop_assert!(f2 > f1);
    }

    #[test]
    fn flatten_and_gap_conserve_elements(c in 1usize..512, h in 1usize..32, w in 1usize..32) {
        let input = TensorShape::chw(c, h, w);
        let flat = Layer::apply(LayerKind::Flatten, input).unwrap();
        prop_assert_eq!(flat.output.elems(), input.elems());
        let gap = Layer::apply(LayerKind::GlobalAvgPool, input).unwrap();
        prop_assert_eq!(gap.output.elems(), c);
        prop_assert_eq!(layer_flops(&gap), input.elems() as u64);
    }
}
