//! Incremental construction of [`Network`]s with shape tracking.

use crate::graph::{Family, Network};
use crate::layer::{ActivationFn, Conv2d, Layer, LayerKind, Linear, Pool2d, PoolKind};
use crate::shape::{ShapeError, TensorShape};

/// Builds a [`Network`] layer by layer, carrying the current activation shape
/// so that chained layers are shape-inferred automatically.
///
/// Non-chain topology (residual branches, dense concatenations) is expressed
/// with [`NetworkBuilder::push_shaped`], which records a layer with explicit
/// shapes and moves the cursor to its output.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::{Conv2d, Family, LayerKind, NetworkBuilder, TensorShape};
///
/// # fn main() -> Result<(), dnnperf_dnn::ShapeError> {
/// let mut b = NetworkBuilder::new("Demo", Family::Custom, TensorShape::chw(3, 32, 32));
/// b.push(LayerKind::Conv2d(Conv2d::square(3, 16, 3, 1, 1)))?;
/// b.relu()?;
/// let net = b.finish();
/// assert_eq!(net.num_layers(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    family: Family,
    input: TensorShape,
    cur: TensorShape,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a new network with the given per-sample input shape.
    pub fn new(name: impl Into<String>, family: Family, input: TensorShape) -> Self {
        NetworkBuilder {
            name: name.into(),
            family,
            input,
            cur: input,
            layers: Vec::new(),
        }
    }

    /// The shape the next chained layer will receive.
    pub fn shape(&self) -> TensorShape {
        self.cur
    }

    /// Number of layers added so far.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if no layers have been added yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Appends a layer chained to the current shape.
    ///
    /// # Errors
    ///
    /// Returns the [`ShapeError`] from shape inference; the builder is left
    /// unchanged on error.
    pub fn push(&mut self, kind: LayerKind) -> Result<&mut Self, ShapeError> {
        let layer = Layer::apply(kind, self.cur)?;
        self.cur = layer.output;
        self.layers.push(layer);
        Ok(self)
    }

    /// Appends a layer with explicit shapes (no inference) and moves the
    /// cursor to `output`. Used for branch/merge topology.
    pub fn push_shaped(
        &mut self,
        kind: LayerKind,
        input: TensorShape,
        output: TensorShape,
    ) -> &mut Self {
        self.layers.push(Layer::with_shapes(kind, input, output));
        self.cur = output;
        self
    }

    /// Convenience: square convolution chained to the current shape.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures, e.g. a channel mismatch.
    pub fn conv(
        &mut self,
        out_ch: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Result<&mut Self, ShapeError> {
        let in_ch = self.cur.channels();
        self.push(LayerKind::Conv2d(Conv2d::square(
            in_ch, out_ch, k, stride, padding,
        )))
    }

    /// Convenience: batch normalization.
    ///
    /// # Errors
    ///
    /// Fails if the current shape is not a feature map.
    pub fn bn(&mut self) -> Result<&mut Self, ShapeError> {
        self.push(LayerKind::BatchNorm)
    }

    /// Convenience: ReLU activation.
    ///
    /// # Errors
    ///
    /// Never fails in practice (activations accept any shape); kept fallible
    /// for uniformity.
    pub fn relu(&mut self) -> Result<&mut Self, ShapeError> {
        self.push(LayerKind::Activation(ActivationFn::Relu))
    }

    /// Convenience: max pooling.
    ///
    /// # Errors
    ///
    /// Fails if the window does not fit or the input is not a feature map.
    pub fn max_pool(
        &mut self,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Result<&mut Self, ShapeError> {
        self.push(LayerKind::Pool2d(Pool2d {
            kind: PoolKind::Max,
            k,
            stride,
            padding,
        }))
    }

    /// Convenience: average pooling.
    ///
    /// # Errors
    ///
    /// Fails if the window does not fit or the input is not a feature map.
    pub fn avg_pool(
        &mut self,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Result<&mut Self, ShapeError> {
        self.push(LayerKind::Pool2d(Pool2d {
            kind: PoolKind::Avg,
            k,
            stride,
            padding,
        }))
    }

    /// Convenience: fully connected layer from the current feature count.
    ///
    /// # Errors
    ///
    /// Fails if the current shape is a feature map (flatten first).
    pub fn linear(&mut self, out_features: usize) -> Result<&mut Self, ShapeError> {
        let in_features = self.cur.channels();
        self.push(LayerKind::Linear(Linear {
            in_features,
            out_features,
        }))
    }

    /// Finalizes the network.
    pub fn finish(self) -> Network {
        Network::from_parts(self.name, self.family, self.input, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_shapes_flow() {
        let mut b = NetworkBuilder::new("t", Family::Custom, TensorShape::chw(3, 32, 32));
        b.conv(8, 3, 2, 1).unwrap().bn().unwrap().relu().unwrap();
        assert_eq!(b.shape(), TensorShape::chw(8, 16, 16));
        b.push(LayerKind::GlobalAvgPool).unwrap();
        b.linear(10).unwrap();
        let net = b.finish();
        assert_eq!(net.num_layers(), 5);
        assert_eq!(
            net.layers().last().unwrap().output,
            TensorShape::features(10)
        );
    }

    #[test]
    fn error_leaves_builder_unchanged() {
        let mut b = NetworkBuilder::new("t", Family::Custom, TensorShape::features(16));
        let before = b.shape();
        assert!(b.conv(8, 3, 1, 1).is_err());
        assert_eq!(b.shape(), before);
        assert!(b.is_empty());
    }

    #[test]
    fn push_shaped_moves_cursor() {
        let mut b = NetworkBuilder::new("t", Family::Custom, TensorShape::chw(4, 8, 8));
        b.push_shaped(
            LayerKind::Concat { parts: 2 },
            TensorShape::chw(8, 8, 8),
            TensorShape::chw(8, 8, 8),
        );
        assert_eq!(b.shape(), TensorShape::chw(8, 8, 8));
        assert_eq!(b.len(), 1);
    }
}
