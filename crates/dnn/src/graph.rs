//! The [`Network`] container: an ordered list of shape-resolved layers.
//!
//! The IR is a flat execution sequence rather than a general dataflow graph:
//! execution time only depends on *which kernels run with which shapes*, so a
//! linearised schedule (what the PyTorch Profiler trace in the paper's
//! Figure 2 shows) is the right abstraction level. Non-chain edges (residual
//! adds, concatenations, downsample paths) appear as layers with explicitly
//! recorded shapes.

use crate::flops::{layer_bytes, layer_flops, layer_params};
use crate::layer::Layer;
use crate::shape::TensorShape;
use std::fmt;

/// The structural family a network belongs to (used for plotting Figure 4 and
/// for zoo bookkeeping; never consulted by the predictors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Residual networks.
    ResNet,
    /// VGG-style plain convolutional stacks.
    Vgg,
    /// Densely connected networks.
    DenseNet,
    /// MobileNetV2-style inverted residual networks.
    MobileNet,
    /// ShuffleNet v1 networks.
    ShuffleNet,
    /// SqueezeNet fire-module networks.
    SqueezeNet,
    /// AlexNet-style early CNNs.
    AlexNet,
    /// GoogLeNet / Inception-style branch-and-concat networks.
    Inception,
    /// Encoder-only text-classification transformers.
    Transformer,
    /// Anything hand-built.
    Custom,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::ResNet => "resnet",
            Family::Vgg => "vgg",
            Family::DenseNet => "densenet",
            Family::MobileNet => "mobilenet",
            Family::ShuffleNet => "shufflenet",
            Family::SqueezeNet => "squeezenet",
            Family::AlexNet => "alexnet",
            Family::Inception => "inception",
            Family::Transformer => "transformer",
            Family::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A complete inference workload: named, family-tagged, shape-resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    family: Family,
    input: TensorShape,
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from parts. Most users should go through
    /// [`crate::NetworkBuilder`] or the [`crate::zoo`] constructors instead.
    pub fn from_parts(
        name: impl Into<String>,
        family: Family,
        input: TensorShape,
        layers: Vec<Layer>,
    ) -> Self {
        Network {
            name: name.into(),
            family,
            input,
            layers,
        }
    }

    /// The network's display name, e.g. `"ResNet-50"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structural family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The per-sample input shape (e.g. `3x224x224`).
    pub fn input_shape(&self) -> TensorShape {
        self.input
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total theoretical FLOPs per sample (sum over layers).
    ///
    /// # Examples
    ///
    /// ```
    /// let net = dnnperf_dnn::zoo::vgg::vgg16();
    /// assert!(net.total_flops() > 10_000_000_000); // VGG-16 ~ 15.5 GFLOPs
    /// ```
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(layer_flops).sum()
    }

    /// Total theoretical memory traffic per sample in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(layer_bytes).sum()
    }

    /// Total learned parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(layer_params).sum()
    }

    /// Total parameter bytes (FP32), i.e. the model weight footprint.
    pub fn param_bytes(&self) -> u64 {
        self.total_params() * crate::flops::BYTES_PER_ELEM
    }

    /// Peak activation footprint per sample in bytes: the largest
    /// input + output working set over all layers. A coarse but monotone
    /// estimator used for out-of-memory screening.
    pub fn peak_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.input.elems() + l.output.elems()) as u64 * crate::flops::BYTES_PER_ELEM)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GFLOPs)",
            self.name,
            self.layers.len(),
            self.total_flops() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, LayerKind};

    fn tiny() -> Network {
        let input = TensorShape::chw(3, 8, 8);
        let l1 = Layer::apply(LayerKind::Conv2d(Conv2d::square(3, 4, 3, 1, 1)), input).unwrap();
        let l2 = Layer::apply(LayerKind::BatchNorm, l1.output).unwrap();
        Network::from_parts("Tiny", Family::Custom, input, vec![l1, l2])
    }

    #[test]
    fn totals_are_sums() {
        let n = tiny();
        let f: u64 = n.layers().iter().map(crate::flops::layer_flops).sum();
        assert_eq!(n.total_flops(), f);
        assert_eq!(n.num_layers(), 2);
    }

    #[test]
    fn peak_activation_positive() {
        assert!(tiny().peak_activation_bytes() > 0);
    }

    #[test]
    fn display_mentions_name_and_layers() {
        let s = tiny().to_string();
        assert!(s.contains("Tiny") && s.contains("2 layers"));
    }
}
