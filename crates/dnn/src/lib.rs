//! DNN workload representation for dnnperf.
//!
//! This crate plays the role the paper assigns to PyTorch + TorchVision +
//! HuggingFace + the `thop` FLOPs counter: it defines a layer-level IR for
//! inference workloads ([`Layer`], [`Network`]), performs shape inference
//! ([`shape`]), counts theoretical FLOPs / bytes / parameters ([`flops`]), and
//! generates the 646-network model zoo the paper's dataset is built from
//! ([`zoo`]).
//!
//! Everything here is *static* information — exactly what the paper's
//! predictor is allowed to see ("FLOPs and input/output details can be readily
//! obtained by static DNNs analysis without pre-running ... on any hardware").
//!
//! # Examples
//!
//! ```
//! use dnnperf_dnn::zoo;
//!
//! let net = zoo::resnet::resnet50();
//! assert_eq!(net.name(), "ResNet-50");
//! // ~4.1 GFLOPs (multiplications only) per image at 224x224.
//! let gflops = net.total_flops() as f64 / 1e9;
//! assert!(gflops > 3.0 && gflops < 5.0);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod flops;
pub mod graph;
pub mod layer;
pub mod shape;
pub mod zoo;

pub use builder::NetworkBuilder;
pub use graph::{Family, Network};
pub use layer::{
    ActivationFn, Conv2d, Embedding, Layer, LayerKind, Linear, MatMul, Pool2d, PoolKind,
};
pub use shape::{ShapeError, TensorShape};
