//! Theoretical work counting: FLOPs, memory traffic, and parameter counts.
//!
//! This is the crate's `thop` (PyTorch-OpCounter) equivalent. Following the
//! paper, convolution FLOPs count multiplications only:
//! `C_out * H' * W' * C_in * K_h * K_w` (divided by `groups` for grouped
//! convolutions). All counts are **per sample**; multiply by the batch size
//! for a batch (the paper's O3).
//!
//! Byte counts are the *theoretical* minimum traffic (read input once, read
//! weights once, write output once, FP32), exactly the estimate the paper
//! uses for its bandwidth-efficiency study (Figure 9): "we use the layer
//! shape information to estimate the number of bytes to read/write".

use crate::layer::{Layer, LayerKind};

/// Bytes per scalar element (FP32).
pub const BYTES_PER_ELEM: u64 = 4;

/// Theoretical FLOPs (multiplications) of one layer for a single sample.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::{Conv2d, Layer, LayerKind, TensorShape};
/// use dnnperf_dnn::flops::layer_flops;
///
/// # fn main() -> Result<(), dnnperf_dnn::ShapeError> {
/// // 3x3 conv, 64 -> 64 channels, 56x56 output:
/// let l = Layer::apply(
///     LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1)),
///     TensorShape::chw(64, 56, 56),
/// )?;
/// assert_eq!(layer_flops(&l), 64 * 56 * 56 * 64 * 9);
/// # Ok(())
/// # }
/// ```
pub fn layer_flops(layer: &Layer) -> u64 {
    let in_elems = layer.input.elems() as u64;
    let out_elems = layer.output.elems() as u64;
    match layer.kind {
        LayerKind::Conv2d(c) => {
            out_elems * (c.in_ch as u64 / c.groups as u64) * c.kh as u64 * c.kw as u64
        }
        LayerKind::Linear(l) => {
            // One GEMV per sample (or per token for sequence inputs).
            let rows = layer.input.spatial() as u64;
            rows * l.in_features as u64 * l.out_features as u64
        }
        LayerKind::Pool2d(p) => out_elems * (p.k * p.k) as u64,
        LayerKind::GlobalAvgPool => in_elems,
        LayerKind::BatchNorm => 2 * in_elems,
        LayerKind::LayerNorm => 8 * in_elems,
        LayerKind::Activation(f) => match f {
            crate::layer::ActivationFn::Relu | crate::layer::ActivationFn::Relu6 => in_elems,
            crate::layer::ActivationFn::Gelu => 8 * in_elems,
            crate::layer::ActivationFn::Sigmoid => 4 * in_elems,
        },
        LayerKind::Add => in_elems,
        LayerKind::Concat { .. } => 0,
        LayerKind::Softmax => 5 * in_elems,
        LayerKind::Embedding(_) => 0,
        LayerKind::MatMul(m) => (m.heads * m.m * m.k * m.n) as u64,
        LayerKind::Flatten => 0,
        LayerKind::ChannelShuffle { .. } => 0,
    }
}

/// Number of learned parameters (scalars) of one layer.
pub fn layer_params(layer: &Layer) -> u64 {
    match layer.kind {
        LayerKind::Conv2d(c) => {
            c.out_ch as u64 * (c.in_ch as u64 / c.groups as u64) * c.kh as u64 * c.kw as u64
        }
        LayerKind::Linear(l) => (l.in_features * l.out_features + l.out_features) as u64,
        // gamma, beta, running mean, running var.
        LayerKind::BatchNorm => 4 * layer.input.channels() as u64,
        LayerKind::LayerNorm => 2 * layer.input.channels() as u64,
        LayerKind::Embedding(e) => (e.vocab * e.dim) as u64,
        _ => 0,
    }
}

/// Theoretical memory traffic of one layer in bytes for a single sample:
/// input read + parameter read + output write, FP32.
pub fn layer_bytes(layer: &Layer) -> u64 {
    let in_elems = layer.input.elems() as u64;
    let out_elems = layer.output.elems() as u64;
    let param_elems = layer_params(layer);
    let extra = match layer.kind {
        // The residual add reads a second operand of the same shape.
        LayerKind::Add => in_elems,
        // Softmax performs an extra pass for the max/denominator.
        LayerKind::Softmax => in_elems,
        _ => 0,
    };
    (in_elems + out_elems + param_elems + extra) * BYTES_PER_ELEM
}

/// Arithmetic intensity of a layer: FLOPs per byte of theoretical traffic.
///
/// Returns `0.0` for zero-byte layers.
pub fn arithmetic_intensity(layer: &Layer) -> f64 {
    let b = layer_bytes(layer);
    if b == 0 {
        0.0
    } else {
        layer_flops(layer) as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ActivationFn, Conv2d, Linear, Pool2d, PoolKind};
    use crate::shape::TensorShape;

    fn conv_layer(c: Conv2d, input: TensorShape) -> Layer {
        Layer::apply(LayerKind::Conv2d(c), input).unwrap()
    }

    #[test]
    fn conv_flops_match_paper_formula() {
        // Paper: FLOPs = C_out * H' * W' * C_in * K_w * K_h.
        let l = conv_layer(
            Conv2d::square(3, 64, 7, 2, 3),
            TensorShape::chw(3, 224, 224),
        );
        assert_eq!(layer_flops(&l), 64 * 112 * 112 * 3 * 49);
    }

    #[test]
    fn grouped_conv_divides_flops() {
        let mut c = Conv2d::square(64, 64, 3, 1, 1);
        c.groups = 4;
        let grouped = conv_layer(c, TensorShape::chw(64, 8, 8));
        let dense = conv_layer(Conv2d::square(64, 64, 3, 1, 1), TensorShape::chw(64, 8, 8));
        assert_eq!(layer_flops(&dense), 4 * layer_flops(&grouped));
    }

    #[test]
    fn depthwise_conv_flops() {
        let l = conv_layer(Conv2d::depthwise(32, 3, 1, 1), TensorShape::chw(32, 14, 14));
        assert_eq!(layer_flops(&l), 32 * 14 * 14 * 9);
    }

    #[test]
    fn linear_flops_and_params() {
        let l = Layer::apply(
            LayerKind::Linear(Linear {
                in_features: 2048,
                out_features: 1000,
            }),
            TensorShape::features(2048),
        )
        .unwrap();
        assert_eq!(layer_flops(&l), 2048 * 1000);
        assert_eq!(layer_params(&l), 2048 * 1000 + 1000);
    }

    #[test]
    fn linear_on_tokens_scales_with_length() {
        let l = Layer::apply(
            LayerKind::Linear(Linear {
                in_features: 768,
                out_features: 768,
            }),
            TensorShape::tokens(128, 768),
        )
        .unwrap();
        assert_eq!(layer_flops(&l), 128 * 768 * 768);
    }

    #[test]
    fn pooling_flops_scale_with_window() {
        let l = Layer::apply(
            LayerKind::Pool2d(Pool2d {
                kind: PoolKind::Max,
                k: 3,
                stride: 2,
                padding: 1,
            }),
            TensorShape::chw(64, 112, 112),
        )
        .unwrap();
        assert_eq!(layer_flops(&l), 64 * 56 * 56 * 9);
    }

    #[test]
    fn batchnorm_counts() {
        let l = Layer::apply(LayerKind::BatchNorm, TensorShape::chw(64, 56, 56)).unwrap();
        let elems = 64 * 56 * 56u64;
        assert_eq!(layer_flops(&l), 2 * elems);
        assert_eq!(layer_params(&l), 4 * 64);
        assert_eq!(layer_bytes(&l), (2 * elems + 4 * 64) * BYTES_PER_ELEM);
    }

    #[test]
    fn add_reads_two_operands() {
        let l = Layer::apply(LayerKind::Add, TensorShape::chw(64, 8, 8)).unwrap();
        let elems = 64 * 8 * 8u64;
        assert_eq!(layer_bytes(&l), 3 * elems * BYTES_PER_ELEM);
    }

    #[test]
    fn zero_flop_layers() {
        for kind in [
            LayerKind::Flatten,
            LayerKind::Concat { parts: 2 },
            LayerKind::ChannelShuffle { groups: 4 },
        ] {
            let l = Layer::apply(kind, TensorShape::chw(64, 8, 8)).unwrap();
            assert_eq!(layer_flops(&l), 0, "{:?}", l.kind);
        }
    }

    #[test]
    fn relu_cheaper_than_gelu() {
        let relu = Layer::apply(
            LayerKind::Activation(ActivationFn::Relu),
            TensorShape::chw(8, 8, 8),
        )
        .unwrap();
        let gelu = Layer::apply(
            LayerKind::Activation(ActivationFn::Gelu),
            TensorShape::chw(8, 8, 8),
        )
        .unwrap();
        assert!(layer_flops(&relu) < layer_flops(&gelu));
    }

    #[test]
    fn arithmetic_intensity_higher_for_conv_than_bn() {
        let conv = conv_layer(
            Conv2d::square(256, 256, 3, 1, 1),
            TensorShape::chw(256, 14, 14),
        );
        let bn = Layer::apply(LayerKind::BatchNorm, TensorShape::chw(256, 14, 14)).unwrap();
        assert!(arithmetic_intensity(&conv) > 10.0 * arithmetic_intensity(&bn));
    }
}
