//! Layer definitions and shape inference.
//!
//! A [`Layer`] is a [`LayerKind`] plus its resolved input/output shapes.
//! The kinds cover everything the paper's zoo needs: CNN building blocks
//! (CONV, FC, Pooling, BatchNorm, activations, residual Add, Concat) and the
//! transformer extension (LayerNorm, Softmax, Embedding, attention MatMul).

use crate::shape::{ShapeError, TensorShape};
use std::fmt;

/// Pointwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationFn {
    /// Rectified linear unit.
    Relu,
    /// ReLU clamped at 6 (MobileNet family).
    Relu6,
    /// Gaussian error linear unit (transformers).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl fmt::Display for ActivationFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivationFn::Relu => "relu",
            ActivationFn::Relu6 => "relu6",
            ActivationFn::Gelu => "gelu",
            ActivationFn::Sigmoid => "sigmoid",
        };
        f.write_str(s)
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// 2-D convolution parameters (see the paper's Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2d {
    /// Input channels `C_in`.
    pub in_ch: usize,
    /// Output channels `C_out` (number of filters).
    pub out_ch: usize,
    /// Filter height `K_h`.
    pub kh: usize,
    /// Filter width `K_w`.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Group count; `groups == in_ch` is a depthwise convolution.
    pub groups: usize,
}

impl Conv2d {
    /// Convenience constructor for an ungrouped square convolution.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_dnn::Conv2d;
    /// let c = Conv2d::square(64, 128, 3, 1, 1);
    /// assert_eq!(c.groups, 1);
    /// assert_eq!((c.kh, c.kw), (3, 3));
    /// ```
    pub fn square(in_ch: usize, out_ch: usize, k: usize, stride: usize, padding: usize) -> Self {
        Conv2d {
            in_ch,
            out_ch,
            kh: k,
            kw: k,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Convenience constructor for a square depthwise convolution
    /// (`groups == in_ch == out_ch`).
    pub fn depthwise(ch: usize, k: usize, stride: usize, padding: usize) -> Self {
        Conv2d {
            in_ch: ch,
            out_ch: ch,
            kh: k,
            kw: k,
            stride,
            padding,
            groups: ch,
        }
    }

    /// Returns `true` if this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.in_ch && self.in_ch == self.out_ch
    }

    /// Returns `true` if this is a pointwise (1x1) convolution.
    pub fn is_pointwise(&self) -> bool {
        self.kh == 1 && self.kw == 1
    }
}

/// Fully connected (linear) layer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Linear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
}

/// 2-D pooling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2d {
    /// Max or average pooling.
    pub kind: PoolKind,
    /// Square window size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
}

/// Token embedding lookup parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Embedding {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

/// A batched matrix multiplication, as used by attention
/// (`heads` independent `m x k` by `k x n` products per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatMul {
    /// Number of independent (head) multiplications.
    pub heads: usize,
    /// Rows of the left operand.
    pub m: usize,
    /// Contraction dimension.
    pub k: usize,
    /// Columns of the right operand.
    pub n: usize,
}

/// The operation a [`Layer`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer (applied per token for sequence inputs).
    Linear(Linear),
    /// 2-D pooling.
    Pool2d(Pool2d),
    /// Global average pooling: feature map to feature vector.
    GlobalAvgPool,
    /// Batch normalization (inference mode).
    BatchNorm,
    /// Layer normalization over the hidden dimension.
    LayerNorm,
    /// Pointwise activation.
    Activation(ActivationFn),
    /// Element-wise residual addition of two same-shape tensors.
    Add,
    /// Channel concatenation of `parts` tensors; the recorded input shape is
    /// the already-concatenated result (DenseNet-style).
    Concat {
        /// How many tensors are concatenated.
        parts: usize,
    },
    /// Softmax over the last dimension.
    Softmax,
    /// Token embedding lookup (input is token ids of the given sequence).
    Embedding(Embedding),
    /// Batched attention matrix multiplication.
    MatMul(MatMul),
    /// Reshape of a feature map into a feature vector; free at run time apart
    /// from a possible copy.
    Flatten,
    /// ShuffleNet channel shuffle with the given group count.
    ChannelShuffle {
        /// Number of groups the channels are interleaved across.
        groups: usize,
    },
}

impl LayerKind {
    /// Short lowercase type tag used in dataset CSV files and as the grouping
    /// key of the paper's Layer-Wise model (its "one regression per layer
    /// type").
    pub fn type_tag(&self) -> &'static str {
        match self {
            LayerKind::Conv2d(c) if c.is_depthwise() => "conv_dw",
            LayerKind::Conv2d(_) => "conv",
            LayerKind::Linear(_) => "fc",
            LayerKind::Pool2d(_) => "pool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm => "bn",
            LayerKind::LayerNorm => "ln",
            LayerKind::Activation(_) => "act",
            LayerKind::Add => "add",
            LayerKind::Concat { .. } => "concat",
            LayerKind::Softmax => "softmax",
            LayerKind::Embedding(_) => "embed",
            LayerKind::MatMul(_) => "matmul",
            LayerKind::Flatten => "flatten",
            LayerKind::ChannelShuffle { .. } => "shuffle",
        }
    }

    /// Infers the output shape for this operation applied to `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the input variant, channel or feature
    /// count does not match the layer, when a window does not fit, or when a
    /// structural parameter is invalid.
    pub fn infer_output(&self, input: &TensorShape) -> Result<TensorShape, ShapeError> {
        match self {
            LayerKind::Conv2d(c) => {
                let (ci, h, w) = as_feature_map(input)?;
                if c.groups == 0 || c.stride == 0 || c.kh == 0 || c.kw == 0 {
                    return Err(ShapeError::InvalidParameter {
                        what: "conv geometry",
                    });
                }
                if ci != c.in_ch {
                    return Err(ShapeError::ChannelMismatch {
                        expected: c.in_ch,
                        got: ci,
                    });
                }
                if c.in_ch % c.groups != 0 || c.out_ch % c.groups != 0 {
                    return Err(ShapeError::InvalidParameter {
                        what: "conv groups",
                    });
                }
                let oh = conv_out(h, c.kh, c.stride, c.padding);
                let ow = conv_out(w, c.kw, c.stride, c.padding);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(TensorShape::chw(c.out_ch, oh, ow)),
                    _ => Err(ShapeError::EmptyOutput { input: *input }),
                }
            }
            LayerKind::Linear(l) => match *input {
                TensorShape::Features { d } if d == l.in_features => {
                    Ok(TensorShape::features(l.out_features))
                }
                TensorShape::Features { d } => Err(ShapeError::FeatureMismatch {
                    expected: l.in_features,
                    got: d,
                }),
                TensorShape::Tokens { len, d } if d == l.in_features => {
                    Ok(TensorShape::tokens(len, l.out_features))
                }
                TensorShape::Tokens { d, .. } => Err(ShapeError::FeatureMismatch {
                    expected: l.in_features,
                    got: d,
                }),
                other => Err(ShapeError::RankMismatch {
                    expected: "features or tokens",
                    got: other,
                }),
            },
            LayerKind::Pool2d(p) => {
                let (c, h, w) = as_feature_map(input)?;
                if p.k == 0 || p.stride == 0 {
                    return Err(ShapeError::InvalidParameter {
                        what: "pool geometry",
                    });
                }
                let oh = conv_out(h, p.k, p.stride, p.padding);
                let ow = conv_out(w, p.k, p.stride, p.padding);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(TensorShape::chw(c, oh, ow)),
                    _ => Err(ShapeError::EmptyOutput { input: *input }),
                }
            }
            LayerKind::GlobalAvgPool => {
                let (c, _, _) = as_feature_map(input)?;
                Ok(TensorShape::features(c))
            }
            LayerKind::BatchNorm => {
                as_feature_map(input)?;
                Ok(*input)
            }
            LayerKind::LayerNorm
            | LayerKind::Activation(_)
            | LayerKind::Add
            | LayerKind::Softmax => Ok(*input),
            LayerKind::Concat { parts } => {
                if *parts < 2 {
                    return Err(ShapeError::InvalidParameter {
                        what: "concat parts",
                    });
                }
                Ok(*input)
            }
            LayerKind::Embedding(e) => match *input {
                TensorShape::Tokens { len, .. } => Ok(TensorShape::tokens(len, e.dim)),
                other => Err(ShapeError::RankMismatch {
                    expected: "tokens",
                    got: other,
                }),
            },
            LayerKind::MatMul(m) => match *input {
                TensorShape::Tokens { .. } => {
                    if m.heads == 0 || m.m == 0 || m.k == 0 || m.n == 0 {
                        return Err(ShapeError::InvalidParameter {
                            what: "matmul dims",
                        });
                    }
                    // Output re-expressed as a token tensor of m rows with
                    // heads*n features.
                    Ok(TensorShape::tokens(m.m, m.heads * m.n))
                }
                other => Err(ShapeError::RankMismatch {
                    expected: "tokens",
                    got: other,
                }),
            },
            LayerKind::Flatten => Ok(TensorShape::features(input.elems())),
            LayerKind::ChannelShuffle { groups } => {
                let (c, _, _) = as_feature_map(input)?;
                if *groups == 0 || c % groups != 0 {
                    return Err(ShapeError::InvalidParameter {
                        what: "shuffle groups",
                    });
                }
                Ok(*input)
            }
        }
    }
}

fn as_feature_map(s: &TensorShape) -> Result<(usize, usize, usize), ShapeError> {
    match *s {
        TensorShape::FeatureMap { c, h, w } => Ok((c, h, w)),
        other => Err(ShapeError::RankMismatch {
            expected: "feature-map",
            got: other,
        }),
    }
}

fn conv_out(size: usize, k: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = size + 2 * padding;
    if padded < k {
        return None;
    }
    Some((padded - k) / stride + 1)
}

/// A concrete layer instance: its operation plus resolved input and output
/// shapes (per sample; the batch dimension is applied later).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// The operation.
    pub kind: LayerKind,
    /// Per-sample input shape.
    pub input: TensorShape,
    /// Per-sample output shape.
    pub output: TensorShape,
}

impl Layer {
    /// Applies `kind` to `input`, running shape inference.
    ///
    /// # Errors
    ///
    /// Propagates the [`ShapeError`] from [`LayerKind::infer_output`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_dnn::{Conv2d, Layer, LayerKind, TensorShape};
    ///
    /// # fn main() -> Result<(), dnnperf_dnn::ShapeError> {
    /// let l = Layer::apply(
    ///     LayerKind::Conv2d(Conv2d::square(3, 64, 7, 2, 3)),
    ///     TensorShape::chw(3, 224, 224),
    /// )?;
    /// assert_eq!(l.output, TensorShape::chw(64, 112, 112));
    /// # Ok(())
    /// # }
    /// ```
    pub fn apply(kind: LayerKind, input: TensorShape) -> Result<Self, ShapeError> {
        let output = kind.infer_output(&input)?;
        Ok(Layer {
            kind,
            input,
            output,
        })
    }

    /// Creates a layer with explicitly supplied shapes, bypassing inference.
    ///
    /// Intended for non-chain topologies (residual downsample paths,
    /// concatenations) where the builder tracks shapes itself.
    pub fn with_shapes(kind: LayerKind, input: TensorShape, output: TensorShape) -> Self {
        Layer {
            kind,
            input,
            output,
        }
    }

    /// Short lowercase type tag; see [`LayerKind::type_tag`].
    pub fn type_tag(&self) -> &'static str {
        self.kind.type_tag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm(c: usize, h: usize, w: usize) -> TensorShape {
        TensorShape::chw(c, h, w)
    }

    #[test]
    fn conv_same_padding_keeps_size() {
        let k = LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1));
        assert_eq!(k.infer_output(&fm(64, 56, 56)).unwrap(), fm(64, 56, 56));
    }

    #[test]
    fn conv_stride_two_halves_size() {
        let k = LayerKind::Conv2d(Conv2d::square(64, 128, 3, 2, 1));
        assert_eq!(k.infer_output(&fm(64, 56, 56)).unwrap(), fm(128, 28, 28));
    }

    #[test]
    fn resnet_stem_shapes() {
        let k = LayerKind::Conv2d(Conv2d::square(3, 64, 7, 2, 3));
        assert_eq!(k.infer_output(&fm(3, 224, 224)).unwrap(), fm(64, 112, 112));
        let p = LayerKind::Pool2d(Pool2d {
            kind: PoolKind::Max,
            k: 3,
            stride: 2,
            padding: 1,
        });
        assert_eq!(p.infer_output(&fm(64, 112, 112)).unwrap(), fm(64, 56, 56));
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let k = LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1));
        assert_eq!(
            k.infer_output(&fm(32, 56, 56)),
            Err(ShapeError::ChannelMismatch {
                expected: 64,
                got: 32
            })
        );
    }

    #[test]
    fn conv_window_too_big_rejected() {
        let k = LayerKind::Conv2d(Conv2d::square(3, 8, 7, 1, 0));
        assert!(matches!(
            k.infer_output(&fm(3, 4, 4)),
            Err(ShapeError::EmptyOutput { .. })
        ));
    }

    #[test]
    fn depthwise_groups_validated() {
        let c = Conv2d::depthwise(32, 3, 1, 1);
        assert!(c.is_depthwise());
        let k = LayerKind::Conv2d(c);
        assert_eq!(k.infer_output(&fm(32, 14, 14)).unwrap(), fm(32, 14, 14));
    }

    #[test]
    fn grouped_conv_invalid_groups_rejected() {
        let mut c = Conv2d::square(30, 60, 1, 1, 0);
        c.groups = 4; // 30 % 4 != 0
        assert_eq!(
            LayerKind::Conv2d(c).infer_output(&fm(30, 8, 8)),
            Err(ShapeError::InvalidParameter {
                what: "conv groups"
            })
        );
    }

    #[test]
    fn linear_on_features_and_tokens() {
        let k = LayerKind::Linear(Linear {
            in_features: 512,
            out_features: 1000,
        });
        assert_eq!(
            k.infer_output(&TensorShape::features(512)).unwrap(),
            TensorShape::features(1000)
        );
        assert_eq!(
            k.infer_output(&TensorShape::tokens(128, 512)).unwrap(),
            TensorShape::tokens(128, 1000)
        );
        assert!(k.infer_output(&TensorShape::features(256)).is_err());
        assert!(k.infer_output(&fm(512, 1, 1)).is_err());
    }

    #[test]
    fn global_avg_pool_flattens() {
        assert_eq!(
            LayerKind::GlobalAvgPool
                .infer_output(&fm(2048, 7, 7))
                .unwrap(),
            TensorShape::features(2048)
        );
    }

    #[test]
    fn flatten_counts_elems() {
        assert_eq!(
            LayerKind::Flatten.infer_output(&fm(512, 7, 7)).unwrap(),
            TensorShape::features(512 * 7 * 7)
        );
    }

    #[test]
    fn pointwise_ops_preserve_shape() {
        for k in [
            LayerKind::BatchNorm,
            LayerKind::Activation(ActivationFn::Relu),
            LayerKind::Add,
        ] {
            assert_eq!(k.infer_output(&fm(64, 8, 8)).unwrap(), fm(64, 8, 8));
        }
        assert_eq!(
            LayerKind::LayerNorm
                .infer_output(&TensorShape::tokens(128, 768))
                .unwrap(),
            TensorShape::tokens(128, 768)
        );
    }

    #[test]
    fn batchnorm_rejects_tokens() {
        assert!(LayerKind::BatchNorm
            .infer_output(&TensorShape::tokens(4, 4))
            .is_err());
    }

    #[test]
    fn embedding_and_matmul() {
        let e = LayerKind::Embedding(Embedding {
            vocab: 30522,
            dim: 768,
        });
        assert_eq!(
            e.infer_output(&TensorShape::tokens(128, 1)).unwrap(),
            TensorShape::tokens(128, 768)
        );
        let m = LayerKind::MatMul(MatMul {
            heads: 12,
            m: 128,
            k: 64,
            n: 128,
        });
        assert_eq!(
            m.infer_output(&TensorShape::tokens(128, 768)).unwrap(),
            TensorShape::tokens(128, 12 * 128)
        );
    }

    #[test]
    fn channel_shuffle_validates_groups() {
        let ok = LayerKind::ChannelShuffle { groups: 4 };
        assert_eq!(ok.infer_output(&fm(240, 28, 28)).unwrap(), fm(240, 28, 28));
        let bad = LayerKind::ChannelShuffle { groups: 7 };
        assert!(bad.infer_output(&fm(240, 28, 28)).is_err());
    }

    #[test]
    fn concat_requires_two_parts() {
        assert!(LayerKind::Concat { parts: 1 }
            .infer_output(&fm(8, 4, 4))
            .is_err());
        assert!(LayerKind::Concat { parts: 2 }
            .infer_output(&fm(8, 4, 4))
            .is_ok());
    }

    #[test]
    fn type_tags_distinguish_depthwise() {
        assert_eq!(
            LayerKind::Conv2d(Conv2d::depthwise(8, 3, 1, 1)).type_tag(),
            "conv_dw"
        );
        assert_eq!(
            LayerKind::Conv2d(Conv2d::square(8, 8, 3, 1, 1)).type_tag(),
            "conv"
        );
    }
}
