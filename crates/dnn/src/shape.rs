//! Per-sample tensor shapes and shape-inference errors.
//!
//! Shapes are stored *per sample*: the batch dimension `N` is applied at
//! measurement/prediction time (the paper's O3 — batch size is a pure
//! multiplier on the amount of work).

use std::error::Error;
use std::fmt;

/// The shape of one sample's activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorShape {
    /// An image-style feature map: `channels x height x width`.
    FeatureMap {
        /// Number of channels.
        c: usize,
        /// Feature-map height.
        h: usize,
        /// Feature-map width.
        w: usize,
    },
    /// A flat feature vector of `d` features.
    Features {
        /// Number of features.
        d: usize,
    },
    /// A token sequence: `len` tokens of `d` model dimensions.
    Tokens {
        /// Sequence length.
        len: usize,
        /// Model (hidden) dimension.
        d: usize,
    },
}

impl TensorShape {
    /// Creates a `channels x height x width` feature-map shape.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = dnnperf_dnn::TensorShape::chw(3, 224, 224);
    /// assert_eq!(s.elems(), 3 * 224 * 224);
    /// ```
    pub fn chw(c: usize, h: usize, w: usize) -> Self {
        TensorShape::FeatureMap { c, h, w }
    }

    /// Creates a flat feature-vector shape of `d` features.
    pub fn features(d: usize) -> Self {
        TensorShape::Features { d }
    }

    /// Creates a token-sequence shape of `len` tokens with hidden size `d`.
    pub fn tokens(len: usize, d: usize) -> Self {
        TensorShape::Tokens { len, d }
    }

    /// Total number of scalar elements in one sample.
    pub fn elems(&self) -> usize {
        match *self {
            TensorShape::FeatureMap { c, h, w } => c * h * w,
            TensorShape::Features { d } => d,
            TensorShape::Tokens { len, d } => len * d,
        }
    }

    /// Number of channels (feature maps) or features/hidden size.
    ///
    /// For [`TensorShape::FeatureMap`] this is `c`; for the flat variants it
    /// is the feature dimension.
    pub fn channels(&self) -> usize {
        match *self {
            TensorShape::FeatureMap { c, .. } => c,
            TensorShape::Features { d } => d,
            TensorShape::Tokens { d, .. } => d,
        }
    }

    /// Spatial size `h * w` of a feature map, `1` for flat shapes and the
    /// sequence length for token shapes.
    pub fn spatial(&self) -> usize {
        match *self {
            TensorShape::FeatureMap { h, w, .. } => h * w,
            TensorShape::Features { .. } => 1,
            TensorShape::Tokens { len, .. } => len,
        }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::FeatureMap { c, h, w } => write!(f, "{c}x{h}x{w}"),
            TensorShape::Features { d } => write!(f, "{d}"),
            TensorShape::Tokens { len, d } => write!(f, "{len}x{d}"),
        }
    }
}

/// Errors produced by shape inference when a layer is applied to an
/// incompatible input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// The layer expects a different tensor rank/variant than it was given.
    RankMismatch {
        /// Human-readable description of the expected variant.
        expected: &'static str,
        /// The shape that was actually supplied.
        got: TensorShape,
    },
    /// The layer expects a specific channel count.
    ChannelMismatch {
        /// Channel count the layer was constructed for.
        expected: usize,
        /// Channel count of the supplied input.
        got: usize,
    },
    /// The layer expects a specific feature count.
    FeatureMismatch {
        /// Feature count the layer was constructed for.
        expected: usize,
        /// Feature count of the supplied input.
        got: usize,
    },
    /// A convolution/pooling window does not fit in the (padded) input.
    EmptyOutput {
        /// Input shape that produced an empty output.
        input: TensorShape,
    },
    /// A structural parameter (kernel, stride, groups, ...) is zero or
    /// inconsistent.
    InvalidParameter {
        /// Name of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::RankMismatch { expected, got } => {
                write!(f, "expected {expected} input, got shape {got}")
            }
            ShapeError::ChannelMismatch { expected, got } => {
                write!(f, "layer expects {expected} input channels, got {got}")
            }
            ShapeError::FeatureMismatch { expected, got } => {
                write!(f, "layer expects {expected} input features, got {got}")
            }
            ShapeError::EmptyOutput { input } => {
                write!(
                    f,
                    "window does not fit input {input}: output would be empty"
                )
            }
            ShapeError::InvalidParameter { what } => {
                write!(f, "invalid layer parameter: {what}")
            }
        }
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_counts_all_variants() {
        assert_eq!(TensorShape::chw(64, 56, 56).elems(), 64 * 56 * 56);
        assert_eq!(TensorShape::features(1000).elems(), 1000);
        assert_eq!(TensorShape::tokens(128, 768).elems(), 128 * 768);
    }

    #[test]
    fn channels_and_spatial() {
        let fm = TensorShape::chw(32, 7, 9);
        assert_eq!(fm.channels(), 32);
        assert_eq!(fm.spatial(), 63);
        assert_eq!(TensorShape::features(10).spatial(), 1);
        assert_eq!(TensorShape::tokens(128, 768).spatial(), 128);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorShape::chw(3, 224, 224).to_string(), "3x224x224");
        assert_eq!(TensorShape::features(512).to_string(), "512");
        assert_eq!(TensorShape::tokens(128, 256).to_string(), "128x256");
    }

    #[test]
    fn errors_display() {
        let e = ShapeError::ChannelMismatch {
            expected: 64,
            got: 32,
        };
        assert!(e.to_string().contains("64"));
        let e = ShapeError::RankMismatch {
            expected: "feature-map",
            got: TensorShape::features(8),
        };
        assert!(e.to_string().contains("feature-map"));
    }
}
