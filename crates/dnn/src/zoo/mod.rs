//! The dnnperf model zoo.
//!
//! Parametric generators for the network families the paper's dataset draws
//! from TorchVision and HuggingFace: ResNet, VGG, DenseNet, MobileNetV2,
//! ShuffleNet v1, SqueezeNet, AlexNet and encoder-only text-classification
//! transformers. [`catalog`] assembles them into the paper's 646-network CNN
//! dataset plus the transformer extension set.
//!
//! All generators are deterministic and infallible: an architecture that
//! fails shape inference is a bug in the generator, so construction panics
//! rather than returning `Result`.

pub mod alexnet;
pub mod catalog;
pub mod densenet;
pub mod inception;
pub mod mobilenet;
pub mod resnet;
pub mod resnext;
pub mod shufflenet;
pub mod squeezenet;
pub mod transformer;
pub mod vgg;

pub use catalog::{by_name, cnn_zoo, extended_zoo, full_zoo, transformer_zoo};

/// Unwraps a shape-inference result inside an architecture generator.
macro_rules! arch {
    ($e:expr) => {
        $e.expect("zoo generator produced an invalid architecture")
    };
}
pub(crate) use arch;

/// ImageNet classifier input shape: 3x224x224.
pub(crate) fn imagenet_input() -> crate::shape::TensorShape {
    crate::shape::TensorShape::chw(3, 224, 224)
}

/// Number of ILSVRC2012 classes.
pub(crate) const NUM_CLASSES: usize = 1000;

/// Rounds a scaled channel count to the nearest multiple of `divisor`,
/// never going below `divisor` and never dropping more than 10% (the
/// standard `make_divisible` rule from the MobileNet reference code).
pub(crate) fn make_divisible(v: f64, divisor: usize) -> usize {
    let d = divisor as f64;
    let new_v = ((v + d / 2.0) / d).floor() * d;
    let new_v = new_v.max(d);
    let new_v = if new_v < 0.9 * v { new_v + d } else { new_v };
    new_v as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_divisible_behaves_like_reference() {
        assert_eq!(make_divisible(32.0, 8), 32);
        assert_eq!(make_divisible(33.0, 8), 32);
        assert_eq!(make_divisible(37.0, 8), 40);
        assert_eq!(make_divisible(4.0, 8), 8);
        // Never drops more than 10%.
        assert_eq!(make_divisible(39.0, 8), 40);
    }
}
