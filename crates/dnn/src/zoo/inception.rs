//! GoogLeNet / Inception-v1 generators: four parallel branches per block,
//! merged by channel concatenation — the most branch-heavy topology in the
//! zoo.

use super::{arch, imagenet_input, make_divisible, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{ActivationFn, Conv2d, LayerKind, Pool2d, PoolKind};
use crate::shape::TensorShape;

/// Per-branch output channels of one inception block:
/// (1x1, 3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-proj).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionBlock {
    /// 1x1 branch channels.
    pub c1: usize,
    /// 3x3 branch reduction channels.
    pub r3: usize,
    /// 3x3 branch output channels.
    pub c3: usize,
    /// 5x5 branch reduction channels.
    pub r5: usize,
    /// 5x5 branch output channels.
    pub c5: usize,
    /// Pool-projection branch channels.
    pub pp: usize,
}

impl InceptionBlock {
    /// Total output channels of the block.
    pub fn out_channels(&self) -> usize {
        self.c1 + self.c3 + self.c5 + self.pp
    }
}

/// The nine blocks of the original GoogLeNet.
pub const GOOGLENET_BLOCKS: [InceptionBlock; 9] = [
    InceptionBlock {
        c1: 64,
        r3: 96,
        c3: 128,
        r5: 16,
        c5: 32,
        pp: 32,
    },
    InceptionBlock {
        c1: 128,
        r3: 128,
        c3: 192,
        r5: 32,
        c5: 96,
        pp: 64,
    },
    InceptionBlock {
        c1: 192,
        r3: 96,
        c3: 208,
        r5: 16,
        c5: 48,
        pp: 64,
    },
    InceptionBlock {
        c1: 160,
        r3: 112,
        c3: 224,
        r5: 24,
        c5: 64,
        pp: 64,
    },
    InceptionBlock {
        c1: 128,
        r3: 128,
        c3: 256,
        r5: 24,
        c5: 64,
        pp: 64,
    },
    InceptionBlock {
        c1: 112,
        r3: 144,
        c3: 288,
        r5: 32,
        c5: 64,
        pp: 64,
    },
    InceptionBlock {
        c1: 256,
        r3: 160,
        c3: 320,
        r5: 32,
        c5: 128,
        pp: 128,
    },
    InceptionBlock {
        c1: 256,
        r3: 160,
        c3: 320,
        r5: 32,
        c5: 128,
        pp: 128,
    },
    InceptionBlock {
        c1: 384,
        r3: 192,
        c3: 384,
        r5: 48,
        c5: 128,
        pp: 128,
    },
];

/// After which blocks (0-based) GoogLeNet inserts a stride-2 max pool.
const POOL_AFTER: [usize; 2] = [1, 6];

/// Builds a GoogLeNet-style network with a channel width multiplier.
///
/// # Panics
///
/// Panics if `width` is not positive.
///
/// # Examples
///
/// ```
/// let net = dnnperf_dnn::zoo::inception::googlenet(1.0);
/// assert_eq!(net.name(), "GoogLeNet");
/// ```
pub fn googlenet(width: f64) -> Network {
    assert!(width > 0.0, "non-positive width");
    let name = if width == 1.0 {
        "GoogLeNet".to_string()
    } else {
        format!("GoogLeNet-x{width}")
    };
    let s = |c: usize| make_divisible(c as f64 * width, 8);

    let mut b = NetworkBuilder::new(name, Family::Inception, imagenet_input());
    arch!(b.conv(s(64), 7, 2, 3));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));
    arch!(b.conv(s(64), 1, 1, 0));
    arch!(b.relu());
    arch!(b.conv(s(192), 3, 1, 1));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));

    for (i, block) in GOOGLENET_BLOCKS.iter().enumerate() {
        inception_block(&mut b, block, &s);
        if POOL_AFTER.contains(&i) {
            arch!(b.max_pool(3, 2, 1));
        }
    }

    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn inception_block(b: &mut NetworkBuilder, cfg: &InceptionBlock, s: &dyn Fn(usize) -> usize) {
    let entry = b.shape();
    let (in_ch, h, w) = match entry {
        TensorShape::FeatureMap { c, h, w } => (c, h, w),
        _ => unreachable!("inception blocks operate on feature maps"),
    };
    let conv = |cin: usize, cout: usize, k: usize, pad: usize| {
        LayerKind::Conv2d(Conv2d {
            in_ch: cin,
            out_ch: cout,
            kh: k,
            kw: k,
            stride: 1,
            padding: pad,
            groups: 1,
        })
    };
    let relu = LayerKind::Activation(ActivationFn::Relu);
    let fm = |c: usize| TensorShape::chw(c, h, w);

    // Branch 1: 1x1 (chained from the entry).
    arch!(b.conv(s(cfg.c1), 1, 1, 0));
    arch!(b.relu());
    // Branch 2: 1x1 reduce then 3x3 — reads the block entry.
    b.push_shaped(conv(in_ch, s(cfg.r3), 1, 0), entry, fm(s(cfg.r3)));
    b.push_shaped(relu, fm(s(cfg.r3)), fm(s(cfg.r3)));
    b.push_shaped(
        conv(s(cfg.r3), s(cfg.c3), 3, 1),
        fm(s(cfg.r3)),
        fm(s(cfg.c3)),
    );
    b.push_shaped(relu, fm(s(cfg.c3)), fm(s(cfg.c3)));
    // Branch 3: 1x1 reduce then 5x5.
    b.push_shaped(conv(in_ch, s(cfg.r5), 1, 0), entry, fm(s(cfg.r5)));
    b.push_shaped(relu, fm(s(cfg.r5)), fm(s(cfg.r5)));
    b.push_shaped(
        conv(s(cfg.r5), s(cfg.c5), 5, 2),
        fm(s(cfg.r5)),
        fm(s(cfg.c5)),
    );
    b.push_shaped(relu, fm(s(cfg.c5)), fm(s(cfg.c5)));
    // Branch 4: 3x3 max pool then 1x1 projection.
    b.push_shaped(
        LayerKind::Pool2d(Pool2d {
            kind: PoolKind::Max,
            k: 3,
            stride: 1,
            padding: 1,
        }),
        entry,
        fm(in_ch),
    );
    b.push_shaped(conv(in_ch, s(cfg.pp), 1, 0), fm(in_ch), fm(s(cfg.pp)));
    b.push_shaped(relu, fm(s(cfg.pp)), fm(s(cfg.pp)));
    // Merge.
    let out = fm(s(cfg.c1) + s(cfg.c3) + s(cfg.c5) + s(cfg.pp));
    b.push_shaped(LayerKind::Concat { parts: 4 }, out, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_flops_in_expected_range() {
        // thop reports ~1.5 GMACs for GoogLeNet at 224x224.
        let g = googlenet(1.0).total_flops() as f64 / 1e9;
        assert!(g > 1.0 && g < 2.5, "got {g} GFLOPs");
    }

    #[test]
    fn googlenet_params_in_expected_range() {
        // ~6.6 M parameters (no auxiliary heads).
        let m = googlenet(1.0).total_params() as f64 / 1e6;
        assert!(m > 5.0 && m < 8.5, "got {m} M params");
    }

    #[test]
    fn nine_inception_blocks() {
        let concats = googlenet(1.0)
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat { parts: 4 }))
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn block_channel_accounting() {
        // Block 3a outputs 256 channels at 28x28.
        let net = googlenet(1.0);
        let first_concat = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Concat { .. }))
            .unwrap();
        assert_eq!(first_concat.output, TensorShape::chw(256, 28, 28));
        assert_eq!(GOOGLENET_BLOCKS[0].out_channels(), 256);
    }

    #[test]
    fn width_scales_cost() {
        assert!(googlenet(1.5).total_flops() > googlenet(0.75).total_flops());
    }
}
