//! ResNeXt generators: ResNet bottlenecks whose 3x3 convolution is grouped
//! ("cardinality"), e.g. ResNeXt-50 32x4d.

use super::{arch, imagenet_input, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{Conv2d, LayerKind};

/// Builds a ResNeXt with the given per-stage block counts, cardinality and
/// per-group base width (32 and 4 give the canonical `32x4d`).
///
/// # Panics
///
/// Panics if any block count is zero or `cardinality`/`base_width` is zero.
///
/// # Examples
///
/// ```
/// let net = dnnperf_dnn::zoo::resnext::resnext(&[3, 4, 6, 3], 32, 4);
/// assert_eq!(net.name(), "ResNeXt-50-32x4d");
/// ```
pub fn resnext(blocks: &[usize; 4], cardinality: usize, base_width: usize) -> Network {
    assert!(blocks.iter().all(|&b| b > 0), "empty ResNeXt stage");
    assert!(cardinality > 0 && base_width > 0, "zero ResNeXt geometry");
    let depth = 2 + 3 * blocks.iter().sum::<usize>();
    let name = format!("ResNeXt-{depth}-{cardinality}x{base_width}d");

    let mut b = NetworkBuilder::new(name, Family::ResNet, imagenet_input());
    arch!(b.conv(64, 7, 2, 3));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));

    for (stage, &n_blocks) in blocks.iter().enumerate() {
        let planes = 64 << stage;
        let mid = planes * base_width * cardinality / 64;
        let out_ch = planes * 4;
        for block in 0..n_blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            resnext_block(&mut b, mid, out_ch, cardinality, stride);
        }
    }

    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn resnext_block(
    b: &mut NetworkBuilder,
    mid_ch: usize,
    out_ch: usize,
    cardinality: usize,
    stride: usize,
) {
    let entry = b.shape();
    arch!(b.conv(mid_ch, 1, 1, 0));
    arch!(b.bn());
    arch!(b.relu());
    // The grouped 3x3: ResNeXt's signature operation.
    let grouped = Conv2d {
        in_ch: mid_ch,
        out_ch: mid_ch,
        kh: 3,
        kw: 3,
        stride,
        padding: 1,
        groups: cardinality,
    };
    arch!(b.push(LayerKind::Conv2d(grouped)));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(out_ch, 1, 1, 0));
    arch!(b.bn());
    // Projection shortcut when the shape changes.
    let exit = b.shape();
    if stride != 1 || entry.channels() != exit.channels() {
        let conv = Conv2d {
            in_ch: entry.channels(),
            out_ch: exit.channels(),
            kh: 1,
            kw: 1,
            stride,
            padding: 0,
            groups: 1,
        };
        b.push_shaped(LayerKind::Conv2d(conv), entry, exit);
        b.push_shaped(LayerKind::BatchNorm, exit, exit);
    }
    arch!(b.push(LayerKind::Add));
    arch!(b.relu());
}

/// The canonical ResNeXt-50 32x4d.
pub fn resnext50_32x4d() -> Network {
    resnext(&[3, 4, 6, 3], 32, 4)
}

/// The canonical ResNeXt-101 32x8d.
pub fn resnext101_32x8d() -> Network {
    resnext(&[3, 4, 23, 3], 32, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::TensorShape;

    #[test]
    fn resnext50_flops_in_expected_range() {
        // thop reports ~4.3 GMACs for ResNeXt-50 32x4d at 224x224.
        let g = resnext50_32x4d().total_flops() as f64 / 1e9;
        assert!(g > 3.5 && g < 5.0, "got {g} GFLOPs");
    }

    #[test]
    fn resnext50_params_in_expected_range() {
        // ~25 M parameters.
        let m = resnext50_32x4d().total_params() as f64 / 1e6;
        assert!(m > 22.0 && m < 28.0, "got {m} M params");
    }

    #[test]
    fn grouped_convs_present() {
        let grouped = resnext50_32x4d()
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d(c) if c.groups == 32))
            .count();
        assert_eq!(grouped, 16); // one per bottleneck block
    }

    #[test]
    fn wider_cardinality_costs_more() {
        assert!(resnext(&[3, 4, 6, 3], 32, 8).total_flops() > resnext50_32x4d().total_flops());
    }

    #[test]
    fn shape_flow_reaches_classifier() {
        let net = resnext101_32x8d();
        assert_eq!(
            net.layers().last().unwrap().output,
            TensorShape::features(1000)
        );
    }
}
