//! VGG generators, including non-standard variants with modified per-stage
//! convolution counts (paper Figure 4).

use super::{arch, imagenet_input, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::LayerKind;

/// Number of 3x3 convolutions in each of the five VGG stages.
pub type StageConvs = [usize; 5];

const STAGE_CHANNELS: [usize; 5] = [64, 128, 256, 512, 512];

fn canonical_name(convs: &StageConvs) -> Option<&'static str> {
    match convs {
        [1, 1, 2, 2, 2] => Some("VGG-11"),
        [2, 2, 2, 2, 2] => Some("VGG-13"),
        [2, 2, 3, 3, 3] => Some("VGG-16"),
        [2, 2, 4, 4, 4] => Some("VGG-19"),
        _ => None,
    }
}

/// Nominal depth (weighted layers) of a VGG configuration.
pub fn depth_of(convs: &StageConvs) -> usize {
    convs.iter().sum::<usize>() + 3
}

/// Builds a VGG network with the given per-stage convolution counts.
///
/// # Panics
///
/// Panics if any stage has zero convolutions.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::vgg::vgg_from_stages;
///
/// let net = vgg_from_stages(&[2, 2, 3, 3, 3], false);
/// assert_eq!(net.name(), "VGG-16");
/// ```
pub fn vgg_from_stages(convs: &StageConvs, batch_norm: bool) -> Network {
    assert!(convs.iter().all(|&c| c > 0), "empty VGG stage");
    let name = match canonical_name(convs) {
        Some(n) if !batch_norm => n.to_string(),
        Some(n) => format!("{n}-BN"),
        None => {
            let d = depth_of(convs);
            let sig = convs
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("-");
            if batch_norm {
                format!("VGG-{d}[{sig}]-BN")
            } else {
                format!("VGG-{d}[{sig}]")
            }
        }
    };

    let mut b = NetworkBuilder::new(name, Family::Vgg, imagenet_input());
    for (stage, &n) in convs.iter().enumerate() {
        for _ in 0..n {
            arch!(b.conv(STAGE_CHANNELS[stage], 3, 1, 1));
            if batch_norm {
                arch!(b.bn());
            }
            arch!(b.relu());
        }
        arch!(b.max_pool(2, 2, 0));
    }
    arch!(b.push(LayerKind::Flatten));
    arch!(b.linear(4096));
    arch!(b.relu());
    arch!(b.linear(4096));
    arch!(b.relu());
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

/// Standard VGG-11 (configuration A).
pub fn vgg11() -> Network {
    vgg_from_stages(&[1, 1, 2, 2, 2], false)
}

/// Standard VGG-13 (configuration B).
pub fn vgg13() -> Network {
    vgg_from_stages(&[2, 2, 2, 2, 2], false)
}

/// Standard VGG-16 (configuration D).
pub fn vgg16() -> Network {
    vgg_from_stages(&[2, 2, 3, 3, 3], false)
}

/// Standard VGG-19 (configuration E).
pub fn vgg19() -> Network {
    vgg_from_stages(&[2, 2, 4, 4, 4], false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_flops_in_expected_range() {
        // thop reports ~15.5 GMACs for VGG-16 at 224x224.
        let g = vgg16().total_flops() as f64 / 1e9;
        assert!(g > 14.0 && g < 17.0, "got {g} GFLOPs");
    }

    #[test]
    fn vgg16_params_in_expected_range() {
        // ~138 M parameters (dominated by the FC layers).
        let m = vgg16().total_params() as f64 / 1e6;
        assert!(m > 130.0 && m < 145.0, "got {m} M params");
    }

    #[test]
    fn canonical_names() {
        assert_eq!(vgg11().name(), "VGG-11");
        assert_eq!(vgg19().name(), "VGG-19");
        assert_eq!(vgg_from_stages(&[2, 2, 3, 3, 3], true).name(), "VGG-16-BN");
    }

    #[test]
    fn depth_counts_fc_layers() {
        assert_eq!(depth_of(&[2, 2, 3, 3, 3]), 16);
        assert_eq!(depth_of(&[1, 1, 2, 2, 2]), 11);
    }

    #[test]
    fn final_feature_map_is_7x7() {
        let net = vgg16();
        let flatten = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Flatten))
            .unwrap();
        assert_eq!(flatten.input, crate::shape::TensorShape::chw(512, 7, 7));
    }

    #[test]
    fn bn_variant_has_more_layers() {
        assert!(vgg_from_stages(&[2, 2, 3, 3, 3], true).num_layers() > vgg16().num_layers());
    }

    #[test]
    fn vgg_flops_higher_than_resnet50() {
        // The motivating comparison behind Figure 4.
        assert!(vgg16().total_flops() > super::super::resnet::resnet50().total_flops());
    }
}
