//! ShuffleNet v1 generators (grouped 1x1 convolutions + channel shuffle).

use super::{arch, imagenet_input, make_divisible, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{Conv2d, LayerKind, Pool2d, PoolKind};
use crate::shape::TensorShape;

/// Stage-2 output channels for each supported group count `g`, from the
/// ShuffleNet v1 paper's Table 1.
fn stage2_channels(groups: usize) -> Option<usize> {
    match groups {
        1 => Some(144),
        2 => Some(200),
        3 => Some(240),
        4 => Some(272),
        8 => Some(384),
        _ => None,
    }
}

/// Builds a ShuffleNet v1 with the given group count and width multiplier.
///
/// `stage_repeats` gives the number of units per stage (standard is
/// `[4, 8, 4]`; the first unit of each stage is strided).
///
/// # Panics
///
/// Panics if `groups` is not one of {1, 2, 3, 4, 8} or `width` is not
/// positive.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::shufflenet::shufflenet_v1;
///
/// let net = shufflenet_v1(3, 1.0, &[4, 8, 4]);
/// assert_eq!(net.name(), "ShuffleNetV1");
/// ```
pub fn shufflenet_v1(groups: usize, width: f64, stage_repeats: &[usize; 3]) -> Network {
    let base = stage2_channels(groups).expect("unsupported ShuffleNet group count");
    assert!(width > 0.0, "non-positive width");
    let name = if groups == 3 && width == 1.0 && *stage_repeats == [4, 8, 4] {
        "ShuffleNetV1".to_string()
    } else {
        format!(
            "ShuffleNetV1-g{groups}-x{width}[{}-{}-{}]",
            stage_repeats[0], stage_repeats[1], stage_repeats[2]
        )
    };
    // Stage channels double each stage; align to a multiple of both the
    // group count and 8 so every grouped convolution stays valid.
    let align = groups * 8;
    let stage_ch: Vec<usize> = (0..3)
        .map(|s| {
            let c = base * (1 << s);
            let c = make_divisible(c as f64 * width, align);
            // make_divisible aligns to `align`, which is a multiple of groups.
            c
        })
        .collect();

    let mut b = NetworkBuilder::new(name, Family::ShuffleNet, imagenet_input());
    arch!(b.conv(24, 3, 2, 1));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));

    for (stage, &repeats) in stage_repeats.iter().enumerate() {
        let out_ch = stage_ch[stage];
        // First unit in each stage is strided and concatenative; the stage-2
        // first unit uses ungrouped 1x1 conv (per the reference code).
        let g_first = if stage == 0 { 1 } else { groups };
        strided_unit(&mut b, out_ch, groups, g_first);
        for _ in 1..repeats {
            residual_unit(&mut b, groups);
        }
    }

    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn gconv1x1(b: &mut NetworkBuilder, out_ch: usize, groups: usize) {
    let in_ch = b.shape().channels();
    let conv = Conv2d {
        in_ch,
        out_ch,
        kh: 1,
        kw: 1,
        stride: 1,
        padding: 0,
        groups,
    };
    arch!(b.push(LayerKind::Conv2d(conv)));
}

/// Stride-2 unit: the shortcut is a 3x3 average pool whose output is
/// concatenated with the residual branch.
fn strided_unit(b: &mut NetworkBuilder, out_ch: usize, groups: usize, first_groups: usize) {
    let entry = b.shape();
    let in_ch = entry.channels();
    let branch_ch = out_ch - in_ch;
    let mid = make_divisible(out_ch as f64 / 4.0, groups * 4);
    gconv1x1(b, mid, first_groups);
    arch!(b.bn());
    arch!(b.relu());
    if groups > 1 {
        arch!(b.push(LayerKind::ChannelShuffle { groups }));
    }
    arch!(b.push(LayerKind::Conv2d(Conv2d::depthwise(mid, 3, 2, 1))));
    arch!(b.bn());
    gconv1x1(b, branch_ch, groups);
    arch!(b.bn());
    // Shortcut average pool on the unit input, then channel concat.
    let branch_out = b.shape();
    let shortcut_out = match (entry, branch_out) {
        (TensorShape::FeatureMap { c, .. }, TensorShape::FeatureMap { h, w, .. }) => {
            TensorShape::chw(c, h, w)
        }
        _ => unreachable!("shufflenet operates on feature maps"),
    };
    b.push_shaped(
        LayerKind::Pool2d(Pool2d {
            kind: PoolKind::Avg,
            k: 3,
            stride: 2,
            padding: 1,
        }),
        entry,
        shortcut_out,
    );
    let merged = match branch_out {
        TensorShape::FeatureMap { h, w, .. } => TensorShape::chw(out_ch, h, w),
        _ => unreachable!(),
    };
    b.push_shaped(LayerKind::Concat { parts: 2 }, merged, merged);
    arch!(b.relu());
}

/// Stride-1 unit with an additive shortcut.
fn residual_unit(b: &mut NetworkBuilder, groups: usize) {
    let ch = b.shape().channels();
    let mid = make_divisible(ch as f64 / 4.0, groups * 4);
    gconv1x1(b, mid, groups);
    arch!(b.bn());
    arch!(b.relu());
    if groups > 1 {
        arch!(b.push(LayerKind::ChannelShuffle { groups }));
    }
    arch!(b.push(LayerKind::Conv2d(Conv2d::depthwise(mid, 3, 1, 1))));
    arch!(b.bn());
    gconv1x1(b, ch, groups);
    arch!(b.bn());
    arch!(b.push(LayerKind::Add));
    arch!(b.relu());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_builds() {
        let net = shufflenet_v1(3, 1.0, &[4, 8, 4]);
        // thop reports ~0.14 GMACs for ShuffleNet v1 1.0x g3.
        let g = net.total_flops() as f64 / 1e9;
        assert!(g > 0.08 && g < 0.35, "got {g} GFLOPs");
    }

    #[test]
    fn all_group_counts_build() {
        for g in [1, 2, 3, 4, 8] {
            let net = shufflenet_v1(g, 1.0, &[4, 8, 4]);
            assert!(net.total_flops() > 0, "g={g}");
        }
    }

    #[test]
    fn shuffle_layers_present_when_grouped() {
        let net = shufflenet_v1(4, 1.0, &[4, 8, 4]);
        let n = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::ChannelShuffle { .. }))
            .count();
        assert_eq!(n, 16);
        let ungrouped = shufflenet_v1(1, 1.0, &[4, 8, 4]);
        assert_eq!(
            ungrouped
                .layers()
                .iter()
                .filter(|l| matches!(l.kind, LayerKind::ChannelShuffle { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn width_scales_cost() {
        let half = shufflenet_v1(3, 0.5, &[4, 8, 4]).total_flops();
        let twice = shufflenet_v1(3, 2.0, &[4, 8, 4]).total_flops();
        assert!(twice > 4 * half);
    }

    #[test]
    #[should_panic(expected = "unsupported ShuffleNet group count")]
    fn bad_group_count_panics() {
        shufflenet_v1(5, 1.0, &[4, 8, 4]);
    }
}
