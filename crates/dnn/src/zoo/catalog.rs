//! Assembly of the full dnnperf dataset zoo.
//!
//! [`cnn_zoo`] deterministically generates exactly **646** image
//! classification networks — the paper's dataset size — across seven CNN
//! families; [`transformer_zoo`] adds the HuggingFace-style text
//! classification networks of the paper's transformer extension.

use super::{
    alexnet::alexnet,
    densenet::densenet_from_cfg,
    mobilenet::mobilenet_v2,
    resnet::{self, resnet_from_blocks},
    shufflenet::shufflenet_v1,
    squeezenet::squeezenet,
    transformer::{text_classifier, TransformerConfig},
    vgg::{self, vgg_from_stages},
};
use crate::graph::Network;
use std::collections::BTreeSet;

/// Number of CNNs in the paper's dataset.
pub const CNN_ZOO_SIZE: usize = 646;

fn dedup_truncate(mut pool: Vec<Network>, quota: usize) -> Vec<Network> {
    let mut seen = BTreeSet::new();
    pool.retain(|n| seen.insert(n.name().to_string()));
    assert!(
        pool.len() >= quota,
        "family pool too small: {} < {quota}",
        pool.len()
    );
    pool.truncate(quota);
    pool
}

fn resnet_pool() -> Vec<Network> {
    // Canonical networks first so they always survive truncation.
    let mut pool = vec![
        resnet::resnet18(),
        resnet::resnet34(),
        resnet::resnet44(),
        resnet::resnet50(),
        resnet::resnet62(),
        resnet::resnet77(),
        resnet::resnet101(),
        resnet::resnet152(),
    ];
    // Width variants of the canonical configurations.
    for width in [0.5, 0.75, 1.25] {
        for (blocks, bott) in [
            ([2, 2, 2, 2], false),
            ([3, 4, 6, 3], false),
            ([3, 5, 8, 5], false),
            ([3, 4, 6, 3], true),
            ([3, 4, 10, 3], true),
            ([3, 4, 15, 3], true),
            ([3, 4, 23, 3], true),
            ([3, 8, 36, 3], true),
        ] {
            pool.push(resnet_from_blocks(&blocks, bott, width));
        }
    }
    // Non-standard basic-block variants (the paper's "adding/removing
    // blocks" exploration).
    for b1 in [1, 2, 3] {
        for b2 in [2, 3, 4, 5] {
            for b3 in [2, 4, 6, 8, 10] {
                for b4 in [2, 3] {
                    pool.push(resnet_from_blocks(&[b1, b2, b3, b4], false, 1.0));
                }
            }
        }
    }
    // Non-standard bottleneck variants.
    for b1 in [2, 3] {
        for b2 in [3, 4, 6] {
            for b3 in [4, 6, 8, 10, 12, 15, 18, 21, 23, 36] {
                for b4 in [2, 3] {
                    pool.push(resnet_from_blocks(&[b1, b2, b3, b4], true, 1.0));
                }
            }
        }
    }
    pool
}

fn vgg_pool() -> Vec<Network> {
    let mut pool = vec![vgg::vgg11(), vgg::vgg13(), vgg::vgg16(), vgg::vgg19()];
    for bn in [false, true] {
        for c1 in [1, 2] {
            for c2 in [1, 2, 3] {
                for c3 in [2, 3, 4] {
                    for c4 in [2, 3, 4] {
                        for c5 in [2, 3] {
                            pool.push(vgg_from_stages(&[c1, c2, c3, c4, c5], bn));
                        }
                    }
                }
            }
        }
    }
    pool
}

fn densenet_pool() -> Vec<Network> {
    let mut pool = vec![
        densenet_from_cfg(32, &[6, 12, 24, 16]),
        densenet_from_cfg(48, &[6, 12, 36, 24]),
        densenet_from_cfg(32, &[6, 12, 32, 32]),
        densenet_from_cfg(32, &[6, 12, 48, 32]),
    ];
    let blocks: [[usize; 4]; 14] = [
        [6, 12, 24, 16],
        [6, 12, 32, 32],
        [6, 12, 36, 24],
        [6, 12, 48, 32],
        [4, 8, 16, 12],
        [6, 12, 18, 12],
        [4, 6, 8, 6],
        [2, 4, 8, 4],
        [6, 8, 12, 8],
        [8, 12, 24, 16],
        [4, 8, 12, 8],
        [6, 12, 24, 24],
        [4, 12, 20, 12],
        [6, 10, 16, 10],
    ];
    for growth in [12, 16, 24, 32, 40, 48] {
        for b in &blocks {
            pool.push(densenet_from_cfg(growth, b));
        }
    }
    pool
}

fn mobilenet_pool() -> Vec<Network> {
    let widths = [
        0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.9, 1.0, 1.1, 1.2, 1.25,
        1.3, 1.4, 1.5,
    ];
    let mut pool = Vec::new();
    for depth in [1.0, 1.5, 2.0] {
        for &w in &widths {
            pool.push(mobilenet_v2(w, depth));
        }
    }
    pool
}

fn shufflenet_pool() -> Vec<Network> {
    let mut pool = Vec::new();
    for repeats in [[4, 8, 4], [2, 4, 2]] {
        for groups in [1, 2, 3, 4, 8] {
            for width in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
                pool.push(shufflenet_v1(groups, width, &repeats));
            }
        }
    }
    pool
}

fn squeezenet_pool() -> Vec<Network> {
    let mut pool = vec![squeezenet(128, 128, 0.125)];
    for base in [64, 96, 128, 160] {
        for incr in [32, 64, 128] {
            for sr in [0.125, 0.25, 0.5] {
                pool.push(squeezenet(base, incr, sr));
            }
        }
    }
    pool
}

fn alexnet_pool() -> Vec<Network> {
    let mut pool = Vec::new();
    for stem in [11, 7] {
        for fc in [2048, 4096, 6144] {
            for width in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5] {
                pool.push(alexnet(width, fc, stem));
            }
        }
    }
    pool
}

/// Generates the 646-network CNN dataset, deterministically.
///
/// # Examples
///
/// ```no_run
/// let zoo = dnnperf_dnn::zoo::cnn_zoo();
/// assert_eq!(zoo.len(), 646);
/// ```
pub fn cnn_zoo() -> Vec<Network> {
    let mut zoo = Vec::with_capacity(CNN_ZOO_SIZE);
    zoo.extend(dedup_truncate(resnet_pool(), 250));
    zoo.extend(dedup_truncate(vgg_pool(), 150));
    zoo.extend(dedup_truncate(densenet_pool(), 80));
    zoo.extend(dedup_truncate(mobilenet_pool(), 60));
    zoo.extend(dedup_truncate(shufflenet_pool(), 40));
    zoo.extend(dedup_truncate(squeezenet_pool(), 30));
    zoo.extend(dedup_truncate(alexnet_pool(), 36));
    debug_assert_eq!(zoo.len(), CNN_ZOO_SIZE);
    zoo
}

/// Generates the transformer extension set (HuggingFace-style text
/// classification networks).
pub fn transformer_zoo() -> Vec<Network> {
    let mut zoo = Vec::new();
    for seq_len in [64, 128] {
        for layers in [2, 4, 6, 8, 12] {
            for hidden in [128, 256, 384, 512, 768] {
                zoo.push(text_classifier(TransformerConfig {
                    layers,
                    hidden,
                    heads: hidden / 64,
                    seq_len,
                    mlp_ratio: 4,
                    vocab: super::transformer::DEFAULT_VOCAB,
                    classes: 2,
                }));
            }
        }
    }
    zoo
}

/// Out-of-family networks NOT included in the 646-network dataset:
/// GoogLeNet (branch-heavy) and ResNeXt (grouped 3x3) variants. Used by the
/// `ext_zoo` experiment to probe how the kernel-level models generalize to
/// structurally novel architectures.
pub fn extended_zoo() -> Vec<Network> {
    vec![
        super::inception::googlenet(1.0),
        super::inception::googlenet(0.75),
        super::inception::googlenet(1.25),
        super::resnext::resnext50_32x4d(),
        super::resnext::resnext101_32x8d(),
        super::resnext::resnext(&[2, 3, 4, 2], 16, 4),
        super::resnext::resnext(&[3, 4, 6, 3], 8, 8),
    ]
}

/// CNNs plus transformers.
pub fn full_zoo() -> Vec<Network> {
    let mut zoo = cnn_zoo();
    zoo.extend(transformer_zoo());
    zoo
}

/// Looks up one of the well-known networks used throughout the paper's
/// figures by its display name.
///
/// Returns `None` for names outside the canonical set; use the generators in
/// [`crate::zoo`] directly for parametric variants.
///
/// # Examples
///
/// ```
/// let net = dnnperf_dnn::zoo::by_name("ResNet-50").unwrap();
/// assert_eq!(net.name(), "ResNet-50");
/// assert!(dnnperf_dnn::zoo::by_name("NotANet").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Network> {
    let net = match name {
        "ResNet-18" => resnet::resnet18(),
        "ResNet-34" => resnet::resnet34(),
        "ResNet-44" => resnet::resnet44(),
        "ResNet-50" => resnet::resnet50(),
        "ResNet-62" => resnet::resnet62(),
        "ResNet-77" => resnet::resnet77(),
        "ResNet-101" => resnet::resnet101(),
        "ResNet-152" => resnet::resnet152(),
        "VGG-11" => vgg::vgg11(),
        "VGG-13" => vgg::vgg13(),
        "VGG-16" => vgg::vgg16(),
        "VGG-19" => vgg::vgg19(),
        "DenseNet-121" => densenet_from_cfg(32, &[6, 12, 24, 16]),
        "DenseNet-161" => densenet_from_cfg(48, &[6, 12, 36, 24]),
        "DenseNet-169" => densenet_from_cfg(32, &[6, 12, 32, 32]),
        "DenseNet-201" => densenet_from_cfg(32, &[6, 12, 48, 32]),
        "DenseNet-201[6-12-48-32]" => densenet_from_cfg(32, &[6, 12, 48, 32]),
        "MobileNetV2" => mobilenet_v2(1.0, 1.0),
        "ShuffleNetV1" => shufflenet_v1(3, 1.0, &[4, 8, 4]),
        "SqueezeNet" => squeezenet(128, 128, 0.125),
        "AlexNet" => alexnet(1.0, 4096, 11),
        "GoogLeNet" => super::inception::googlenet(1.0),
        "ResNeXt-50-32x4d" => super::resnext::resnext50_32x4d(),
        "BERT-base" => text_classifier(TransformerConfig::bert_base(128)),
        _ => return None,
    };
    Some(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cnn_zoo_has_exactly_646_networks() {
        assert_eq!(cnn_zoo().len(), CNN_ZOO_SIZE);
    }

    #[test]
    fn zoo_names_are_unique() {
        let zoo = full_zoo();
        let names: HashSet<&str> = zoo.iter().map(|n| n.name()).collect();
        assert_eq!(names.len(), zoo.len());
    }

    #[test]
    fn zoo_contains_paper_networks() {
        let zoo = cnn_zoo();
        for name in [
            "ResNet-18",
            "ResNet-44",
            "ResNet-50",
            "ResNet-62",
            "ResNet-77",
            "VGG-16",
            "DenseNet-121",
            "DenseNet-161",
            "DenseNet-169",
            "DenseNet-201",
            "MobileNetV2",
            "ShuffleNetV1",
        ] {
            assert!(zoo.iter().any(|n| n.name() == name), "missing {name}");
        }
    }

    #[test]
    fn zoo_is_deterministic() {
        let a: Vec<String> = cnn_zoo().iter().map(|n| n.name().to_string()).collect();
        let b: Vec<String> = cnn_zoo().iter().map(|n| n.name().to_string()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn transformer_zoo_is_nonempty_and_distinct() {
        let t = transformer_zoo();
        assert_eq!(t.len(), 50);
        let names: HashSet<&str> = t.iter().map(|n| n.name()).collect();
        assert_eq!(names.len(), t.len());
    }

    #[test]
    fn flops_span_multiple_orders_of_magnitude() {
        let zoo = cnn_zoo();
        let min = zoo.iter().map(Network::total_flops).min().unwrap();
        let max = zoo.iter().map(Network::total_flops).max().unwrap();
        assert!(max / min.max(1) > 100, "min {min} max {max}");
    }

    #[test]
    fn by_name_round_trips() {
        for name in ["ResNet-50", "VGG-16", "DenseNet-169"] {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        // "BERT-base" is an alias whose generated name encodes the config.
        assert!(by_name("BERT-base").is_some());
    }
}
