//! DenseNet generators (DenseNet-121/161/169/201 and parametric variants).

use super::{arch, imagenet_input, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::LayerKind;
use crate::shape::TensorShape;

/// Per-stage dense-layer counts.
pub type Blocks = [usize; 4];

const BN_SIZE: usize = 4;

fn canonical_name(growth: usize, blocks: &Blocks) -> Option<&'static str> {
    match (growth, blocks) {
        (32, [6, 12, 24, 16]) => Some("DenseNet-121"),
        (48, [6, 12, 36, 24]) => Some("DenseNet-161"),
        (32, [6, 12, 32, 32]) => Some("DenseNet-169"),
        (32, [6, 12, 48, 32]) => Some("DenseNet-201"),
        _ => None,
    }
}

/// Nominal depth of a DenseNet configuration (2 convs per dense layer, one
/// conv per transition, stem conv and classifier).
pub fn depth_of(blocks: &Blocks) -> usize {
    2 * blocks.iter().sum::<usize>() + 5
}

/// Builds a DenseNet with the given growth rate and per-stage layer counts.
///
/// # Panics
///
/// Panics if `growth` is zero or any stage is empty.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::densenet::densenet_from_cfg;
///
/// let net = densenet_from_cfg(32, &[6, 12, 24, 16]);
/// assert_eq!(net.name(), "DenseNet-121");
/// ```
pub fn densenet_from_cfg(growth: usize, blocks: &Blocks) -> Network {
    assert!(growth > 0, "zero growth rate");
    assert!(blocks.iter().all(|&b| b > 0), "empty DenseNet stage");
    let name = match canonical_name(growth, blocks) {
        Some(n) => n.to_string(),
        None => format!(
            "DenseNet-{}[{}-{}-{}-{}]-k{growth}",
            depth_of(blocks),
            blocks[0],
            blocks[1],
            blocks[2],
            blocks[3]
        ),
    };

    let init_ch = 2 * growth;
    let mut b = NetworkBuilder::new(name, Family::DenseNet, imagenet_input());
    arch!(b.conv(init_ch, 7, 2, 3));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));

    for (stage, &n_layers) in blocks.iter().enumerate() {
        for _ in 0..n_layers {
            dense_layer(&mut b, growth);
        }
        if stage + 1 < blocks.len() {
            // Transition: BN + 1x1 conv halving channels + 2x2 average pool.
            let ch = b.shape().channels();
            arch!(b.bn());
            arch!(b.relu());
            arch!(b.conv(ch / 2, 1, 1, 0));
            arch!(b.avg_pool(2, 2, 0));
        }
    }

    arch!(b.bn());
    arch!(b.relu());
    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn dense_layer(b: &mut NetworkBuilder, growth: usize) {
    let entry = b.shape();
    let (c, h, w) = match entry {
        TensorShape::FeatureMap { c, h, w } => (c, h, w),
        _ => unreachable!("dense layers operate on feature maps"),
    };
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(BN_SIZE * growth, 1, 1, 0));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(growth, 3, 1, 1));
    // Concatenate the new features onto the running feature map.
    let merged = TensorShape::chw(c + growth, h, w);
    b.push_shaped(LayerKind::Concat { parts: 2 }, merged, merged);
}

/// Standard DenseNet-121.
pub fn densenet121() -> Network {
    densenet_from_cfg(32, &[6, 12, 24, 16])
}

/// Standard DenseNet-161.
pub fn densenet161() -> Network {
    densenet_from_cfg(48, &[6, 12, 36, 24])
}

/// Standard DenseNet-169.
pub fn densenet169() -> Network {
    densenet_from_cfg(32, &[6, 12, 32, 32])
}

/// Standard DenseNet-201.
pub fn densenet201() -> Network {
    densenet_from_cfg(32, &[6, 12, 48, 32])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_formula_matches_canonical_names() {
        assert_eq!(depth_of(&[6, 12, 24, 16]), 121);
        assert_eq!(depth_of(&[6, 12, 36, 24]), 161);
        assert_eq!(depth_of(&[6, 12, 32, 32]), 169);
        assert_eq!(depth_of(&[6, 12, 48, 32]), 201);
    }

    #[test]
    fn densenet121_flops_in_expected_range() {
        // thop reports ~2.9 GMACs at 224x224.
        let g = densenet121().total_flops() as f64 / 1e9;
        assert!(g > 2.4 && g < 3.4, "got {g} GFLOPs");
    }

    #[test]
    fn densenet121_params_in_expected_range() {
        // ~8 M parameters.
        let m = densenet121().total_params() as f64 / 1e6;
        assert!(m > 6.5 && m < 9.5, "got {m} M params");
    }

    #[test]
    fn channel_growth_is_linear_within_block() {
        let net = densenet121();
        // The first dense block starts at 64 channels and ends at
        // 64 + 6 * 32 = 256 before the first transition.
        let first_transition_conv = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d(c) if c.is_pointwise()))
            .find(|l| l.input.channels() == 256)
            .expect("first transition conv at 256 channels");
        assert_eq!(first_transition_conv.output.channels(), 128);
    }

    #[test]
    fn larger_configs_cost_more() {
        assert!(densenet201().total_flops() > densenet169().total_flops());
        assert!(densenet169().total_flops() > densenet121().total_flops());
        assert!(densenet161().total_flops() > densenet121().total_flops());
    }

    #[test]
    fn concat_layers_present() {
        let n = densenet121()
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat { .. }))
            .count();
        assert_eq!(n, 6 + 12 + 24 + 16);
    }
}
