//! ResNet generators, including the paper's non-standard depth variants
//! (ResNet-44/62/77) built by "adding/removing blocks to/from the standard
//! design".

use super::{arch, imagenet_input, make_divisible, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{Conv2d, LayerKind};
use crate::shape::TensorShape;

/// Stage block counts for a ResNet.
pub type Blocks = [usize; 4];

const BASE_CHANNELS: [usize; 4] = [64, 128, 256, 512];

fn canonical_name(blocks: &Blocks, bottleneck: bool) -> Option<&'static str> {
    match (bottleneck, blocks) {
        (false, [2, 2, 2, 2]) => Some("ResNet-18"),
        (false, [3, 4, 6, 3]) => Some("ResNet-34"),
        (false, [3, 5, 8, 5]) => Some("ResNet-44"),
        (true, [3, 4, 6, 3]) => Some("ResNet-50"),
        (true, [3, 4, 10, 3]) => Some("ResNet-62"),
        (true, [3, 4, 15, 3]) => Some("ResNet-77"),
        (true, [3, 4, 23, 3]) => Some("ResNet-101"),
        (true, [3, 8, 36, 3]) => Some("ResNet-152"),
        _ => None,
    }
}

/// Nominal depth (counted convolutions + the final FC) of a ResNet config.
pub fn depth_of(blocks: &Blocks, bottleneck: bool) -> usize {
    let per_block = if bottleneck { 3 } else { 2 };
    2 + per_block * blocks.iter().sum::<usize>()
}

/// Builds a ResNet with arbitrary per-stage block counts.
///
/// `width` scales channel counts (1.0 is standard); canonical configurations
/// at width 1.0 get their TorchVision names (`"ResNet-50"`), other configs
/// are named by depth and block signature.
///
/// # Panics
///
/// Panics if any block count is zero.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::resnet::resnet_from_blocks;
///
/// let net = resnet_from_blocks(&[3, 4, 6, 3], true, 1.0);
/// assert_eq!(net.name(), "ResNet-50");
/// ```
pub fn resnet_from_blocks(blocks: &Blocks, bottleneck: bool, width: f64) -> Network {
    assert!(blocks.iter().all(|&b| b > 0), "empty ResNet stage");
    let name = match canonical_name(blocks, bottleneck) {
        Some(n) if width == 1.0 => n.to_string(),
        Some(n) => format!("{n}-x{width}"),
        None => {
            let d = depth_of(blocks, bottleneck);
            let sig = format!("{}-{}-{}-{}", blocks[0], blocks[1], blocks[2], blocks[3]);
            if width == 1.0 {
                format!("ResNet-{d}[{sig}]")
            } else {
                format!("ResNet-{d}[{sig}]-x{width}")
            }
        }
    };
    let ch: Vec<usize> = BASE_CHANNELS
        .iter()
        .map(|&c| make_divisible(c as f64 * width, 8))
        .collect();
    let expansion = if bottleneck { 4 } else { 1 };

    let mut b = NetworkBuilder::new(name, Family::ResNet, imagenet_input());
    arch!(b.conv(ch[0], 7, 2, 3));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 1));

    for (stage, &n_blocks) in blocks.iter().enumerate() {
        let out_ch = ch[stage] * expansion;
        for block in 0..n_blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            if bottleneck {
                bottleneck_block(&mut b, ch[stage], out_ch, stride);
            } else {
                basic_block(&mut b, out_ch, stride);
            }
        }
    }

    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn downsample_if_needed(b: &mut NetworkBuilder, entry: TensorShape, stride: usize) {
    let exit = b.shape();
    if stride != 1 || entry.channels() != exit.channels() {
        // Projection shortcut: 1x1 conv + BN on the branch input.
        let conv = Conv2d {
            in_ch: entry.channels(),
            out_ch: exit.channels(),
            kh: 1,
            kw: 1,
            stride,
            padding: 0,
            groups: 1,
        };
        b.push_shaped(LayerKind::Conv2d(conv), entry, exit);
        b.push_shaped(LayerKind::BatchNorm, exit, exit);
    }
}

fn basic_block(b: &mut NetworkBuilder, out_ch: usize, stride: usize) {
    let entry = b.shape();
    arch!(b.conv(out_ch, 3, stride, 1));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(out_ch, 3, 1, 1));
    arch!(b.bn());
    downsample_if_needed(b, entry, stride);
    arch!(b.push(LayerKind::Add));
    arch!(b.relu());
}

fn bottleneck_block(b: &mut NetworkBuilder, mid_ch: usize, out_ch: usize, stride: usize) {
    let entry = b.shape();
    arch!(b.conv(mid_ch, 1, 1, 0));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(mid_ch, 3, stride, 1));
    arch!(b.bn());
    arch!(b.relu());
    arch!(b.conv(out_ch, 1, 1, 0));
    arch!(b.bn());
    downsample_if_needed(b, entry, stride);
    arch!(b.push(LayerKind::Add));
    arch!(b.relu());
}

/// Standard ResNet-18.
pub fn resnet18() -> Network {
    resnet_from_blocks(&[2, 2, 2, 2], false, 1.0)
}

/// Standard ResNet-34.
pub fn resnet34() -> Network {
    resnet_from_blocks(&[3, 4, 6, 3], false, 1.0)
}

/// The paper's non-standard ResNet-44 (basic blocks).
pub fn resnet44() -> Network {
    resnet_from_blocks(&[3, 5, 8, 5], false, 1.0)
}

/// Standard ResNet-50.
pub fn resnet50() -> Network {
    resnet_from_blocks(&[3, 4, 6, 3], true, 1.0)
}

/// The paper's non-standard ResNet-62 (bottleneck blocks).
pub fn resnet62() -> Network {
    resnet_from_blocks(&[3, 4, 10, 3], true, 1.0)
}

/// The paper's non-standard ResNet-77 (bottleneck blocks).
pub fn resnet77() -> Network {
    resnet_from_blocks(&[3, 4, 15, 3], true, 1.0)
}

/// Standard ResNet-101.
pub fn resnet101() -> Network {
    resnet_from_blocks(&[3, 4, 23, 3], true, 1.0)
}

/// Standard ResNet-152.
pub fn resnet152() -> Network {
    resnet_from_blocks(&[3, 8, 36, 3], true, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_formula_matches_names() {
        assert_eq!(depth_of(&[2, 2, 2, 2], false), 18);
        assert_eq!(depth_of(&[3, 4, 6, 3], false), 34);
        assert_eq!(depth_of(&[3, 5, 8, 5], false), 44);
        assert_eq!(depth_of(&[3, 4, 6, 3], true), 50);
        assert_eq!(depth_of(&[3, 4, 10, 3], true), 62);
        assert_eq!(depth_of(&[3, 4, 15, 3], true), 77);
        assert_eq!(depth_of(&[3, 4, 23, 3], true), 101);
        assert_eq!(depth_of(&[3, 8, 36, 3], true), 152);
    }

    #[test]
    fn resnet50_flops_in_expected_range() {
        // TorchVision/thop report ~4.1 GMACs for ResNet-50 at 224x224.
        let g = resnet50().total_flops() as f64 / 1e9;
        assert!(g > 3.6 && g < 4.6, "got {g} GFLOPs");
    }

    #[test]
    fn resnet18_flops_in_expected_range() {
        // ~1.8 GMACs.
        let g = resnet18().total_flops() as f64 / 1e9;
        assert!(g > 1.5 && g < 2.2, "got {g} GFLOPs");
    }

    #[test]
    fn resnet50_params_in_expected_range() {
        // ~25.6 M parameters.
        let m = resnet50().total_params() as f64 / 1e6;
        assert!(m > 23.0 && m < 28.0, "got {m} M params");
    }

    #[test]
    fn deeper_means_more_flops() {
        assert!(resnet34().total_flops() > resnet18().total_flops());
        assert!(resnet101().total_flops() > resnet50().total_flops());
        assert!(resnet77().total_flops() > resnet62().total_flops());
    }

    #[test]
    fn width_scales_flops_roughly_quadratically() {
        let base = resnet50().total_flops() as f64;
        let half = resnet_from_blocks(&[3, 4, 6, 3], true, 0.5).total_flops() as f64;
        let ratio = base / half;
        assert!(ratio > 2.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn noncanonical_name_contains_signature() {
        let net = resnet_from_blocks(&[1, 2, 2, 2], false, 1.0);
        assert!(net.name().contains("[1-2-2-2]"), "{}", net.name());
    }

    #[test]
    fn final_layer_is_fc_to_1000() {
        let net = resnet50();
        let last = net.layers().last().unwrap();
        assert_eq!(last.output, crate::shape::TensorShape::features(1000));
    }

    #[test]
    #[should_panic(expected = "empty ResNet stage")]
    fn zero_block_stage_panics() {
        resnet_from_blocks(&[0, 2, 2, 2], false, 1.0);
    }
}
