//! SqueezeNet generators (fire modules).

use super::{arch, imagenet_input, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{Conv2d, LayerKind};
use crate::shape::TensorShape;

/// Builds a SqueezeNet 1.0-style network.
///
/// `base_e` is the expand width of the first fire module, `incr_e` the
/// increment applied every two modules, and `squeeze_ratio` the squeeze/expand
/// channel ratio (0.125 in the original).
///
/// # Panics
///
/// Panics if the parameters produce a zero-channel squeeze layer.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::squeezenet::squeezenet;
///
/// let net = squeezenet(128, 128, 0.125);
/// assert_eq!(net.name(), "SqueezeNet");
/// ```
pub fn squeezenet(base_e: usize, incr_e: usize, squeeze_ratio: f64) -> Network {
    let name = if base_e == 128 && incr_e == 128 && squeeze_ratio == 0.125 {
        "SqueezeNet".to_string()
    } else {
        format!("SqueezeNet-e{base_e}-i{incr_e}-sr{squeeze_ratio}")
    };
    let mut b = NetworkBuilder::new(name, Family::SqueezeNet, imagenet_input());
    arch!(b.conv(96, 7, 2, 2));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 0));

    let expand = |i: usize| base_e + incr_e * (i / 2);
    for i in 0..8 {
        if i == 3 || i == 7 {
            arch!(b.max_pool(3, 2, 0));
        }
        fire(&mut b, expand(i), squeeze_ratio);
    }

    arch!(b.conv(NUM_CLASSES, 1, 1, 0));
    arch!(b.relu());
    arch!(b.push(LayerKind::GlobalAvgPool));
    b.finish()
}

fn fire(b: &mut NetworkBuilder, expand_total: usize, squeeze_ratio: f64) {
    let squeeze = ((expand_total as f64 * squeeze_ratio).round() as usize).max(1);
    let e_half = expand_total / 2;
    assert!(squeeze > 0 && e_half > 0, "degenerate fire module");
    arch!(b.conv(squeeze, 1, 1, 0));
    arch!(b.relu());
    let squeezed = b.shape();
    // Two parallel expand branches read the squeezed tensor.
    arch!(b.conv(e_half, 1, 1, 0));
    arch!(b.relu());
    let e1_out = b.shape();
    let e3 = Conv2d::square(squeezed.channels(), e_half, 3, 1, 1);
    b.push_shaped(LayerKind::Conv2d(e3), squeezed, e1_out);
    b.push_shaped(
        LayerKind::Activation(crate::layer::ActivationFn::Relu),
        e1_out,
        e1_out,
    );
    let merged = match e1_out {
        TensorShape::FeatureMap { h, w, .. } => TensorShape::chw(2 * e_half, h, w),
        _ => unreachable!("fire modules operate on feature maps"),
    };
    b.push_shaped(LayerKind::Concat { parts: 2 }, merged, merged);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_in_expected_range() {
        // thop reports ~0.7-0.8 GMACs for SqueezeNet 1.0.
        let g = squeezenet(128, 128, 0.125).total_flops() as f64 / 1e9;
        assert!(g > 0.4 && g < 1.2, "got {g} GFLOPs");
    }

    #[test]
    fn params_small() {
        // ~1.2 M parameters.
        let m = squeezenet(128, 128, 0.125).total_params() as f64 / 1e6;
        assert!(m < 2.0, "got {m} M params");
    }

    #[test]
    fn eight_fire_modules() {
        let net = squeezenet(128, 128, 0.125);
        let concats = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat { .. }))
            .count();
        assert_eq!(concats, 8);
    }

    #[test]
    fn squeeze_ratio_scales_cost() {
        let lean = squeezenet(128, 128, 0.125).total_flops();
        let fat = squeezenet(128, 128, 0.5).total_flops();
        assert!(fat > lean);
    }
}
