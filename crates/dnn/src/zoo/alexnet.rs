//! AlexNet generators.

use super::{arch, imagenet_input, make_divisible, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::LayerKind;

/// Builds an AlexNet-style network.
///
/// `width` scales convolution channels, `fc_width` sets the two hidden FC
/// layer widths (4096 in the original), and `stem_k` the first convolution's
/// kernel size (11 in the original).
///
/// # Panics
///
/// Panics if `width` is not positive.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::alexnet::alexnet;
///
/// let net = alexnet(1.0, 4096, 11);
/// assert_eq!(net.name(), "AlexNet");
/// ```
pub fn alexnet(width: f64, fc_width: usize, stem_k: usize) -> Network {
    assert!(width > 0.0, "non-positive width");
    let name = if width == 1.0 && fc_width == 4096 && stem_k == 11 {
        "AlexNet".to_string()
    } else {
        format!("AlexNet-x{width}-fc{fc_width}-k{stem_k}")
    };
    let s = |c: usize| make_divisible(c as f64 * width, 8);
    let mut b = NetworkBuilder::new(name, Family::AlexNet, imagenet_input());
    // TorchVision geometry: 224 -> 55 with k=11, s=4, p=2.
    let stem_pad = stem_k / 4;
    arch!(b.conv(s(64), stem_k, 4, stem_pad));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 0));
    arch!(b.conv(s(192), 5, 1, 2));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 0));
    arch!(b.conv(s(384), 3, 1, 1));
    arch!(b.relu());
    arch!(b.conv(s(256), 3, 1, 1));
    arch!(b.relu());
    arch!(b.conv(s(256), 3, 1, 1));
    arch!(b.relu());
    arch!(b.max_pool(3, 2, 0));
    arch!(b.push(LayerKind::Flatten));
    arch!(b.linear(fc_width));
    arch!(b.relu());
    arch!(b.linear(fc_width));
    arch!(b.relu());
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_in_expected_range() {
        // thop reports ~0.71 GMACs for AlexNet at 224x224.
        let g = alexnet(1.0, 4096, 11).total_flops() as f64 / 1e9;
        assert!(g > 0.5 && g < 1.0, "got {g} GFLOPs");
    }

    #[test]
    fn params_dominated_by_fc() {
        // ~61 M parameters.
        let m = alexnet(1.0, 4096, 11).total_params() as f64 / 1e6;
        assert!(m > 50.0 && m < 70.0, "got {m} M params");
    }

    #[test]
    fn width_and_fc_variants_differ() {
        let a = alexnet(0.5, 2048, 11);
        let b = alexnet(1.0, 4096, 11);
        assert!(a.total_flops() < b.total_flops());
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn smaller_stem_kernel_builds() {
        let net = alexnet(1.0, 4096, 7);
        assert!(net.total_flops() > 0);
    }
}
