//! MobileNetV2 generators (inverted residual bottlenecks, width/depth
//! multipliers).

use super::{arch, imagenet_input, make_divisible, NUM_CLASSES};
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{ActivationFn, Conv2d, LayerKind};

/// The standard MobileNetV2 inverted-residual table:
/// (expansion t, output channels c, repeats n, first stride s).
const CFG: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds a MobileNetV2 with channel width multiplier `width` and block
/// repeat multiplier `depth` (1.0 is the standard network).
///
/// # Panics
///
/// Panics if `width` or `depth` is not positive.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::mobilenet::mobilenet_v2;
///
/// let net = mobilenet_v2(1.0, 1.0);
/// assert_eq!(net.name(), "MobileNetV2");
/// ```
pub fn mobilenet_v2(width: f64, depth: f64) -> Network {
    assert!(width > 0.0 && depth > 0.0, "non-positive multiplier");
    let name = if width == 1.0 && depth == 1.0 {
        "MobileNetV2".to_string()
    } else if depth == 1.0 {
        format!("MobileNetV2-x{width}")
    } else {
        format!("MobileNetV2-x{width}-d{depth}")
    };

    let scale = |c: usize| make_divisible(c as f64 * width, 8);
    let mut b = NetworkBuilder::new(name, Family::MobileNet, imagenet_input());
    arch!(b.conv(scale(32), 3, 2, 1));
    arch!(b.bn());
    arch!(b.push(LayerKind::Activation(ActivationFn::Relu6)));

    for &(t, c, n, s) in &CFG {
        let out_ch = scale(c);
        let repeats = ((n as f64 * depth).round() as usize).max(1);
        for i in 0..repeats {
            let stride = if i == 0 { s } else { 1 };
            inverted_residual(&mut b, t, out_ch, stride);
        }
    }

    let head = make_divisible(1280.0 * width.max(1.0), 8);
    arch!(b.conv(head, 1, 1, 0));
    arch!(b.bn());
    arch!(b.push(LayerKind::Activation(ActivationFn::Relu6)));
    arch!(b.push(LayerKind::GlobalAvgPool));
    arch!(b.linear(NUM_CLASSES));
    b.finish()
}

fn inverted_residual(b: &mut NetworkBuilder, expand: usize, out_ch: usize, stride: usize) {
    let entry = b.shape();
    let in_ch = entry.channels();
    let mid = in_ch * expand;
    if expand != 1 {
        arch!(b.conv(mid, 1, 1, 0));
        arch!(b.bn());
        arch!(b.push(LayerKind::Activation(ActivationFn::Relu6)));
    }
    arch!(b.push(LayerKind::Conv2d(Conv2d::depthwise(mid, 3, stride, 1))));
    arch!(b.bn());
    arch!(b.push(LayerKind::Activation(ActivationFn::Relu6)));
    arch!(b.conv(out_ch, 1, 1, 0));
    arch!(b.bn());
    if stride == 1 && in_ch == out_ch {
        arch!(b.push(LayerKind::Add));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_in_expected_range() {
        // thop reports ~0.32 GMACs for MobileNetV2 at 224x224.
        let g = mobilenet_v2(1.0, 1.0).total_flops() as f64 / 1e9;
        assert!(g > 0.25 && g < 0.45, "got {g} GFLOPs");
    }

    #[test]
    fn params_in_expected_range() {
        // ~3.5 M parameters.
        let m = mobilenet_v2(1.0, 1.0).total_params() as f64 / 1e6;
        assert!(m > 2.8 && m < 4.2, "got {m} M params");
    }

    #[test]
    fn width_scales_cost() {
        let small = mobilenet_v2(0.5, 1.0).total_flops();
        let big = mobilenet_v2(1.4, 1.0).total_flops();
        assert!(big > 3 * small);
    }

    #[test]
    fn depth_multiplier_adds_blocks() {
        let base = mobilenet_v2(1.0, 1.0).num_layers();
        let deep = mobilenet_v2(1.0, 2.0).num_layers();
        assert!(deep > base + 20);
    }

    #[test]
    fn contains_depthwise_convs() {
        let net = mobilenet_v2(1.0, 1.0);
        let dw = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d(c) if c.is_depthwise()))
            .count();
        assert_eq!(dw, 17); // one per inverted residual block
    }

    #[test]
    #[should_panic(expected = "non-positive multiplier")]
    fn zero_width_panics() {
        mobilenet_v2(0.0, 1.0);
    }
}
