//! Encoder-only text-classification transformers (the paper's "KW model
//! extension for Transformers": HuggingFace text-classification networks).

use super::arch;
use crate::builder::NetworkBuilder;
use crate::graph::{Family, Network};
use crate::layer::{ActivationFn, Embedding, LayerKind, Linear, MatMul};
use crate::shape::TensorShape;

/// Default WordPiece vocabulary size (BERT).
pub const DEFAULT_VOCAB: usize = 30_522;

/// Configuration of an encoder-only text classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Number of encoder blocks.
    pub layers: usize,
    /// Hidden (model) dimension; must be divisible by `heads`.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Input sequence length.
    pub seq_len: usize,
    /// MLP expansion ratio (4 in BERT).
    pub mlp_ratio: usize,
    /// Vocabulary size for the embedding table.
    pub vocab: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl TransformerConfig {
    /// BERT-base-like configuration (12 layers, hidden 768, 12 heads) at the
    /// given sequence length.
    pub fn bert_base(seq_len: usize) -> Self {
        TransformerConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            seq_len,
            mlp_ratio: 4,
            vocab: DEFAULT_VOCAB,
            classes: 2,
        }
    }
}

/// Builds an encoder-only text classifier from `cfg`.
///
/// # Panics
///
/// Panics if `hidden` is not divisible by `heads` or any dimension is zero.
///
/// # Examples
///
/// ```
/// use dnnperf_dnn::zoo::transformer::{text_classifier, TransformerConfig};
///
/// let net = text_classifier(TransformerConfig::bert_base(128));
/// assert_eq!(net.name(), "TextCls-L12-H768-A12-S128");
/// ```
pub fn text_classifier(cfg: TransformerConfig) -> Network {
    assert!(
        cfg.layers > 0 && cfg.hidden > 0 && cfg.heads > 0 && cfg.seq_len > 0,
        "zero transformer dimension"
    );
    assert!(cfg.hidden % cfg.heads == 0, "hidden not divisible by heads");
    let head_dim = cfg.hidden / cfg.heads;
    let name = format!(
        "TextCls-L{}-H{}-A{}-S{}",
        cfg.layers, cfg.hidden, cfg.heads, cfg.seq_len
    );

    let mut b = NetworkBuilder::new(
        name,
        Family::Transformer,
        TensorShape::tokens(cfg.seq_len, 1),
    );
    arch!(b.push(LayerKind::Embedding(Embedding {
        vocab: cfg.vocab,
        dim: cfg.hidden
    })));
    arch!(b.push(LayerKind::LayerNorm));

    let tok = TensorShape::tokens(cfg.seq_len, cfg.hidden);
    for _ in 0..cfg.layers {
        // Self-attention.
        arch!(b.push(LayerKind::Linear(Linear {
            in_features: cfg.hidden,
            out_features: 3 * cfg.hidden,
        })));
        // Q.K^T: per head, (seq x head_dim) x (head_dim x seq).
        let scores = LayerKind::MatMul(MatMul {
            heads: cfg.heads,
            m: cfg.seq_len,
            k: head_dim,
            n: cfg.seq_len,
        });
        let scores_shape = TensorShape::tokens(cfg.seq_len, cfg.heads * cfg.seq_len);
        b.push_shaped(scores, tok, scores_shape);
        arch!(b.push(LayerKind::Softmax));
        // attn.V: per head, (seq x seq) x (seq x head_dim).
        let ctx = LayerKind::MatMul(MatMul {
            heads: cfg.heads,
            m: cfg.seq_len,
            k: cfg.seq_len,
            n: head_dim,
        });
        b.push_shaped(ctx, scores_shape, tok);
        arch!(b.push(LayerKind::Linear(Linear {
            in_features: cfg.hidden,
            out_features: cfg.hidden,
        })));
        arch!(b.push(LayerKind::Add));
        arch!(b.push(LayerKind::LayerNorm));
        // MLP.
        arch!(b.push(LayerKind::Linear(Linear {
            in_features: cfg.hidden,
            out_features: cfg.mlp_ratio * cfg.hidden,
        })));
        arch!(b.push(LayerKind::Activation(ActivationFn::Gelu)));
        arch!(b.push(LayerKind::Linear(Linear {
            in_features: cfg.mlp_ratio * cfg.hidden,
            out_features: cfg.hidden,
        })));
        arch!(b.push(LayerKind::Add));
        arch!(b.push(LayerKind::LayerNorm));
    }

    // Classification head on the pooled [CLS] token.
    b.push_shaped(
        LayerKind::Linear(Linear {
            in_features: cfg.hidden,
            out_features: cfg.hidden,
        }),
        TensorShape::features(cfg.hidden),
        TensorShape::features(cfg.hidden),
    );
    b.push_shaped(
        LayerKind::Activation(ActivationFn::Sigmoid),
        TensorShape::features(cfg.hidden),
        TensorShape::features(cfg.hidden),
    );
    b.push_shaped(
        LayerKind::Linear(Linear {
            in_features: cfg.hidden,
            out_features: cfg.classes,
        }),
        TensorShape::features(cfg.hidden),
        TensorShape::features(cfg.classes),
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_flops_in_expected_range() {
        // BERT-base at seq 128 is ~11 GFLOPs (MAC counting, ~22 GFLOPs
        // counting mul+add); we count multiplications.
        let g = text_classifier(TransformerConfig::bert_base(128)).total_flops() as f64 / 1e9;
        assert!(g > 8.0 && g < 15.0, "got {g} GFLOPs");
    }

    #[test]
    fn attention_cost_quadratic_in_seq_len() {
        let short = text_classifier(TransformerConfig::bert_base(64));
        let long = text_classifier(TransformerConfig::bert_base(256));
        let matmul_flops = |n: &Network| -> u64 {
            n.layers()
                .iter()
                .filter(|l| matches!(l.kind, LayerKind::MatMul(_)))
                .map(crate::flops::layer_flops)
                .sum()
        };
        let ratio = matmul_flops(&long) as f64 / matmul_flops(&short) as f64;
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn params_dominated_by_embedding_and_linears() {
        // BERT-base has ~110 M parameters.
        let m = text_classifier(TransformerConfig::bert_base(128)).total_params() as f64 / 1e6;
        assert!(m > 90.0 && m < 125.0, "got {m} M params");
    }

    #[test]
    #[should_panic(expected = "hidden not divisible by heads")]
    fn bad_head_count_panics() {
        let mut cfg = TransformerConfig::bert_base(128);
        cfg.heads = 7;
        text_classifier(cfg);
    }

    #[test]
    fn layer_count_scales_with_depth() {
        let mut cfg = TransformerConfig::bert_base(128);
        cfg.layers = 2;
        let shallow = text_classifier(cfg).num_layers();
        cfg.layers = 12;
        let deep = text_classifier(cfg).num_layers();
        assert!(deep > 5 * shallow / 2);
    }
}
