//! Compiled prediction plans: the serving hot path.
//!
//! Predicting one network with the kernel-wise model walks several layers of
//! indirection per request: every layer is hashed into the layer-to-kernel
//! mapping table (an ordered-map probe plus a nearest-signature search),
//! every mapped kernel symbol is looked up in the cluster assignment, and
//! every cluster id is dereferenced into its regression. None of that work
//! depends on anything but the `(network, batch)` pair and the trained
//! models — so a sweep that predicts the same network repeatedly (batch
//! scans, what-if studies, serving) repays it on every single call.
//!
//! [`CompiledPlan::compile`] runs the resolution **once** and lowers the
//! result into a flat structure-of-arrays form:
//!
//! * one dense model table (`slopes[id]`, `intercepts[id]`, one entry per
//!   cluster regression);
//! * one `f64` driver feature per priced kernel term, already scaled by the
//!   batch size (input elements, layer FLOPs or output elements, per the
//!   kernel's classified driver);
//! * one `u32` model index per term;
//! * one compact [`LayerPlan`] per layer recording its term range and how
//!   the graceful-degradation ladder resolved it.
//!
//! [`CompiledPlan::predict`] is then a single sweep over contiguous arrays
//! — multiply, add, clamp, accumulate — with no map probes, no string
//! comparisons and no allocation. The sweep reproduces the legacy
//! [`crate::KwModel::predict_network`] arithmetic *bit for bit*: terms are
//! evaluated as `slope * x + intercept` (no fused multiply-add), clamped at
//! zero per kernel, summed per layer and then across layers in exactly the
//! order the uncompiled path uses. [`CompiledPlan::predict_graceful`]
//! replays the [`crate::degrade`] ladder the same way.
//!
//! [`Workflow::predict`](crate::Workflow::predict) and
//! [`Workflow::predict_graceful`](crate::Workflow::predict_graceful) route
//! through a per-`(network, batch)` plan cache, so repeated predictions
//! never re-dispatch. Plans are built only from the public model surfaces
//! (the mapping table, the clustering, the fitted lines) — never from
//! simulator internals.

use crate::classify::Driver;
use crate::degrade::{Degradation, GracefulPrediction};
use crate::error::PredictError;
use crate::model::Predictor;
use crate::workflow::Workflow;
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::Network;
use dnnperf_sched::sync::lock_unpoisoned;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// How the graceful-degradation ladder resolved one layer at compile time.
#[derive(Debug, Clone, PartialEq)]
enum Resolve {
    /// Full kernel-wise coverage: the layer's time is the sum of its
    /// compiled kernel terms, no note.
    Kw,
    /// Some mapped kernels lack cluster models and the LW model has a
    /// dedicated fit for this layer type: the fit re-prices the whole
    /// layer (noted).
    PartialLw {
        /// LW fit slope for the layer type.
        slope: f64,
        /// LW fit intercept for the layer type.
        intercept: f64,
        /// Kernel symbols without cluster models.
        missing: Vec<Arc<str>>,
    },
    /// Some mapped kernels lack cluster models and no LW fit exists: keep
    /// the priced subtotal, floored by the E2E slope (noted).
    PartialFloor {
        /// Kernel symbols without cluster models.
        missing: Vec<Arc<str>>,
    },
    /// The layer is unmapped but the LW model knows its type (noted when
    /// the fallback contributes time).
    LwFallback {
        /// LW fit slope for the layer type.
        slope: f64,
        /// LW fit intercept for the layer type.
        intercept: f64,
    },
    /// Nothing layer-specific is known: the E2E seconds-per-FLOP slope
    /// prices the layer's FLOPs (noted when it contributes time).
    E2eFallback,
}

/// One layer of a compiled plan: a term range plus the ladder resolution.
#[derive(Debug, Clone, PartialEq)]
struct LayerPlan {
    /// First term index (into `features` / `model_of`).
    start: u32,
    /// One past the last term index.
    end: u32,
    /// Layer FLOPs scaled by the batch size.
    flops: f64,
    /// Layer type tag (for degradation notes).
    tag: Arc<str>,
    /// Graceful-degradation resolution.
    resolve: Resolve,
}

/// A prediction plan compiled for one `(network, batch)` request against a
/// trained [`Workflow`]. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    gpu: String,
    network: String,
    batch: usize,
    fingerprint: u64,
    suite_generation: u64,
    /// Dense model table: slope per cluster regression.
    slopes: Vec<f64>,
    /// Dense model table: intercept per cluster regression.
    intercepts: Vec<f64>,
    /// Per-term driver feature, already scaled by the batch size.
    features: Vec<f64>,
    /// Per-term index into the model table.
    model_of: Vec<u32>,
    layers: Vec<LayerPlan>,
    /// E2E seconds-per-FLOP slope (last ladder rung).
    e2e_slope: f64,
}

impl CompiledPlan {
    /// Compiles a plan for `net` at `batch` against the suite's trained
    /// models: one pass of mapping-table lookups, cluster resolution and
    /// driver-feature extraction, after which [`CompiledPlan::predict`]
    /// never touches a map again.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] or
    /// [`PredictError::EmptyNetwork`] for structurally invalid requests —
    /// the same validation the uncompiled predictors perform.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_core::{plan::CompiledPlan, Predictor, Workflow};
    /// use dnnperf_data::collect::collect;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let nets = [
    ///     dnnperf_dnn::zoo::resnet::resnet18(),
    ///     dnnperf_dnn::zoo::resnet::resnet34(),
    ///     dnnperf_dnn::zoo::vgg::vgg11(),
    /// ];
    /// let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
    /// let suite = Workflow::train(&ds, "A100")?;
    /// let net = dnnperf_dnn::zoo::resnet::resnet50();
    /// let plan = CompiledPlan::compile(&suite, &net, 32)?;
    /// assert_eq!(plan.predict(), suite.kw.predict_network(&net, 32)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compile(suite: &Workflow, net: &Network, batch: usize) -> Result<Self, PredictError> {
        crate::error::validate_request(net, batch)?;
        let n = batch as f64;
        let clustering = suite.kw.clustering();
        let models = clustering.models();
        let mut slopes = Vec::with_capacity(models.len());
        let mut intercepts = Vec::with_capacity(models.len());
        for (_, f) in models {
            slopes.push(f.line.slope);
            intercepts.push(f.line.intercept);
        }

        let mut features = Vec::new();
        let mut model_of = Vec::new();
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let tag = layer.type_tag();
            let in_x = layer.input.elems() as f64 * n;
            let flops = layer_flops(layer) as f64 * n;
            let out_x = layer.output.elems() as f64 * n;
            let start = features.len() as u32;
            let mut missing: Vec<Arc<str>> = Vec::new();
            let mapped = suite.kw.mapping().kernels_for(layer);
            for k in mapped.into_iter().flatten() {
                // Resolve the kernel's cluster once; an out-of-range id
                // (impossible for models built in-process, rejected by the
                // persistence loader) degrades to "missing" rather than
                // panicking.
                match clustering
                    .cluster_of(k)
                    .and_then(|id| models.get(id).map(|(d, _)| (id, *d)))
                {
                    Some((id, driver)) => {
                        let x = match driver {
                            Driver::Input => in_x,
                            Driver::Operation => flops,
                            Driver::Output => out_x,
                        };
                        features.push(x);
                        model_of.push(id as u32);
                    }
                    None => missing.push(k.clone()),
                }
            }
            let end = features.len() as u32;
            let resolve = match mapped {
                Some(_) if missing.is_empty() => Resolve::Kw,
                Some(_) => match suite.lw.fit_for(tag) {
                    Some(f) => Resolve::PartialLw {
                        slope: f.line.slope,
                        intercept: f.line.intercept,
                        missing,
                    },
                    None => Resolve::PartialFloor { missing },
                },
                None => match suite.lw.fit_for(tag) {
                    Some(f) => Resolve::LwFallback {
                        slope: f.line.slope,
                        intercept: f.line.intercept,
                    },
                    None => Resolve::E2eFallback,
                },
            };
            layers.push(LayerPlan {
                start,
                end,
                flops,
                tag: Arc::from(tag),
                resolve,
            });
        }

        Ok(CompiledPlan {
            gpu: suite.kw.gpu().to_string(),
            network: net.name().to_string(),
            batch,
            fingerprint: network_fingerprint(net),
            suite_generation: suite.generation(),
            slopes,
            intercepts,
            features,
            model_of,
            layers,
            e2e_slope: suite.e2e.slope_seconds_per_flop(),
        })
    }

    /// Sum of the layer's compiled kernel terms, in term order: the priced
    /// kernel-wise subtotal, bit-identical to the uncompiled
    /// [`crate::KwModel::predict_layer`].
    fn layer_terms(&self, lp: &LayerPlan) -> f64 {
        let range = lp.start as usize..lp.end as usize;
        let feats = self.features.get(range.clone()).unwrap_or(&[]);
        let ids = self.model_of.get(range).unwrap_or(&[]);
        let mut s = 0.0;
        for (x, id) in feats.iter().zip(ids) {
            let i = *id as usize;
            let slope = self.slopes.get(i).copied().unwrap_or(0.0);
            let intercept = self.intercepts.get(i).copied().unwrap_or(0.0);
            // Deliberately `slope * x + intercept`, not `mul_add`: the
            // legacy path rounds twice and the plan must match it bit for
            // bit.
            s += (slope * x + intercept).max(0.0);
        }
        s
    }

    /// Predicts the end-to-end time in seconds: a fused sweep over the
    /// flat term arrays, bit-identical to
    /// `suite.kw.predict_network(net, batch)` for the request the plan was
    /// compiled for.
    pub fn predict(&self) -> f64 {
        let mut total = 0.0;
        for lp in &self.layers {
            total += self.layer_terms(lp);
        }
        total
    }

    /// Predicts with the graceful-degradation ladder, replaying
    /// [`Workflow::predict_graceful_uncompiled`] bit for bit: KW where the
    /// plan has full coverage, the LW layer-type fit or the E2E slope
    /// where it does not, with one [`Degradation`] note per fallback.
    pub fn predict_graceful(&self) -> GracefulPrediction {
        let mut total = 0.0;
        let mut notes = Vec::new();
        for (li, lp) in self.layers.iter().enumerate() {
            match &lp.resolve {
                Resolve::Kw => total += self.layer_terms(lp),
                Resolve::PartialLw {
                    slope,
                    intercept,
                    missing,
                } => {
                    let s = (slope * lp.flops + intercept).max(0.0);
                    total += s;
                    notes.push(Degradation::UnclusteredKernels {
                        layer_index: li,
                        tag: lp.tag.to_string(),
                        kernels: missing.clone(),
                        seconds: s,
                    });
                }
                Resolve::PartialFloor { missing } => {
                    let s = self.layer_terms(lp).max(self.e2e_slope * lp.flops);
                    total += s;
                    notes.push(Degradation::UnclusteredKernels {
                        layer_index: li,
                        tag: lp.tag.to_string(),
                        kernels: missing.clone(),
                        seconds: s,
                    });
                }
                Resolve::LwFallback { slope, intercept } => {
                    let s = (slope * lp.flops + intercept).max(0.0);
                    total += s;
                    if s > 0.0 {
                        notes.push(Degradation::UnmappedLayer {
                            layer_index: li,
                            tag: lp.tag.to_string(),
                            seconds: s,
                        });
                    }
                }
                Resolve::E2eFallback => {
                    let s = (self.e2e_slope * lp.flops).max(0.0);
                    total += s;
                    if s > 0.0 {
                        notes.push(Degradation::UnknownLayerType {
                            layer_index: li,
                            tag: lp.tag.to_string(),
                            seconds: s,
                        });
                    }
                }
            }
        }
        GracefulPrediction {
            seconds: total,
            notes,
        }
    }

    /// GPU the plan's models were trained on.
    pub fn gpu(&self) -> &str {
        &self.gpu
    }

    /// Network name the plan was compiled for.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Batch size the plan was compiled for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Structural fingerprint of the compiled network (cache key part).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Generation of the [`Workflow`] the plan was compiled against (cache
    /// key part): shared caches that key on it can never serve a plan from
    /// a retired model suite. See [`Workflow::generation`].
    pub fn suite_generation(&self) -> u64 {
        self.suite_generation
    }

    /// Estimated resident size of the plan in bytes (the struct plus its
    /// heap payload). Memory-budgeted caches use this as the per-entry
    /// charge; it deliberately counts lengths rather than capacities so
    /// the figure is deterministic across allocators.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<CompiledPlan>();
        bytes += self.gpu.len() + self.network.len();
        bytes += self.slopes.len() * size_of::<f64>();
        bytes += self.intercepts.len() * size_of::<f64>();
        bytes += self.features.len() * size_of::<f64>();
        bytes += self.model_of.len() * size_of::<u32>();
        bytes += self.layers.len() * size_of::<LayerPlan>();
        for lp in &self.layers {
            bytes += lp.tag.len();
            let missing = match &lp.resolve {
                Resolve::PartialLw { missing, .. } | Resolve::PartialFloor { missing } => {
                    missing.as_slice()
                }
                _ => &[],
            };
            bytes += missing
                .iter()
                .map(|k| std::mem::size_of::<Arc<str>>() + k.len())
                .sum::<usize>();
        }
        bytes
    }

    /// Number of priced kernel terms in the plan (the per-predict work).
    pub fn num_terms(&self) -> usize {
        self.features.len()
    }

    /// Number of layers in the plan.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of entries in the dense model table.
    pub fn num_models(&self) -> usize {
        self.slopes.len()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one u64 field into the running hash with a single
/// multiply-rotate round (xxHash-style) instead of the byte-wise FNV
/// loop: the fingerprint sits on the warm-predict hot path (it is part
/// of every cache lookup), and hashing a few dozen scalar fields per
/// network must stay in the nanoseconds. Sequential, position-dependent
/// mixing keeps field order significant.
fn fnv1a_u64(h: u64, v: u64) -> u64 {
    const M1: u64 = 0x9e37_79b1_85eb_ca87;
    const M2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    (h ^ v.wrapping_mul(M1)).rotate_left(31).wrapping_mul(M2)
}

/// Length-prefixed string hashing: without the prefix, adjacent
/// variable-length fields are ambiguous (`"ab" + "c"` hashes like
/// `"a" + "bc"`), which is exactly the kind of structural near-miss a
/// cache key must distinguish.
fn fnv1a_str(h: u64, s: &str) -> u64 {
    fnv1a(fnv1a_u64(h, s.len() as u64), s.as_bytes())
}

fn fnv1a_shape(h: u64, s: &dnnperf_dnn::TensorShape) -> u64 {
    use dnnperf_dnn::TensorShape;
    match *s {
        TensorShape::FeatureMap { c, h: fh, w } => {
            let x = fnv1a_u64(h, 1);
            let x = fnv1a_u64(x, c as u64);
            let x = fnv1a_u64(x, fh as u64);
            fnv1a_u64(x, w as u64)
        }
        TensorShape::Features { d } => fnv1a_u64(fnv1a_u64(h, 2), d as u64),
        TensorShape::Tokens { len, d } => {
            let x = fnv1a_u64(h, 3);
            let x = fnv1a_u64(x, len as u64);
            fnv1a_u64(x, d as u64)
        }
    }
}

/// Hashes a layer's *full* structural identity: a kind discriminant, every
/// kind parameter, and the complete input/output shape dimensions.
///
/// This is deliberately finer than the four derived values a compiled plan
/// prices today (`tag`, input elems, FLOPs, output elems): hashing only
/// derived quantities invites collisions between genuinely different
/// layers whose derivations happen to coincide — max vs average pooling,
/// a `1x9` vs a `9x1` convolution, ReLU vs ReLU6 — and a cache key must
/// stay collision-free under *every* quantity compilation may ever read,
/// not just the ones it reads today. Over-distinguishing merely costs a
/// recompile; under-distinguishing serves the wrong plan.
fn fnv1a_layer(h: u64, l: &dnnperf_dnn::Layer) -> u64 {
    use dnnperf_dnn::LayerKind;
    let h = match l.kind {
        LayerKind::Conv2d(c) => {
            let x = fnv1a_u64(h, 1);
            let x = fnv1a_u64(x, c.in_ch as u64);
            let x = fnv1a_u64(x, c.out_ch as u64);
            let x = fnv1a_u64(x, c.kh as u64);
            let x = fnv1a_u64(x, c.kw as u64);
            let x = fnv1a_u64(x, c.stride as u64);
            let x = fnv1a_u64(x, c.padding as u64);
            fnv1a_u64(x, c.groups as u64)
        }
        LayerKind::Linear(f) => {
            let x = fnv1a_u64(h, 2);
            let x = fnv1a_u64(x, f.in_features as u64);
            fnv1a_u64(x, f.out_features as u64)
        }
        LayerKind::Pool2d(p) => {
            let x = fnv1a_u64(h, 3);
            let x = fnv1a_u64(x, matches!(p.kind, dnnperf_dnn::PoolKind::Max) as u64);
            let x = fnv1a_u64(x, p.k as u64);
            let x = fnv1a_u64(x, p.stride as u64);
            fnv1a_u64(x, p.padding as u64)
        }
        LayerKind::GlobalAvgPool => fnv1a_u64(h, 4),
        LayerKind::BatchNorm => fnv1a_u64(h, 5),
        LayerKind::LayerNorm => fnv1a_u64(h, 6),
        LayerKind::Activation(f) => {
            use dnnperf_dnn::ActivationFn;
            let tag = match f {
                ActivationFn::Relu => 1u64,
                ActivationFn::Relu6 => 2,
                ActivationFn::Gelu => 3,
                ActivationFn::Sigmoid => 4,
            };
            fnv1a_u64(fnv1a_u64(h, 7), tag)
        }
        LayerKind::Add => fnv1a_u64(h, 8),
        LayerKind::Concat { parts } => fnv1a_u64(fnv1a_u64(h, 9), parts as u64),
        LayerKind::Softmax => fnv1a_u64(h, 10),
        LayerKind::Embedding(e) => {
            let x = fnv1a_u64(h, 11);
            let x = fnv1a_u64(x, e.vocab as u64);
            fnv1a_u64(x, e.dim as u64)
        }
        LayerKind::MatMul(m) => {
            let x = fnv1a_u64(h, 12);
            let x = fnv1a_u64(x, m.heads as u64);
            let x = fnv1a_u64(x, m.m as u64);
            let x = fnv1a_u64(x, m.k as u64);
            fnv1a_u64(x, m.n as u64)
        }
        LayerKind::Flatten => fnv1a_u64(h, 13),
        LayerKind::ChannelShuffle { groups } => fnv1a_u64(fnv1a_u64(h, 14), groups as u64),
    };
    fnv1a_shape(fnv1a_shape(h, &l.input), &l.output)
}

/// FNV-1a fingerprint of a network's predictive structure: its name plus
/// every layer's full structural identity (kind discriminant, all kind
/// parameters, and complete input/output shape dimensions), with
/// length-prefixed fields so record boundaries are unambiguous.
///
/// Two networks built the same way always fingerprint equal (structure,
/// not object identity), and the hash covers a strict superset of
/// everything [`CompiledPlan::compile`] reads — the layer type tag, the
/// driver features (input elems / FLOPs / output elems) and the mapping
/// signature are all derived from the hashed fields — so distinct
/// same-name networks can never alias in a plan cache keyed on it.
pub fn network_fingerprint(net: &Network) -> u64 {
    let mut h = fnv1a_str(FNV_OFFSET, net.name());
    h = fnv1a_u64(h, net.layers().len() as u64);
    for l in net.layers() {
        h = fnv1a_layer(h, l);
    }
    h
}

/// Interior-mutable cache of compiled plans keyed by
/// `(suite generation, network name, batch, fingerprint)`.
///
/// The suite generation (see [`Workflow::generation`]) makes staleness
/// structurally impossible: retraining produces a suite with a fresh
/// generation, and [`Workflow::invalidate_plans`] bumps the generation of
/// a suite whose public model fields were swapped in place, so a key
/// minted against old models can never resolve to a plan compiled against
/// new ones (or vice versa).
///
/// Compilation happens outside the lock: two racing threads may both
/// compile the same plan, but the first insertion wins and both observe
/// the same cached `Arc`. Cloning a [`PlanCache`] snapshots the entry map
/// (the immutable `Arc<CompiledPlan>` values are shared, not recompiled),
/// so a cloned [`Workflow`]'s first `predict` of a previously served
/// request is a cache hit — and each clone still owns an independent map,
/// so invalidating one suite never drains its ancestor's cache.
#[derive(Default)]
pub(crate) struct PlanCache {
    inner: Mutex<BTreeMap<CacheKey, Arc<CompiledPlan>>>,
}

/// `(suite generation, structural fingerprint, batch)`. The fingerprint
/// already digests the network name (length-prefixed) along with the
/// full layer structure, so the key needs no owned `String` — lookups
/// stay allocation-free on the warm path.
type CacheKey = (u64, u64, usize);

impl PlanCache {
    /// Returns the cached plan for `(net, batch)`, compiling on miss.
    pub(crate) fn get_or_compile(
        &self,
        suite: &Workflow,
        net: &Network,
        batch: usize,
    ) -> Result<Arc<CompiledPlan>, PredictError> {
        let key = (suite.generation(), network_fingerprint(net), batch);
        if let Some(p) = lock_unpoisoned(&self.inner).get(&key) {
            return Ok(p.clone());
        }
        let plan = Arc::new(CompiledPlan::compile(suite, net, batch)?);
        let mut guard = lock_unpoisoned(&self.inner);
        Ok(guard.entry(key).or_insert(plan).clone())
    }

    /// Drops every cached plan.
    pub(crate) fn clear(&self) {
        lock_unpoisoned(&self.inner).clear();
    }

    /// Number of cached plans.
    pub(crate) fn cached(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        // Snapshot the entries: plans are immutable values behind `Arc`s,
        // so sharing them is free and a cloned suite starts warm instead
        // of silently recompiling its whole working set from cold.
        let snapshot = lock_unpoisoned(&self.inner).clone();
        PlanCache {
            inner: Mutex::new(snapshot),
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlanCache({} plans)", self.cached())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::GpuSpec;

    fn suite() -> Workflow {
        let nets = [
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        ];
        let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        Workflow::train(&ds, "A100").unwrap()
    }

    #[test]
    fn compiled_predict_is_bit_identical_to_kw() {
        let suite = suite();
        for net in [
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::vgg::vgg16(),
            dnnperf_dnn::zoo::densenet::densenet121(),
        ] {
            for batch in [1usize, 2, 8, 32] {
                let plan = CompiledPlan::compile(&suite, &net, batch).unwrap();
                let legacy = suite.kw.predict_network(&net, batch).unwrap();
                assert_eq!(
                    plan.predict().to_bits(),
                    legacy.to_bits(),
                    "{} @ {batch}",
                    net.name()
                );
                assert!(plan.num_terms() > 0);
            }
        }
    }

    #[test]
    fn compiled_graceful_is_bit_identical_to_uncompiled() {
        // Train on VGG only so ResNet probes exercise every ladder rung.
        let train = [
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg13(),
        ];
        let ds = collect(&train, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let suite = Workflow::train(&ds, "A100").unwrap();
        let probe = dnnperf_dnn::zoo::resnet::resnet18();
        let plan = CompiledPlan::compile(&suite, &probe, 32).unwrap();
        let fast = plan.predict_graceful();
        let slow = suite.predict_graceful_uncompiled(&probe, 32).unwrap();
        assert_eq!(fast.seconds.to_bits(), slow.seconds.to_bits());
        assert_eq!(fast.notes, slow.notes);
        assert!(fast.is_degraded());
    }

    #[test]
    fn invalid_requests_fail_at_compile() {
        let suite = suite();
        let net = dnnperf_dnn::zoo::resnet::resnet18();
        assert_eq!(
            CompiledPlan::compile(&suite, &net, 0).unwrap_err(),
            PredictError::ZeroBatch
        );
    }

    #[test]
    fn fingerprint_tracks_structure_not_identity() {
        let a = dnnperf_dnn::zoo::resnet::resnet18();
        let b = dnnperf_dnn::zoo::resnet::resnet18();
        let c = dnnperf_dnn::zoo::resnet::resnet34();
        assert_eq!(network_fingerprint(&a), network_fingerprint(&b));
        assert_ne!(network_fingerprint(&a), network_fingerprint(&c));

        // Same structure under a different name is a different network.
        let mut renamed = dnnperf_dnn::zoo::resnet::resnet18();
        renamed = dnnperf_dnn::Network::from_parts(
            "NotResNet-18",
            renamed.family(),
            renamed.input_shape(),
            renamed.layers().to_vec(),
        );
        assert_ne!(network_fingerprint(&a), network_fingerprint(&renamed));
    }

    /// Wraps one layer in a single-layer network under a fixed name, so
    /// any fingerprint difference comes from the layer alone.
    fn single(layer: dnnperf_dnn::Layer) -> Network {
        let input = layer.input;
        Network::from_parts("probe", dnnperf_dnn::Family::Vgg, input, vec![layer])
    }

    /// The derived quantities the pre-fix fingerprint hashed per layer.
    fn legacy_fields(net: &Network) -> Vec<(&'static str, u64, u64, u64)> {
        net.layers()
            .iter()
            .map(|l| {
                (
                    l.type_tag(),
                    l.input.elems() as u64,
                    dnnperf_dnn::flops::layer_flops(l),
                    l.output.elems() as u64,
                )
            })
            .collect()
    }

    /// Adversarial near-miss pairs: distinct same-name networks whose
    /// layers agree on every field the old hash covered — type tag, input
    /// elems, FLOPs, output elems — yet differ structurally. Each pair
    /// collided under the old `(tag, in, flops, out)` fingerprint; the
    /// structural fingerprint must split them.
    #[test]
    fn fingerprint_splits_adversarial_near_misses() {
        use dnnperf_dnn::{
            ActivationFn, Conv2d, Layer, LayerKind, MatMul, Pool2d, PoolKind, TensorShape,
        };
        let fm = TensorShape::chw;
        let pairs: Vec<(&str, Network, Network)> = vec![
            (
                "max vs avg pooling",
                single(
                    Layer::apply(
                        LayerKind::Pool2d(Pool2d {
                            kind: PoolKind::Max,
                            k: 2,
                            stride: 2,
                            padding: 0,
                        }),
                        fm(16, 8, 8),
                    )
                    .unwrap(),
                ),
                single(
                    Layer::apply(
                        LayerKind::Pool2d(Pool2d {
                            kind: PoolKind::Avg,
                            k: 2,
                            stride: 2,
                            padding: 0,
                        }),
                        fm(16, 8, 8),
                    )
                    .unwrap(),
                ),
            ),
            (
                "1x9 vs 9x1 convolution",
                single(
                    Layer::apply(
                        LayerKind::Conv2d(Conv2d {
                            in_ch: 8,
                            out_ch: 8,
                            kh: 1,
                            kw: 9,
                            stride: 1,
                            padding: 4,
                            groups: 1,
                        }),
                        fm(8, 9, 9),
                    )
                    .unwrap(),
                ),
                single(
                    Layer::apply(
                        LayerKind::Conv2d(Conv2d {
                            in_ch: 8,
                            out_ch: 8,
                            kh: 9,
                            kw: 1,
                            stride: 1,
                            padding: 4,
                            groups: 1,
                        }),
                        fm(8, 9, 9),
                    )
                    .unwrap(),
                ),
            ),
            (
                "relu vs relu6",
                single(
                    Layer::apply(LayerKind::Activation(ActivationFn::Relu), fm(16, 8, 8)).unwrap(),
                ),
                single(
                    Layer::apply(LayerKind::Activation(ActivationFn::Relu6), fm(16, 8, 8)).unwrap(),
                ),
            ),
            (
                "feature-map vs flat-vector input",
                single(
                    Layer::apply(LayerKind::Activation(ActivationFn::Relu), fm(64, 8, 8)).unwrap(),
                ),
                single(
                    Layer::apply(
                        LayerKind::Activation(ActivationFn::Relu),
                        TensorShape::features(64 * 8 * 8),
                    )
                    .unwrap(),
                ),
            ),
            (
                "channel shuffle group count",
                single(
                    Layer::apply(LayerKind::ChannelShuffle { groups: 2 }, fm(16, 4, 4)).unwrap(),
                ),
                single(
                    Layer::apply(LayerKind::ChannelShuffle { groups: 4 }, fm(16, 4, 4)).unwrap(),
                ),
            ),
            (
                "matmul head split",
                single(
                    Layer::apply(
                        LayerKind::MatMul(MatMul {
                            heads: 2,
                            m: 16,
                            k: 8,
                            n: 8,
                        }),
                        TensorShape::tokens(16, 32),
                    )
                    .unwrap(),
                ),
                single(
                    Layer::apply(
                        LayerKind::MatMul(MatMul {
                            heads: 4,
                            m: 16,
                            k: 8,
                            n: 4,
                        }),
                        TensorShape::tokens(16, 32),
                    )
                    .unwrap(),
                ),
            ),
        ];
        for (what, a, b) in &pairs {
            assert_ne!(a, b, "{what}: pair must be structurally distinct");
            assert_eq!(
                legacy_fields(a),
                legacy_fields(b),
                "{what}: not adversarial — the old hash already split it"
            );
            assert_ne!(
                network_fingerprint(a),
                network_fingerprint(b),
                "{what}: structural fingerprint collision"
            );
        }
    }

    #[test]
    fn cloned_workflow_first_predict_is_a_cache_hit() {
        let suite = suite();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let original = suite.plan(&net, 32).unwrap();
        let clone = suite.clone();
        // The clone starts warm: the entry came over in the snapshot...
        assert_eq!(clone.cached_plans(), 1);
        // ...and its first predict resolves to the *same* compiled plan,
        // not a recompilation.
        let first = clone.plan(&net, 32).unwrap();
        assert!(Arc::ptr_eq(&original, &first));
        assert_eq!(clone.generation(), suite.generation());
        // Independent maps: invalidating the clone leaves the ancestor.
        clone.invalidate_plans();
        assert_eq!(clone.cached_plans(), 0);
        assert_eq!(suite.cached_plans(), 1);
        assert_ne!(clone.generation(), suite.generation());
    }

    #[test]
    fn retraining_mints_a_fresh_generation() {
        let a = suite();
        let b = suite();
        assert_ne!(a.generation(), b.generation());
        // Plans record the generation they were compiled against.
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let pa = a.plan(&net, 32).unwrap();
        let pb = b.plan(&net, 32).unwrap();
        assert_eq!(pa.suite_generation(), a.generation());
        assert_eq!(pb.suite_generation(), b.generation());
        assert!(pa.approx_bytes() > 0);
    }

    #[test]
    fn cache_compiles_once_and_clears() {
        let suite = suite();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let p1 = suite.plan(&net, 32).unwrap();
        let p2 = suite.plan(&net, 32).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(suite.cached_plans(), 1);
        suite.plan(&net, 64).unwrap();
        assert_eq!(suite.cached_plans(), 2);
        suite.invalidate_plans();
        assert_eq!(suite.cached_plans(), 0);
    }
}
