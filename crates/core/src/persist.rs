//! Model persistence.
//!
//! The paper's workflow (Figure 10) notes that "the performance analytical
//! model and its parameters can be distributed to users". This module
//! implements that distribution format: a versioned, line-oriented text
//! serialization for every trained model, chosen over a binary format so
//! that shipped model files remain diffable and inspectable.
//!
//! All models round-trip exactly: `Model::from_text(&m.to_text()) == m`.
//!
//! # Examples
//!
//! ```
//! use dnnperf_core::E2eModel;
//! use dnnperf_data::collect::collect;
//! use dnnperf_gpu::GpuSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nets = [dnnperf_dnn::zoo::resnet::resnet18(), dnnperf_dnn::zoo::resnet::resnet34()];
//! let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[16]);
//! let model = E2eModel::train(&ds, "A100")?;
//! let text = model.to_text();
//! let loaded = E2eModel::from_text(&text)?;
//! assert_eq!(model, loaded);
//! # Ok(())
//! # }
//! ```

use dnnperf_linreg::{Fit, Line};
use std::error::Error;
use std::fmt;

/// Format version written in every model file header.
pub const FORMAT_VERSION: u32 = 1;

/// Errors produced while loading a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The header is missing or carries an unsupported version.
    BadHeader {
        /// What was found on the first line.
        found: String,
    },
    /// The file is for a different model kind than requested.
    WrongKind {
        /// Kind tag requested by the loader.
        expected: &'static str,
        /// Kind tag found in the header.
        found: String,
    },
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file ended before the model was complete.
    UnexpectedEof,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader { found } => {
                write!(f, "bad model file header: {found:?}")
            }
            PersistError::WrongKind { expected, found } => {
                write!(
                    f,
                    "model file holds a {found:?} model, expected {expected:?}"
                )
            }
            PersistError::Parse { line, reason } => {
                write!(f, "model file parse error at line {line}: {reason}")
            }
            PersistError::UnexpectedEof => write!(f, "model file ended unexpectedly"),
        }
    }
}

impl Error for PersistError {}

/// Line-by-line reader with position tracking.
pub(crate) struct Cursor<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Cursor {
            lines: text.lines(),
            line_no: 0,
        }
    }

    pub(crate) fn next(&mut self) -> Result<&'a str, PersistError> {
        self.line_no += 1;
        self.lines.next().ok_or(PersistError::UnexpectedEof)
    }

    /// Reads a line that must start with `keyword` followed by whitespace;
    /// returns the remainder.
    pub(crate) fn keyword(&mut self, keyword: &'static str) -> Result<&'a str, PersistError> {
        let line = self.next()?;
        match line.strip_prefix(keyword) {
            Some("") => Ok(""),
            Some(rest) if rest.starts_with(' ') => Ok(&rest[1..]),
            _ => Err(PersistError::Parse {
                line: self.line_no,
                reason: format!("expected {keyword:?}, got {line:?}"),
            }),
        }
    }

    pub(crate) fn parse_err(&self, reason: impl Into<String>) -> PersistError {
        PersistError::Parse {
            line: self.line_no,
            reason: reason.into(),
        }
    }
}

/// Parses one whitespace-separated numeric field.
pub(crate) fn field<T: std::str::FromStr>(
    cur: &Cursor<'_>,
    parts: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, PersistError> {
    let raw = parts
        .next()
        .ok_or_else(|| cur.parse_err(format!("missing field {what}")))?;
    raw.parse()
        .map_err(|_| cur.parse_err(format!("bad {what} field {raw:?}")))
}

/// Writes the shared header.
pub(crate) fn write_header(out: &mut String, kind: &str) {
    out.push_str(&format!("dnnperf-model v{FORMAT_VERSION} {kind}\n"));
}

/// Validates the shared header and the model kind.
pub(crate) fn read_header(
    cur: &mut Cursor<'_>,
    expected: &'static str,
) -> Result<(), PersistError> {
    let line = cur.next()?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some("dnnperf-model") {
        return Err(PersistError::BadHeader {
            found: line.to_string(),
        });
    }
    match parts.next() {
        Some(v) if v == format!("v{FORMAT_VERSION}") => {}
        _ => {
            return Err(PersistError::BadHeader {
                found: line.to_string(),
            })
        }
    }
    match parts.next() {
        Some(kind) if kind == expected => Ok(()),
        Some(kind) => Err(PersistError::WrongKind {
            expected,
            found: kind.to_string(),
        }),
        None => Err(PersistError::BadHeader {
            found: line.to_string(),
        }),
    }
}

/// Serializes a [`Fit`] as four whitespace-separated fields.
pub(crate) fn write_fit(out: &mut String, fit: &Fit) {
    out.push_str(&format!(
        "{} {} {} {}",
        fit.line.slope, fit.line.intercept, fit.r2, fit.n
    ));
}

/// Parses the four [`Fit`] fields from a whitespace iterator.
pub(crate) fn read_fit(
    cur: &Cursor<'_>,
    parts: &mut std::str::SplitWhitespace<'_>,
) -> Result<Fit, PersistError> {
    let slope: f64 = field(cur, parts, "slope")?;
    let intercept: f64 = field(cur, parts, "intercept")?;
    let r2: f64 = field(cur, parts, "r2")?;
    let n: usize = field(cur, parts, "n")?;
    Ok(Fit {
        line: Line::new(slope, intercept),
        r2,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let mut s = String::new();
        write_header(&mut s, "kw");
        let mut cur = Cursor::new(&s);
        assert!(read_header(&mut cur, "kw").is_ok());
    }

    #[test]
    fn wrong_kind_is_detected() {
        let mut s = String::new();
        write_header(&mut s, "lw");
        let mut cur = Cursor::new(&s);
        assert_eq!(
            read_header(&mut cur, "kw"),
            Err(PersistError::WrongKind {
                expected: "kw",
                found: "lw".into()
            })
        );
    }

    #[test]
    fn bad_version_is_detected() {
        let mut cur = Cursor::new("dnnperf-model v999 kw\n");
        assert!(matches!(
            read_header(&mut cur, "kw"),
            Err(PersistError::BadHeader { .. })
        ));
    }

    #[test]
    fn fit_round_trips_including_specials() {
        for fit in [
            Fit {
                line: Line::new(1.25e-13, 3.0e-6),
                r2: 0.987654321,
                n: 42,
            },
            Fit {
                line: Line::new(0.0, 0.0),
                r2: f64::NEG_INFINITY,
                n: 1,
            },
        ] {
            let mut s = String::new();
            write_fit(&mut s, &fit);
            let cur = Cursor::new(&s);
            let mut parts = s.split_whitespace();
            let back = read_fit(&cur, &mut parts).unwrap();
            assert_eq!(fit, back);
        }
    }

    #[test]
    fn eof_is_reported() {
        let mut cur = Cursor::new("");
        assert_eq!(cur.next(), Err(PersistError::UnexpectedEof));
    }

    #[test]
    fn errors_display() {
        assert!(PersistError::UnexpectedEof.to_string().contains("ended"));
        let e = PersistError::Parse {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
