//! The common predictor interface (the "simple interface for the
//! performance analytics model" of Figure 10).

use crate::error::PredictError;
use dnnperf_dnn::Network;

/// A trained execution-time predictor for one GPU.
///
/// Implementations take only *static* network structure as input — no
/// execution or profiling is required at prediction time.
pub trait Predictor {
    /// Human-readable model name, e.g. `"KW"`.
    fn name(&self) -> &str;

    /// The GPU this model predicts for.
    fn gpu(&self) -> &str;

    /// Predicts the end-to-end execution time in seconds of one inference
    /// batch of `net` at batch size `batch`.
    ///
    /// # Errors
    ///
    /// Returns a [`PredictError`] when the model cannot cover the network
    /// (unknown layer types with no fallback) or the batch size is zero.
    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError>;
}

/// Convenience: predicts a set of networks, pairing each prediction with the
/// network name. Networks the model cannot cover are skipped.
pub fn predict_all<P: Predictor + ?Sized>(
    model: &P,
    nets: &[Network],
    batch: usize,
) -> Vec<(String, f64)> {
    nets.iter()
        .filter_map(|n| {
            model
                .predict_network(n, batch)
                .ok()
                .map(|t| (n.name().to_string(), t))
        })
        .collect()
}
