//! The End-to-End (E2E) model: one linear regression of batch execution
//! time on total theoretical FLOPs (paper Section 5.2, observation O1).

use crate::error::{PredictError, TrainError};
use crate::model::Predictor;
use dnnperf_data::Dataset;
use dnnperf_dnn::Network;
use dnnperf_linreg::{fit_bounded_intercept_with, Estimator, Fit};

/// The simplest paper model: `time = a * total_FLOPs + b`, trained on
/// network-level measurements of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eModel {
    gpu: String,
    fit: Fit,
}

impl E2eModel {
    /// Trains on the network rows of `gpu` in `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if the dataset has no rows for
    /// `gpu` and [`TrainError::Fit`] if the regression is degenerate.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_core::E2eModel;
    /// use dnnperf_data::collect::collect;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// # fn main() -> Result<(), dnnperf_core::TrainError> {
    /// let nets = [
    ///     dnnperf_dnn::zoo::resnet::resnet18(),
    ///     dnnperf_dnn::zoo::resnet::resnet34(),
    ///     dnnperf_dnn::zoo::resnet::resnet50(),
    /// ];
    /// let ds = collect(&nets, &[GpuSpec::by_name("V100").unwrap()], &[32]);
    /// let model = E2eModel::train(&ds, "V100")?;
    /// assert!(model.slope_seconds_per_flop() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn train(dataset: &Dataset, gpu: &str) -> Result<Self, TrainError> {
        E2eModel::train_with(dataset, gpu, Estimator::Ols)
    }

    /// Trains with an explicit regression estimator: [`Estimator::Ols`] is
    /// the paper's least-squares fit; [`Estimator::Huber`] bounds the
    /// influence of corrupted measurements that survived collection
    /// hygiene (robustness ablation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`E2eModel::train`].
    pub fn train_with(
        dataset: &Dataset,
        gpu: &str,
        estimator: Estimator,
    ) -> Result<Self, TrainError> {
        let rows: Vec<_> = dataset.networks.iter().filter(|r| &*r.gpu == gpu).collect();
        if rows.is_empty() {
            return Err(TrainError::NoDataForGpu {
                gpu: gpu.to_string(),
            });
        }
        let xs: Vec<f64> = rows.iter().map(|r| r.flops as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.e2e_seconds).collect();
        let fit =
            fit_bounded_intercept_with(estimator, &xs, &ys).map_err(|source| TrainError::Fit {
                what: format!("E2E model for {gpu}"),
                source,
            })?;
        Ok(E2eModel {
            gpu: gpu.to_string(),
            fit,
        })
    }

    /// The fitted slope in seconds per FLOP (reciprocal of the achieved
    /// end-to-end FLOPS).
    pub fn slope_seconds_per_flop(&self) -> f64 {
        self.fit.line.slope
    }

    /// The underlying regression.
    pub fn fit(&self) -> &Fit {
        &self.fit
    }

    /// Serializes the model to the dnnperf text format (Figure 10's
    /// "distributed to users" step).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        crate::persist::write_header(&mut out, "e2e");
        out.push_str(&format!("gpu {}\n", self.gpu));
        out.push_str("fit ");
        crate::persist::write_fit(&mut out, &self.fit);
        out.push('\n');
        out
    }

    /// Loads a model serialized with [`E2eModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut cur = crate::persist::Cursor::new(text);
        crate::persist::read_header(&mut cur, "e2e")?;
        let gpu = cur.keyword("gpu")?.to_string();
        let rest = cur.keyword("fit")?;
        let mut parts = rest.split_whitespace();
        let fit = crate::persist::read_fit(&cur, &mut parts)?;
        Ok(E2eModel { gpu, fit })
    }
}

impl Predictor for E2eModel {
    fn name(&self) -> &str {
        "E2E"
    }

    fn gpu(&self) -> &str {
        &self.gpu
    }

    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        crate::error::validate_request(net, batch)?;
        let flops = net.total_flops() as f64 * batch as f64;
        Ok(self.fit.predict(flops).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::GpuSpec;

    fn training_nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::resnet::resnet101(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ]
    }

    #[test]
    fn unknown_gpu_is_an_error() {
        let ds = collect(
            &training_nets()[..2],
            &[GpuSpec::by_name("A100").unwrap()],
            &[16],
        );
        assert_eq!(
            E2eModel::train(&ds, "H100"),
            Err(TrainError::NoDataForGpu { gpu: "H100".into() })
        );
    }

    #[test]
    fn in_family_interpolation_is_decent() {
        let gpus = [GpuSpec::by_name("A100").unwrap()];
        let nets = training_nets();
        let ds = collect(&nets, &gpus, &[64]);
        let model = E2eModel::train(&ds, "A100").unwrap();
        // Predict a held-out ResNet variant.
        let held_out = dnnperf_dnn::zoo::resnet::resnet77();
        let prof = dnnperf_gpu::Profiler::new(gpus[0].clone());
        let measured = prof.profile(&held_out, 64).unwrap().e2e_seconds;
        let predicted = model.predict_network(&held_out, 64).unwrap();
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.6, "E2E error {err}");
    }

    #[test]
    fn prediction_scales_with_batch() {
        let ds = collect(
            &training_nets(),
            &[GpuSpec::by_name("A100").unwrap()],
            &[64],
        );
        let model = E2eModel::train(&ds, "A100").unwrap();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let t64 = model.predict_network(&net, 64).unwrap();
        let t128 = model.predict_network(&net, 128).unwrap();
        // Not a full 2x: the E2E regression's intercept (which absorbs fixed
        // overheads plus inter-family scatter) does not scale with batch.
        assert!(t128 > 1.2 * t64, "t64 {t64}, t128 {t128}");
    }

    #[test]
    fn zero_batch_rejected() {
        let ds = collect(
            &training_nets(),
            &[GpuSpec::by_name("A100").unwrap()],
            &[16],
        );
        let model = E2eModel::train(&ds, "A100").unwrap();
        assert_eq!(
            model.predict_network(&training_nets()[0], 0),
            Err(PredictError::ZeroBatch)
        );
    }

    #[test]
    fn predictions_are_never_negative() {
        let ds = collect(
            &training_nets(),
            &[GpuSpec::by_name("A100").unwrap()],
            &[64],
        );
        let model = E2eModel::train(&ds, "A100").unwrap();
        // A network with almost no FLOPs.
        let tiny = dnnperf_dnn::zoo::shufflenet::shufflenet_v1(3, 0.25, &[2, 4, 2]);
        assert!(model.predict_network(&tiny, 1).unwrap() >= 0.0);
    }
}
