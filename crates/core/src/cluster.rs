//! Kernel clustering: kernels with similar linear behaviour share one
//! regression.
//!
//! The paper: "to avoid creating a linear regression model for every kernel,
//! we combine kernels that demonstrate similar linear relationships and only
//! build one model for these kernels. In total, on A100, for 182 kernels
//! recorded, we built 83 linear regression models."
//!
//! Clustering is greedy over slope ratio within each driver class; each
//! cluster's final regression is refitted on the pooled samples of its
//! member kernels.

use crate::classify::{Driver, KernelClassification};
use dnnperf_data::{DatasetView, KernelRow};
use dnnperf_linreg::{
    fit_bounded_intercept, fit_bounded_segments, mean, Fit, Line, OlsAccum, FIT_CHUNK,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default slope-ratio tolerance for merging two kernels into one cluster.
pub const DEFAULT_SLOPE_TOLERANCE: f64 = 1.08;

/// The result of clustering: an assignment of kernel symbols to clusters
/// and one (driver, regression) per cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignment: BTreeMap<Arc<str>, usize>,
    models: Vec<(Driver, Fit)>,
}

impl Clustering {
    /// The model used for a kernel symbol.
    pub fn model_for(&self, kernel: &str) -> Option<(Driver, &Fit)> {
        let id = *self.assignment.get(kernel)?;
        let (d, f) = &self.models[id];
        Some((*d, f))
    }

    /// Cluster id of a kernel symbol.
    pub fn cluster_of(&self, kernel: &str) -> Option<usize> {
        self.assignment.get(kernel).copied()
    }

    /// Number of regression models (clusters).
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Number of kernel symbols covered.
    pub fn num_kernels(&self) -> usize {
        self.assignment.len()
    }

    /// All cluster models in id order.
    pub fn models(&self) -> &[(Driver, Fit)] {
        &self.models
    }

    /// Iterates over (kernel symbol, cluster id) assignments (unordered).
    pub fn assignments(&self) -> impl Iterator<Item = (&Arc<str>, usize)> {
        self.assignment.iter().map(|(k, &id)| (k, id))
    }

    /// Rebuilds a clustering from its parts (persistence).
    pub(crate) fn from_parts(
        assignment: BTreeMap<Arc<str>, usize>,
        models: Vec<(Driver, Fit)>,
    ) -> Self {
        debug_assert!(assignment.values().all(|&id| id < models.len()));
        Clustering { assignment, models }
    }
}

fn pooled_fit(
    driver: Driver,
    members: &[Arc<str>],
    by_kernel: &BTreeMap<Arc<str>, Vec<&KernelRow>>,
) -> Fit {
    let total: usize = members
        .iter()
        .map(|m| by_kernel.get(m).map_or(0, Vec::len))
        .sum();
    let mut xs = Vec::with_capacity(total);
    let mut ys = Vec::with_capacity(total);
    for m in members {
        for r in by_kernel.get(m).into_iter().flatten() {
            xs.push(r.drivers()[driver.index()]);
            ys.push(r.seconds);
        }
    }
    match fit_bounded_intercept(&xs, &ys) {
        Ok(f) if f.line.slope >= 0.0 => f,
        _ => Fit {
            line: Line::new(0.0, mean(&ys)),
            r2: 0.0,
            n: ys.len(),
        },
    }
}

/// Clusters classified kernels whose slopes agree within `slope_tolerance`
/// (ratio), per driver class, and refits each cluster on pooled samples.
///
/// # Panics
///
/// Panics if `slope_tolerance < 1.0`.
///
/// # Examples
///
/// ```
/// use dnnperf_core::{classify_kernels, cluster_kernels};
/// use dnnperf_data::collect::collect;
/// use dnnperf_gpu::GpuSpec;
///
/// let nets = [dnnperf_dnn::zoo::resnet::resnet50()];
/// let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
/// let classes = classify_kernels(&ds.kernels);
/// let clustering = cluster_kernels(&ds.kernels, &classes, 1.35);
/// assert!(clustering.num_models() <= clustering.num_kernels());
/// ```
pub fn cluster_kernels(
    rows: &[KernelRow],
    classes: &BTreeMap<Arc<str>, KernelClassification>,
    slope_tolerance: f64,
) -> Clustering {
    let refs: Vec<&KernelRow> = rows.iter().collect();
    cluster_view(&DatasetView::from_refs(&refs), classes, slope_tolerance, 1)
}

/// Clusters classified kernels over a columnar [`DatasetView`] on up to
/// `threads` workers — the training hot path.
///
/// The greedy membership sweep is the same single ordered pass as
/// [`cluster_kernels_grouped`] and stays serial. The pooled refits then run
/// in two worker-count-independent phases: the *virtual concatenation* of
/// each cluster's member rows is cut into sub-chunks of exactly
/// [`FIT_CHUNK`] rows (chunk boundaries cross member-group boundaries
/// freely, so the reduction shape depends only on total row count), one
/// accumulator job runs per `(cluster, chunk)`, and the partials fold back
/// per cluster in chunk-index order. Finalisation — and the rare
/// clamped-intercept second pass, which re-sweeps the member segments
/// serially in member order — then runs in parallel across clusters. Both
/// phases key their floating-point reduction shape on [`FIT_CHUNK`] alone,
/// so the result is byte-identical at every thread count.
///
/// # Panics
///
/// Panics if `slope_tolerance < 1.0`.
pub fn cluster_view(
    view: &DatasetView,
    classes: &BTreeMap<Arc<str>, KernelClassification>,
    slope_tolerance: f64,
    threads: usize,
) -> Clustering {
    assert!(slope_tolerance >= 1.0, "slope tolerance must be >= 1");

    // Greedy membership sweep — identical ordering and tolerance rules to
    // the grouped path; members are recorded as view group indices.
    let mut assignment = BTreeMap::new();
    let mut clusters: Vec<(Driver, Vec<usize>)> = Vec::new();
    for driver in Driver::all() {
        let mut members: Vec<(&Arc<str>, f64)> = classes
            .iter()
            .filter(|(k, c)| c.driver == driver && view.group_index(k).is_some())
            .map(|(k, c)| (k, c.chosen_fit().line.slope))
            .collect();
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)));

        let mut i = 0;
        while i < members.len() {
            let mut j = i + 1;
            let base = members[i].1;
            while j < members.len() && slopes_close(base, members[j].1, slope_tolerance) {
                j += 1;
            }
            let id = clusters.len();
            let mut groups = Vec::with_capacity(j - i);
            for (k, _) in &members[i..j] {
                assignment.insert((*k).clone(), id);
                if let Some(g) = view.group_index(k) {
                    groups.push(g);
                }
            }
            clusters.push((driver, groups));
            i = j;
        }
    }

    // Phase 1: per-(cluster, chunk) accumulator jobs over the virtual
    // concatenation of each cluster's member rows, folded per cluster in
    // chunk-index order.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for (c, (_, groups)) in clusters.iter().enumerate() {
        let total: usize = groups
            .iter()
            .map(|&g| view.group(g).map_or(0, |gv| gv.seconds.len()))
            .sum();
        let mut start = 0;
        while start < total {
            let end = (start + FIT_CHUNK).min(total);
            jobs.push((c, start, end));
            start = end;
        }
    }
    let accs: Vec<OlsAccum> = crate::par::reduce_indexed(
        jobs.len(),
        threads,
        |ji| {
            let (c, lo, hi) = jobs[ji];
            let (driver, groups) = &clusters[c];
            let mut chunk = OlsAccum::new();
            // Walk the member segments with a running concatenation offset
            // and push the sub-slice each one contributes to [lo, hi).
            let mut pos = 0usize;
            for &g in groups {
                let Some(gv) = view.group(g) else { continue };
                let len = gv.seconds.len();
                let seg_lo = lo.saturating_sub(pos).min(len);
                let seg_hi = hi.saturating_sub(pos).min(len);
                if seg_lo < seg_hi {
                    chunk.push_all(
                        &gv.drivers[driver.index()][seg_lo..seg_hi],
                        &gv.seconds[seg_lo..seg_hi],
                    );
                }
                pos += len;
                if pos >= hi {
                    break;
                }
            }
            (c, chunk)
        },
        vec![OlsAccum::new(); clusters.len()],
        |mut accs, (c, chunk): (usize, OlsAccum)| {
            if let Some(acc) = accs.get_mut(c) {
                acc.merge(&chunk);
            }
            accs
        },
    );

    // Phase 2: finalise each cluster in parallel, fits stitched back in
    // cluster-id order.
    let ids: Vec<usize> = (0..clusters.len()).collect();
    let models: Vec<(Driver, Fit)> = crate::par::map_ref(&ids, threads, |&c| {
        let (driver, groups) = &clusters[c];
        let segments: Vec<(&[f64], &[f64])> = groups
            .iter()
            .filter_map(|&g| view.group(g))
            .map(|gv| (gv.drivers[driver.index()], gv.seconds))
            .collect();
        let fit = match accs.get(c).map(|acc| fit_bounded_segments(acc, &segments)) {
            Some(Ok(f)) if f.line.slope >= 0.0 => f,
            _ => {
                // Constant fallback: mean of the pooled targets, summed as
                // one running left-to-right sweep in segment order — the
                // same floating-point sequence `mean` runs on the
                // concatenated vector the legacy path materialised.
                let mut sum = 0.0f64;
                let mut n = 0usize;
                for (_, ys) in &segments {
                    for y in *ys {
                        sum += y;
                    }
                    n += ys.len();
                }
                let m = if n == 0 { 0.0 } else { sum / n as f64 };
                Fit {
                    line: Line::new(0.0, m),
                    r2: 0.0,
                    n,
                }
            }
        };
        (*driver, fit)
    });
    Clustering { assignment, models }
}

/// Clusters pre-grouped kernel rows, fanning the per-cluster pooled refits
/// out over up to `threads` workers.
///
/// The cheap greedy membership sweep stays serial (it is a single ordered
/// pass over the classified kernels); only the pooled OLS refits — the
/// expensive part — run on the pool. Cluster membership is decided before
/// any fit runs and the fits are stitched back in cluster-id order, so the
/// result is byte-identical to the serial path for every thread count.
///
/// # Panics
///
/// Panics if `slope_tolerance < 1.0`.
pub fn cluster_kernels_grouped(
    by_kernel: &BTreeMap<Arc<str>, Vec<&KernelRow>>,
    classes: &BTreeMap<Arc<str>, KernelClassification>,
    slope_tolerance: f64,
    threads: usize,
) -> Clustering {
    assert!(slope_tolerance >= 1.0, "slope tolerance must be >= 1");

    // Partition kernels by driver, sort by slope, then sweep greedily.
    // Membership is fully decided here; the fits happen afterwards.
    let mut assignment = BTreeMap::new();
    let mut clusters: Vec<(Driver, Vec<Arc<str>>)> = Vec::new();
    for driver in Driver::all() {
        let mut members: Vec<(&Arc<str>, f64)> = classes
            .iter()
            .filter(|(k, c)| c.driver == driver && by_kernel.contains_key(*k))
            .map(|(k, c)| (k, c.chosen_fit().line.slope))
            .collect();
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)));

        let mut i = 0;
        while i < members.len() {
            let mut j = i + 1;
            let base = members[i].1;
            while j < members.len() && slopes_close(base, members[j].1, slope_tolerance) {
                j += 1;
            }
            let cluster: Vec<Arc<str>> = members[i..j].iter().map(|(k, _)| (*k).clone()).collect();
            let id = clusters.len();
            for k in &cluster {
                assignment.insert(k.clone(), id);
            }
            clusters.push((driver, cluster));
            i = j;
        }
    }

    // Per-cluster pooled refits on the work-stealing pool, results in
    // cluster-id order.
    let models: Vec<(Driver, Fit)> =
        crate::par::map_ref(&clusters, threads, |(driver, members)| {
            (*driver, pooled_fit(*driver, members, by_kernel))
        });
    Clustering { assignment, models }
}

fn slopes_close(a: f64, b: f64, tolerance: f64) -> bool {
    if a <= 0.0 || b <= 0.0 {
        // Constant (zero-slope) kernels cluster together.
        return a <= 0.0 && b <= 0.0;
    }
    let ratio = if a > b { a / b } else { b / a };
    ratio <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_kernels, group_by_kernel};

    fn row(kernel: &str, x: u64, seconds: f64) -> KernelRow {
        KernelRow {
            network: "n".into(),
            gpu: "g".into(),
            batch: 1,
            layer_index: 0,
            layer_type: Arc::from("conv"),
            kernel: kernel.into(),
            in_elems: 1,
            flops: x,
            out_elems: 1,
            seconds,
        }
    }

    fn synthetic(slopes: &[(&str, f64)]) -> Vec<KernelRow> {
        let mut rows = Vec::new();
        for (name, slope) in slopes {
            for i in 1..30u64 {
                rows.push(row(name, i * 100, slope * (i * 100) as f64 + 1.0));
            }
        }
        rows
    }

    #[test]
    fn similar_slopes_merge_dissimilar_do_not() {
        let rows = synthetic(&[("a", 1.0), ("b", 1.1), ("c", 10.0)]);
        let classes = classify_kernels(&rows);
        let cl = cluster_kernels(&rows, &classes, 1.35);
        assert_eq!(cl.num_kernels(), 3);
        assert_eq!(cl.num_models(), 2);
        assert_eq!(cl.cluster_of("a"), cl.cluster_of("b"));
        assert_ne!(cl.cluster_of("a"), cl.cluster_of("c"));
    }

    #[test]
    fn pooled_fit_is_between_member_slopes() {
        let rows = synthetic(&[("a", 1.0), ("b", 1.2)]);
        let classes = classify_kernels(&rows);
        let cl = cluster_kernels(&rows, &classes, 1.35);
        let (_, f) = cl.model_for("a").unwrap();
        assert!(
            f.line.slope > 0.99 && f.line.slope < 1.21,
            "{}",
            f.line.slope
        );
    }

    #[test]
    fn different_drivers_never_merge() {
        let mut rows = Vec::new();
        // "in_k" follows input, "op_k" follows flops, identical slopes.
        for i in 1..30u64 {
            rows.push(KernelRow {
                in_elems: i * 100,
                flops: (i * 37) % 900 + 1,
                out_elems: 1,
                seconds: (i * 100) as f64,
                ..row("in_k", 1, 0.0)
            });
            rows.push(KernelRow {
                in_elems: (i * 37) % 900 + 1,
                flops: i * 100,
                out_elems: 1,
                seconds: (i * 100) as f64,
                ..row("op_k", 1, 0.0)
            });
        }
        let classes = classify_kernels(&rows);
        let cl = cluster_kernels(&rows, &classes, 100.0);
        assert_ne!(cl.cluster_of("in_k"), cl.cluster_of("op_k"));
    }

    #[test]
    fn clustering_reduces_models_on_real_trace() {
        use dnnperf_data::collect::collect;
        use dnnperf_gpu::GpuSpec;
        let nets = [
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::densenet::densenet121(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ];
        let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[64]);
        let classes = classify_kernels(&ds.kernels);
        let cl = cluster_kernels(&ds.kernels, &classes, DEFAULT_SLOPE_TOLERANCE);
        assert!(cl.num_models() < cl.num_kernels());
        assert!(cl.num_models() > 3);
    }

    #[test]
    #[should_panic(expected = "slope tolerance")]
    fn tolerance_below_one_panics() {
        cluster_kernels(&[], &BTreeMap::new(), 0.5);
    }

    #[test]
    fn parallel_refits_match_serial_exactly() {
        let rows = synthetic(&[("a", 1.0), ("b", 1.1), ("c", 10.0), ("d", 0.2), ("e", 0.21)]);
        let classes = classify_kernels(&rows);
        let by_kernel = group_by_kernel(&rows);
        let serial = cluster_kernels_grouped(&by_kernel, &classes, 1.35, 1);
        assert_eq!(serial, cluster_kernels(&rows, &classes, 1.35));
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let view = dnnperf_data::DatasetView::from_refs(&refs);
        for threads in [2, 3, 8] {
            assert_eq!(
                cluster_kernels_grouped(&by_kernel, &classes, 1.35, threads),
                serial,
                "grouped threads = {threads}"
            );
            assert_eq!(
                cluster_view(&view, &classes, 1.35, threads),
                serial,
                "view threads = {threads}"
            );
        }
    }

    #[test]
    fn view_path_splits_big_clusters_into_subchunks_deterministically() {
        // Enough rows per kernel that the pooled virtual concatenation
        // spans several FIT_CHUNK boundaries, exercising the sub-chunk
        // segment walk at every thread count.
        let mut rows = Vec::new();
        for (name, slope) in [("a", 1.0f64), ("b", 1.05)] {
            for i in 1..1500u64 {
                rows.push(row(name, i * 10, slope * (i * 10) as f64 + 0.5));
            }
        }
        let classes = classify_kernels(&rows);
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let view = dnnperf_data::DatasetView::from_refs(&refs);
        let serial = cluster_view(&view, &classes, 1.35, 1);
        assert_eq!(serial.num_models(), 1, "similar slopes must pool");
        assert_eq!(serial, cluster_kernels(&rows, &classes, 1.35));
        for threads in [2, 3, 8, 32] {
            assert_eq!(
                cluster_view(&view, &classes, 1.35, threads),
                serial,
                "threads = {threads}"
            );
        }
    }
}
