//! The Kernel-Wise (KW) model (paper Section 5.4): the paper's most accurate
//! single-GPU predictor.
//!
//! Training: build the layer-to-kernel mapping table, classify every kernel
//! by its best-R² driver (input / operation / output), cluster kernels with
//! similar linear behaviour, and fit one regression per cluster. Prediction:
//! walk the network's layers, look each up in the mapping table, and sum the
//! per-kernel regressions evaluated at the layer's driver variables.

use crate::classify::{classify_view, Driver, KernelClassification};
use crate::cluster::{cluster_view, Clustering, DEFAULT_SLOPE_TOLERANCE};
use crate::error::{PredictError, TrainError};
use crate::mapping::KernelMap;
use crate::model::Predictor;
use dnnperf_data::{Dataset, DatasetView};
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::{Layer, Network};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How much of a layer's kernel work the KW model can actually price.
///
/// [`KwModel::predict_layer`] silently treats missing information as zero
/// cost; the coverage-aware variant reports what was missing so callers
/// (the graceful-degradation ladder of [`crate::degrade`]) can substitute a
/// coarser model instead of undershooting.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerCoverage {
    /// Every mapped kernel has a cluster regression; `seconds` is the full
    /// KW prediction.
    Full(f64),
    /// The layer maps to kernels but some lack cluster regressions; the
    /// priced subtotal and the unpriced kernel symbols are reported.
    Partial {
        /// Sum of the regressions that *do* exist.
        seconds: f64,
        /// Kernel symbols with no cluster model.
        missing: Vec<Arc<str>>,
    },
    /// The mapping table has no entry for this layer signature at all.
    Unmapped,
}

impl LayerCoverage {
    /// The priced seconds, whatever the coverage (0.0 when unmapped).
    pub fn seconds(&self) -> f64 {
        match self {
            LayerCoverage::Full(s) | LayerCoverage::Partial { seconds: s, .. } => *s,
            LayerCoverage::Unmapped => 0.0,
        }
    }

    /// Whether the KW model fully covered the layer.
    pub fn is_full(&self) -> bool {
        matches!(self, LayerCoverage::Full(_))
    }
}

/// The Kernel-Wise model for one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct KwModel {
    gpu: String,
    map: KernelMap,
    classes: BTreeMap<Arc<str>, KernelClassification>,
    clustering: Clustering,
}

impl KwModel {
    /// Trains on the kernel rows of `gpu` with the default clustering
    /// tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if the dataset has no kernel
    /// rows for `gpu`.
    pub fn train(dataset: &Dataset, gpu: &str) -> Result<Self, TrainError> {
        KwModel::train_with_tolerance(dataset, gpu, DEFAULT_SLOPE_TOLERANCE)
    }

    /// Trains with an explicit clustering slope tolerance (`1.0` disables
    /// merging: one regression per kernel; used by the clustering ablation).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if the dataset has no kernel
    /// rows for `gpu`.
    pub fn train_with_tolerance(
        dataset: &Dataset,
        gpu: &str,
        slope_tolerance: f64,
    ) -> Result<Self, TrainError> {
        KwModel::train_with_options(dataset, gpu, slope_tolerance, 1)
    }

    /// Trains with an explicit clustering tolerance *and* worker count.
    ///
    /// The kernel rows are snapshotted into one columnar
    /// [`DatasetView`] — SoA driver/target columns plus a sort-by-kernel
    /// group index, built in a single pass with zero row clones — and that
    /// view is shared between classification and clustering. Both stages
    /// decompose their regressions into fixed [`dnnperf_linreg::FIT_CHUNK`]
    /// row chunks whose partial accumulators fan out over up to `threads`
    /// workers on the scheduler's work-stealing pool and fold back in
    /// chunk-index order, so the trained model is byte-identical to the
    /// serial path for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if the dataset has no kernel
    /// rows for `gpu`.
    pub fn train_with_options(
        dataset: &Dataset,
        gpu: &str,
        slope_tolerance: f64,
        threads: usize,
    ) -> Result<Self, TrainError> {
        // Borrow the GPU's rows instead of cloning them: training only
        // ever reads, and the clone was a measurable share of serial
        // training time.
        let rows: Vec<&dnnperf_data::KernelRow> =
            dataset.kernels.iter().filter(|r| &*r.gpu == gpu).collect();
        if rows.is_empty() {
            return Err(TrainError::NoDataForGpu {
                gpu: gpu.to_string(),
            });
        }
        let map = KernelMap::from_row_refs(&rows);
        // One columnar snapshot feeds both classification and clustering.
        let view = DatasetView::from_refs(&rows);
        let classes = classify_view(&view, threads);
        let clustering = cluster_view(&view, &classes, slope_tolerance, threads);
        Ok(KwModel {
            gpu: gpu.to_string(),
            map,
            classes,
            clustering,
        })
    }

    /// Number of distinct kernel symbols seen in training (paper: ~182 on
    /// A100).
    pub fn num_kernels(&self) -> usize {
        self.clustering.num_kernels()
    }

    /// Number of regression models after clustering (paper: 83 on A100).
    pub fn num_models(&self) -> usize {
        self.clustering.num_models()
    }

    /// Per-kernel classifications (for the Figure 8 analysis).
    pub fn classifications(&self) -> &BTreeMap<Arc<str>, KernelClassification> {
        &self.classes
    }

    /// The learned layer-to-kernel mapping table.
    pub fn mapping(&self) -> &KernelMap {
        &self.map
    }

    /// The kernel clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Serializes the model to the dnnperf text format: the mapping table,
    /// every kernel classification, and the clustered regressions.
    pub fn to_text(&self) -> String {
        use crate::persist::{write_fit, write_header};
        let mut out = String::new();
        write_header(&mut out, "kw");
        out.push_str(&format!("gpu {}\n", self.gpu));
        self.map.write_text(&mut out);

        let mut kernels: Vec<&Arc<str>> = self.classes.keys().collect();
        kernels.sort();
        out.push_str(&format!("classes {}\n", kernels.len()));
        for k in &kernels {
            let c = &self.classes[*k];
            out.push_str(&format!(
                "class {} {} {} {} {} {}",
                k, c.driver, c.n, c.r2[0], c.r2[1], c.r2[2]
            ));
            for f in &c.fits {
                match f {
                    Some(fit) => {
                        out.push_str(" 1 ");
                        write_fit(&mut out, fit);
                    }
                    None => out.push_str(" 0"),
                }
            }
            out.push('\n');
        }

        let models = self.clustering.models();
        let mut assignments: Vec<(&Arc<str>, usize)> = self.clustering.assignments().collect();
        assignments.sort_by(|a, b| a.0.cmp(b.0));
        out.push_str(&format!(
            "clustering {} {}\n",
            models.len(),
            assignments.len()
        ));
        for (driver, fit) in models {
            out.push_str(&format!("model {driver} "));
            write_fit(&mut out, fit);
            out.push('\n');
        }
        for (k, id) in assignments {
            out.push_str(&format!("assign {k} {id}\n"));
        }
        out
    }

    /// Loads a model serialized with [`KwModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{field, read_fit, read_header, Cursor};
        let mut cur = Cursor::new(text);
        read_header(&mut cur, "kw")?;
        let gpu = cur.keyword("gpu")?.to_string();
        let map = KernelMap::read_text(&mut cur)?;

        let rest = cur.keyword("classes")?;
        let mut parts = rest.split_whitespace();
        let n_classes: usize = field(&cur, &mut parts, "class count")?;
        let mut classes = BTreeMap::new();
        for _ in 0..n_classes {
            let rest = cur.keyword("class")?;
            let mut parts = rest.split_whitespace();
            let kernel: Arc<str> = Arc::from(
                parts
                    .next()
                    .ok_or_else(|| cur.parse_err("missing kernel symbol"))?,
            );
            let driver: Driver = parts
                .next()
                .ok_or_else(|| cur.parse_err("missing driver"))?
                .parse()
                .map_err(|e| cur.parse_err(format!("{e}")))?;
            let n: usize = field(&cur, &mut parts, "sample count")?;
            let r2 = [
                field(&cur, &mut parts, "r2[0]")?,
                field(&cur, &mut parts, "r2[1]")?,
                field(&cur, &mut parts, "r2[2]")?,
            ];
            let mut fits: [Option<dnnperf_linreg::Fit>; 3] = [None, None, None];
            for f in &mut fits {
                let marker: u8 = field(&cur, &mut parts, "fit marker")?;
                if marker == 1 {
                    *f = Some(read_fit(&cur, &mut parts)?);
                }
            }
            classes.insert(
                kernel.clone(),
                crate::classify::KernelClassification {
                    kernel,
                    driver,
                    fits,
                    r2,
                    n,
                },
            );
        }

        let rest = cur.keyword("clustering")?;
        let mut parts = rest.split_whitespace();
        let n_models: usize = field(&cur, &mut parts, "model count")?;
        let n_assign: usize = field(&cur, &mut parts, "assignment count")?;
        let mut models = Vec::with_capacity(n_models);
        for _ in 0..n_models {
            let rest = cur.keyword("model")?;
            let mut parts = rest.split_whitespace();
            let driver: Driver = parts
                .next()
                .ok_or_else(|| cur.parse_err("missing driver"))?
                .parse()
                .map_err(|e| cur.parse_err(format!("{e}")))?;
            models.push((driver, read_fit(&cur, &mut parts)?));
        }
        let mut assignment = BTreeMap::new();
        for _ in 0..n_assign {
            let rest = cur.keyword("assign")?;
            let mut parts = rest.split_whitespace();
            let kernel: Arc<str> = Arc::from(
                parts
                    .next()
                    .ok_or_else(|| cur.parse_err("missing kernel symbol"))?,
            );
            let id: usize = field(&cur, &mut parts, "cluster id")?;
            if id >= models.len() {
                return Err(cur.parse_err(format!("cluster id {id} out of range")));
            }
            assignment.insert(kernel, id);
        }
        let clustering = crate::cluster::Clustering::from_parts(assignment, models);
        Ok(KwModel {
            gpu,
            map,
            classes,
            clustering,
        })
    }

    /// Predicts how many kernel launches one inference batch of `net` will
    /// issue (from the learned mapping table). Used by the CPU-overhead
    /// correction of [`crate::overhead`].
    pub fn predict_kernel_count(&self, net: &Network) -> usize {
        net.layers()
            .iter()
            .map(|l| self.map.kernels_for(l).map_or(0, <[Arc<str>]>::len))
            .sum()
    }

    /// Predicts the time of a single layer at `batch`, in seconds.
    ///
    /// Missing coverage (unmapped layers, kernels without cluster models)
    /// silently contributes zero; use [`KwModel::predict_layer_coverage`]
    /// when the caller needs to know what was skipped.
    pub fn predict_layer(&self, layer: &Layer, batch: usize) -> f64 {
        self.predict_layer_coverage(layer, batch).seconds()
    }

    /// Predicts the time of a single layer at `batch` and reports how much
    /// of the layer's kernel work was actually priced.
    pub fn predict_layer_coverage(&self, layer: &Layer, batch: usize) -> LayerCoverage {
        let Some(kernels) = self.map.kernels_for(layer) else {
            // Layer type never recorded: either it launches no kernels
            // (flatten) or it is genuinely outside the training set. The
            // caller decides which via [`LayerCoverage::Unmapped`].
            return LayerCoverage::Unmapped;
        };
        let n = batch as f64;
        let drivers = [
            layer.input.elems() as f64 * n,
            layer_flops(layer) as f64 * n,
            layer.output.elems() as f64 * n,
        ];
        let mut seconds = 0.0;
        let mut missing = Vec::new();
        for k in kernels {
            match self.clustering.model_for(k) {
                Some((driver, fit)) => {
                    seconds += fit.predict(drivers[driver.index()]).max(0.0);
                }
                None => missing.push(k.clone()),
            }
        }
        if missing.is_empty() {
            LayerCoverage::Full(seconds)
        } else {
            LayerCoverage::Partial { seconds, missing }
        }
    }
}

impl Predictor for KwModel {
    fn name(&self) -> &str {
        "KW"
    }

    fn gpu(&self) -> &str {
        &self.gpu
    }

    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        crate::error::validate_request(net, batch)?;
        Ok(net
            .layers()
            .iter()
            .map(|l| self.predict_layer(l, batch))
            .sum())
    }
}

/// Classification of a driver for ablation: a degenerate "always FLOPs"
/// variant of the KW model used by the `ablation_driver` experiment. It
/// reuses the mapping table but regresses every kernel on layer FLOPs.
#[derive(Debug, Clone, PartialEq)]
pub struct KwFlopsOnlyModel {
    inner: KwModel,
}

impl KwFlopsOnlyModel {
    /// Trains the ablated model: every kernel forced to operation-driven.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KwModel::train`].
    pub fn train(dataset: &Dataset, gpu: &str) -> Result<Self, TrainError> {
        let rows: Vec<&dnnperf_data::KernelRow> =
            dataset.kernels.iter().filter(|r| &*r.gpu == gpu).collect();
        if rows.is_empty() {
            return Err(TrainError::NoDataForGpu {
                gpu: gpu.to_string(),
            });
        }
        let map = KernelMap::from_row_refs(&rows);
        let view = DatasetView::from_refs(&rows);
        // Force classification to Operation for every kernel.
        let mut classes = classify_view(&view, 1);
        for c in classes.values_mut() {
            if c.fits[Driver::Operation.index()].is_some() {
                c.driver = Driver::Operation;
            }
        }
        let clustering = cluster_view(&view, &classes, DEFAULT_SLOPE_TOLERANCE, 1);
        Ok(KwFlopsOnlyModel {
            inner: KwModel {
                gpu: gpu.to_string(),
                map,
                classes,
                clustering,
            },
        })
    }
}

impl Predictor for KwFlopsOnlyModel {
    fn name(&self) -> &str {
        "KW-flops-only"
    }

    fn gpu(&self) -> &str {
        self.inner.gpu()
    }

    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        self.inner.predict_network(net, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::{GpuSpec, Profiler};
    use dnnperf_linreg::mean_abs_rel_error;

    fn train_nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::resnet::resnet101(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg16(),
            dnnperf_dnn::zoo::densenet::densenet121(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
            dnnperf_dnn::zoo::squeezenet::squeezenet(128, 128, 0.125),
        ]
    }

    fn test_nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet77(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::densenet::densenet169(),
        ]
    }

    #[test]
    fn kw_is_accurate_on_held_out_networks() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect(&train_nets(), std::slice::from_ref(&gpu), &[64]);
        let model = KwModel::train(&ds, "A100").unwrap();
        let prof = Profiler::new(gpu);
        let mut preds = Vec::new();
        let mut meas = Vec::new();
        for net in test_nets() {
            preds.push(model.predict_network(&net, 64).unwrap());
            meas.push(prof.profile(&net, 64).unwrap().e2e_seconds);
        }
        let err = mean_abs_rel_error(&preds, &meas);
        assert!(err < 0.15, "KW error {err}");
    }

    #[test]
    fn kw_beats_e2e_on_held_out_networks() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect(&train_nets(), std::slice::from_ref(&gpu), &[64]);
        let kw = KwModel::train(&ds, "A100").unwrap();
        let e2e = crate::E2eModel::train(&ds, "A100").unwrap();
        let prof = Profiler::new(gpu);
        let (mut kw_p, mut e2e_p, mut meas) = (Vec::new(), Vec::new(), Vec::new());
        for net in test_nets() {
            kw_p.push(kw.predict_network(&net, 64).unwrap());
            e2e_p.push(e2e.predict_network(&net, 64).unwrap());
            meas.push(prof.profile(&net, 64).unwrap().e2e_seconds);
        }
        assert!(mean_abs_rel_error(&kw_p, &meas) < mean_abs_rel_error(&e2e_p, &meas));
    }

    #[test]
    fn clustering_reduces_model_count() {
        let ds = collect(&train_nets(), &[GpuSpec::by_name("A100").unwrap()], &[64]);
        let merged = KwModel::train(&ds, "A100").unwrap();
        let unmerged = KwModel::train_with_tolerance(&ds, "A100", 1.0).unwrap();
        assert!(merged.num_models() < unmerged.num_models());
        assert_eq!(merged.num_kernels(), unmerged.num_kernels());
    }

    #[test]
    fn batch_extrapolation_works() {
        // Train at one batch size, predict another (the paper's O3-based
        // design: train at BS=512 only).
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect(&train_nets(), std::slice::from_ref(&gpu), &[128]);
        let model = KwModel::train(&ds, "A100").unwrap();
        let prof = Profiler::new(gpu);
        let net = dnnperf_dnn::zoo::resnet::resnet77();
        let meas = prof.profile(&net, 32).unwrap().e2e_seconds;
        let pred = model.predict_network(&net, 32).unwrap();
        let err = (pred - meas).abs() / meas;
        assert!(err < 0.3, "cross-batch KW error {err}");
    }

    #[test]
    fn flatten_layers_cost_nothing() {
        let ds = collect(&train_nets(), &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let model = KwModel::train(&ds, "A100").unwrap();
        let flat = Layer::apply(
            dnnperf_dnn::LayerKind::Flatten,
            dnnperf_dnn::TensorShape::chw(512, 7, 7),
        )
        .unwrap();
        assert_eq!(model.predict_layer(&flat, 64), 0.0);
    }

    #[test]
    fn parallel_training_matches_serial() {
        let ds = collect(&train_nets(), &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let serial = KwModel::train(&ds, "A100").unwrap();
        for threads in [2, 8] {
            let par =
                KwModel::train_with_options(&ds, "A100", DEFAULT_SLOPE_TOLERANCE, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
            assert_eq!(par.to_text(), serial.to_text(), "threads = {threads}");
        }
    }

    #[test]
    fn no_data_is_an_error() {
        assert!(matches!(
            KwModel::train(&Dataset::new(), "A100"),
            Err(TrainError::NoDataForGpu { .. })
        ));
    }
}
