//! dnnperf-core: linear-regression-based GPU execution time prediction for
//! DNN workloads — the paper's primary contribution.
//!
//! Four models, in increasing complexity and accuracy (Section 5):
//!
//! * [`E2eModel`] — one regression of end-to-end time on total network FLOPs;
//! * [`LwModel`] — one regression per layer *type* on layer FLOPs;
//! * [`KwModel`] — kernel-level regressions: a learned layer-to-kernel
//!   mapping table, automatic classification of every kernel as input-,
//!   operation- or output-driven (by best R², observation O5), and
//!   clustering of kernels with similar linear behaviour so ~180 kernels
//!   share ~80 regressions;
//! * [`IgkwModel`] — the Inter-GPU extension: per-kernel slopes are
//!   themselves regressed against the reciprocal of GPU memory bandwidth
//!   (O6), so the model can predict GPUs absent from the training set,
//!   including hypothetical ones.
//!
//! All models implement [`Predictor`] and are trained purely from a
//! [`dnnperf_data::Dataset`] — never from the simulator's hidden parameters.
//!
//! # Examples
//!
//! ```
//! use dnnperf_core::{E2eModel, Predictor};
//! use dnnperf_data::collect::collect;
//! use dnnperf_dnn::zoo;
//! use dnnperf_gpu::GpuSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nets: Vec<_> = (1..6).map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.25, 1.0)).collect();
//! let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[64]);
//! let model = E2eModel::train(&ds, "A100")?;
//! let t = model.predict_network(&zoo::mobilenet::mobilenet_v2(0.6, 1.0), 64)?;
//! assert!(t > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Predictor-side code must degrade gracefully, never crash: a stray
// `unwrap` would turn a recoverable modelling failure into a panic.
// dnnperf-lint's panic-policy pass verifies this attribute stays in place.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod classify;
pub mod cluster;
pub mod degrade;
pub mod e2e;
pub mod error;
pub mod intergpu;
pub mod kernelwise;
pub mod layerwise;
pub mod mapping;
pub mod model;
pub mod oracle;
pub mod overhead;
mod par;
pub mod persist;
pub mod plan;
pub mod workflow;

pub use classify::{classify_kernels, classify_view, Driver, KernelClassification};
pub use cluster::{cluster_kernels, cluster_view, Clustering};
pub use degrade::{Degradation, GracefulPrediction};
pub use e2e::E2eModel;
pub use error::{PredictError, TrainError};
pub use intergpu::IgkwModel;
pub use kernelwise::{KwModel, LayerCoverage};
pub use layerwise::LwModel;
pub use mapping::{KernelMap, LayerSignature};
pub use model::Predictor;
pub use oracle::{OraclePrediction, OracleSource, PlanSource, PredictionOracle};
pub use overhead::{KwWithOverhead, OverheadModel};
pub use persist::PersistError;
pub use plan::CompiledPlan;
pub use workflow::{TrainOptions, Workflow};
