//! Plan lookup as a simulation oracle: compiled-plan predictions (with
//! the graceful-degradation ladder's notes) plus an inter-GPU fallback,
//! behind one lookup surface an event-driven simulator can consume.
//!
//! The paper's pitch is that a fast analytical predictor can *drive
//! decisions*, not just produce point estimates. The fleet simulator in
//! `dnnperf-simkit` needs exactly one thing from the prediction stack: a
//! service time for "network `n` at batch `b` on GPU `g`". This module
//! packages that as [`PredictionOracle`]:
//!
//! * GPUs with a trained [`Workflow`] are priced through the compiled
//!   plan ([`CompiledPlan::predict_graceful`]) — bit-identical to
//!   [`Workflow::predict_graceful`], [`Degradation`] notes included, so
//!   the simulator can annotate results whose service times leaned on a
//!   coarser model;
//! * GPUs never profiled fall back to the Inter-GPU Kernel-Wise model
//!   ([`IgkwModel::predict_network_on`]), flagged as
//!   [`OracleSource::Igkw`].
//!
//! Plan lookups route through a pluggable [`PlanSource`] so callers can
//! substitute a shared, memory-budgeted serving cache (the
//! `dnnperf-serve` crate implements [`PlanSource`] for its
//! `SharedPlanCache`) without the oracle caring where plans live. The
//! default source is each suite's own [`Workflow::plan`] cache.
//!
//! The oracle consumes only public model surfaces — compiled plans and
//! IGKW fits — never `dnnperf_gpu::timing`; the oracle-isolation lint
//! pass enforces that boundary for this module and for every simulator
//! built on it.

use crate::degrade::{Degradation, GracefulPrediction};
use crate::error::PredictError;
use crate::intergpu::IgkwModel;
use crate::model::Predictor;
use crate::plan::CompiledPlan;
use crate::workflow::Workflow;
use dnnperf_dnn::Network;
use dnnperf_gpu::GpuSpec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a compiled plan for `(suite, network, batch)` comes from.
///
/// The default implementation is the suite's own plan cache; a serving
/// layer can implement this for a shared, budgeted cache so simulators
/// and servers draw from the same resident plans.
pub trait PlanSource: Send + Sync {
    /// The compiled plan for the request, compiling on miss.
    ///
    /// # Errors
    ///
    /// Propagates [`PredictError`] from plan compilation.
    fn plan_for(
        &self,
        suite: &Workflow,
        net: &Network,
        batch: usize,
    ) -> Result<Arc<CompiledPlan>, PredictError>;
}

/// The default [`PlanSource`]: each suite's own [`Workflow::plan`] cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct SuitePlans;

impl PlanSource for SuitePlans {
    fn plan_for(
        &self,
        suite: &Workflow,
        net: &Network,
        batch: usize,
    ) -> Result<Arc<CompiledPlan>, PredictError> {
        suite.plan(net, batch)
    }
}

/// Which model family priced an oracle request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleSource {
    /// A compiled plan against a trained single-GPU suite (the ladder's
    /// notes say how much of the time came from coarser rungs).
    CompiledPlan,
    /// The Inter-GPU Kernel-Wise model: the GPU was never profiled.
    Igkw,
}

/// One oracle answer: the predicted seconds, how they were produced, and
/// every degradation note the ladder recorded along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePrediction {
    /// Predicted service time in seconds.
    pub seconds: f64,
    /// Degradation-ladder notes (empty for full KW coverage and for the
    /// IGKW path, which has no per-layer coverage account).
    pub notes: Vec<Degradation>,
    /// The model family that produced the number.
    pub source: OracleSource,
}

impl OraclePrediction {
    /// Whether any part of the prediction leaned on a coarser model (a
    /// ladder fallback, or the whole-GPU IGKW fallback).
    pub fn is_degraded(&self) -> bool {
        !self.notes.is_empty() || self.source == OracleSource::Igkw
    }
}

/// Service-time oracle over trained suites with an inter-GPU fallback.
/// See the module docs for the design.
pub struct PredictionOracle {
    suites: BTreeMap<String, Arc<Workflow>>,
    igkw: Option<IgkwModel>,
    source: Arc<dyn PlanSource>,
}

impl PredictionOracle {
    /// An empty oracle using each suite's own plan cache.
    pub fn new() -> Self {
        PredictionOracle {
            suites: BTreeMap::new(),
            igkw: None,
            source: Arc::new(SuitePlans),
        }
    }

    /// An empty oracle whose plan lookups go through `source` (e.g. a
    /// shared serving cache) instead of each suite's private cache.
    pub fn with_plan_source(source: Arc<dyn PlanSource>) -> Self {
        PredictionOracle {
            suites: BTreeMap::new(),
            igkw: None,
            source,
        }
    }

    /// Registers the trained suite for one GPU (keyed by the suite's GPU
    /// name as trained). Replaces any previous suite for that GPU.
    pub fn add_suite(&mut self, suite: Arc<Workflow>) {
        self.suites.insert(suite.kw.gpu().to_string(), suite);
    }

    /// Installs the Inter-GPU Kernel-Wise fallback for GPUs without a
    /// trained suite.
    pub fn set_igkw(&mut self, igkw: IgkwModel) {
        self.igkw = Some(igkw);
    }

    /// The trained suite registered for `gpu`, if any.
    pub fn suite_for(&self, gpu: &str) -> Option<&Arc<Workflow>> {
        self.suites.get(gpu)
    }

    /// Whether requests on `gpu` can be priced at all (suite or IGKW).
    pub fn covers(&self, gpu: &str) -> bool {
        self.suites.contains_key(gpu) || self.igkw.is_some()
    }

    /// Number of registered per-GPU suites.
    pub fn num_suites(&self) -> usize {
        self.suites.len()
    }

    /// Prices one request on `gpu`: the compiled plan of the GPU's
    /// trained suite when one is registered (bit-identical to
    /// [`Workflow::predict_graceful`], notes included), otherwise the
    /// IGKW fallback.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NoModelForGpu`] when neither a suite nor
    /// the IGKW fallback covers `gpu`, and propagates validation or
    /// compilation errors from the underlying predictors.
    pub fn predict(
        &self,
        gpu: &GpuSpec,
        net: &Network,
        batch: usize,
    ) -> Result<OraclePrediction, PredictError> {
        if let Some(suite) = self.suites.get(&gpu.name) {
            let plan = self.source.plan_for(suite, net, batch)?;
            let GracefulPrediction { seconds, notes } = plan.predict_graceful();
            return Ok(OraclePrediction {
                seconds,
                notes,
                source: OracleSource::CompiledPlan,
            });
        }
        if let Some(igkw) = &self.igkw {
            let seconds = igkw.predict_network_on(net, batch, gpu)?;
            return Ok(OraclePrediction {
                seconds,
                notes: Vec::new(),
                source: OracleSource::Igkw,
            });
        }
        Err(PredictError::NoModelForGpu {
            gpu: gpu.name.clone(),
        })
    }
}

impl Default for PredictionOracle {
    fn default() -> Self {
        PredictionOracle::new()
    }
}

impl std::fmt::Debug for PredictionOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionOracle")
            .field("suites", &self.suites.keys().collect::<Vec<_>>())
            .field("igkw", &self.igkw.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;

    fn suite(gpu: &str, nets: &[Network]) -> Arc<Workflow> {
        let spec = GpuSpec::by_name(gpu).unwrap();
        let ds = collect(nets, &[spec], &[32]);
        Arc::new(Workflow::train(&ds, gpu).unwrap())
    }

    fn vgg_only() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ]
    }

    #[test]
    fn plan_path_is_bit_identical_to_predict_graceful_notes_included() {
        let suite = suite("A100", &vgg_only());
        let mut oracle = PredictionOracle::new();
        oracle.add_suite(Arc::clone(&suite));
        // Out-of-family probe: every ladder rung fires.
        let probe = dnnperf_dnn::zoo::resnet::resnet18();
        let gpu = GpuSpec::by_name("A100").unwrap();
        let got = oracle.predict(&gpu, &probe, 32).unwrap();
        let want = suite.predict_graceful(&probe, 32).unwrap();
        assert_eq!(got.seconds.to_bits(), want.seconds.to_bits());
        assert_eq!(got.notes, want.notes);
        assert_eq!(got.source, OracleSource::CompiledPlan);
        assert!(got.is_degraded());
    }

    #[test]
    fn unprofiled_gpu_falls_back_to_igkw() {
        let nets = vgg_only();
        let train_gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("A40").unwrap(),
            GpuSpec::by_name("GTX 1080 Ti").unwrap(),
        ];
        let ds = collect(&nets, &train_gpus, &[32]);
        let igkw = IgkwModel::train(&ds, &train_gpus).unwrap();
        let mut oracle = PredictionOracle::new();
        oracle.add_suite(suite("A100", &nets));
        oracle.set_igkw(igkw.clone());

        let titan = GpuSpec::by_name("TITAN RTX").unwrap();
        let got = oracle.predict(&titan, &nets[0], 32).unwrap();
        let want = igkw.predict_network_on(&nets[0], 32, &titan).unwrap();
        assert_eq!(got.seconds.to_bits(), want.to_bits());
        assert_eq!(got.source, OracleSource::Igkw);
        assert!(got.is_degraded());
        assert!(got.notes.is_empty());
    }

    #[test]
    fn uncovered_gpu_is_a_typed_error() {
        let oracle = PredictionOracle::new();
        let gpu = GpuSpec::by_name("A100").unwrap();
        let net = dnnperf_dnn::zoo::resnet::resnet18();
        assert_eq!(
            oracle.predict(&gpu, &net, 8).unwrap_err(),
            PredictError::NoModelForGpu { gpu: "A100".into() }
        );
        assert!(!oracle.covers("A100"));
    }
}
