//! The Inter-GPU Kernel-Wise (IGKW) model (paper Section 5.5).
//!
//! Per kernel, the single-GPU regressions have GPU-specific slopes. Guided
//! by O6 (bandwidth efficiency is stable across GPUs), the IGKW model
//! regresses each kernel's slope against the reciprocal of the GPU's
//! theoretical memory bandwidth:
//!
//! ```text
//! slope(kernel, gpu) ~= coef(kernel) / bandwidth(gpu)
//! ```
//!
//! Trained on a few diverse GPUs, it then predicts kernels — and hence whole
//! networks — on GPUs absent from the training set, including hypothetical
//! configurations (Case Study 1).

use crate::classify::{classify_one, group_by_kernel, Driver};
use crate::error::{PredictError, TrainError};
use crate::mapping::KernelMap;
use dnnperf_data::Dataset;
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::{Layer, Network};
use dnnperf_gpu::GpuSpec;
use dnnperf_linreg::{fit_bounded_intercept, fit_through_origin, mean};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a kernel's regression parameters adapt across GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct KernelTransfer {
    driver: Driver,
    /// `slope = coef / bandwidth_bytes + slope_floor`.
    coef: f64,
    /// Bandwidth-independent slope component: the compute-bound residual
    /// that keeps a kernel from speeding up indefinitely with memory
    /// bandwidth (what bends the Case Study 1 curves flat).
    slope_floor: f64,
    /// Intercept, averaged across training GPUs (launch overhead is
    /// host-dominated and roughly GPU-independent).
    intercept: f64,
}

/// Strategy for adapting slopes across GPUs (the `ablation_igkw` experiment
/// compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMetric {
    /// Slope scales with 1 / memory bandwidth (the paper's choice, O6).
    Bandwidth,
    /// Slope scales with 1 / peak FP32 throughput (the rejected
    /// alternative).
    PeakFlops,
}

fn metric_value(metric: TransferMetric, gpu: &GpuSpec) -> f64 {
    match metric {
        TransferMetric::Bandwidth => gpu.bandwidth_bytes(),
        TransferMetric::PeakFlops => gpu.peak_flops(),
    }
}

/// The Inter-GPU Kernel-Wise model.
#[derive(Debug, Clone, PartialEq)]
pub struct IgkwModel {
    map: KernelMap,
    kernels: BTreeMap<Arc<str>, KernelTransfer>,
    metric: TransferMetric,
    train_gpus: Vec<String>,
}

impl IgkwModel {
    /// Trains on the measurements of `gpus` (each must be present in the
    /// dataset) using the paper's bandwidth transfer metric.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if any requested GPU has no
    /// kernel rows, and [`TrainError::NotEnoughSamples`] if no kernel could
    /// be fitted on any GPU.
    pub fn train(dataset: &Dataset, gpus: &[GpuSpec]) -> Result<Self, TrainError> {
        IgkwModel::train_with_metric(dataset, gpus, TransferMetric::Bandwidth)
    }

    /// Trains with an explicit transfer metric (for the ablation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`IgkwModel::train`].
    pub fn train_with_metric(
        dataset: &Dataset,
        gpus: &[GpuSpec],
        metric: TransferMetric,
    ) -> Result<Self, TrainError> {
        IgkwModel::train_with_options(dataset, gpus, metric, true)
    }

    /// Trains with full control over the transfer formulation: the metric
    /// and whether the slope fit may carry a metric-independent floor.
    /// Disabling the floor gives the pure proportionality claim of O6
    /// (`slope ~ 1/metric` through the origin), which is what the
    /// `ablation_igkw` experiment contrasts across metrics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IgkwModel::train`].
    pub fn train_with_options(
        dataset: &Dataset,
        gpus: &[GpuSpec],
        metric: TransferMetric,
        allow_floor: bool,
    ) -> Result<Self, TrainError> {
        // Per GPU: per-kernel classification and fits.
        let mut per_gpu: Vec<(
            f64,
            BTreeMap<Arc<str>, crate::classify::KernelClassification>,
        )> = Vec::new();
        let mut map = KernelMap::default();
        for gpu in gpus {
            let rows: Vec<_> = dataset
                .kernels
                .iter()
                .filter(|r| *r.gpu == gpu.name)
                .cloned()
                .collect();
            if rows.is_empty() {
                return Err(TrainError::NoDataForGpu {
                    gpu: gpu.name.clone(),
                });
            }
            map.merge(KernelMap::from_rows(&rows));
            let grouped = group_by_kernel(&rows);
            let classes = grouped
                .into_iter()
                .map(|(k, rs)| {
                    let c = classify_one(k.clone(), &rs);
                    (k, c)
                })
                .collect();
            per_gpu.push((metric_value(metric, gpu), classes));
        }

        // For each kernel: pick the driver with the best summed R2 across
        // GPUs, then fit slope * metric = coef through the origin.
        let mut all_kernels: BTreeMap<Arc<str>, ()> = BTreeMap::new();
        for (_, classes) in &per_gpu {
            for k in classes.keys() {
                all_kernels.entry(k.clone()).or_insert(());
            }
        }
        let mut kernels = BTreeMap::new();
        for kernel in all_kernels.into_keys() {
            let mut votes = [0.0f64; 3];
            for (_, classes) in &per_gpu {
                if let Some(c) = classes.get(&kernel) {
                    for (vote, r2) in votes.iter_mut().zip(c.r2) {
                        if r2.is_finite() {
                            *vote += r2.max(0.0);
                        }
                    }
                }
            }
            // `(0..3).max_by(total_cmp)` with the last maximum winning
            // ties, written without the range-is-nonempty `expect`.
            let best = (1..3).fold(0, |b, i| {
                if votes[i].total_cmp(&votes[b]).is_ge() {
                    i
                } else {
                    b
                }
            });
            let driver = Driver::all()[best];

            let mut inv_metric = Vec::new();
            let mut slopes = Vec::new();
            let mut intercepts = Vec::new();
            for (m, classes) in &per_gpu {
                if let Some(c) = classes.get(&kernel) {
                    if let Some(f) = c.fits[driver.index()] {
                        inv_metric.push(1.0 / m);
                        slopes.push(f.line.slope);
                        intercepts.push(f.line.intercept);
                    }
                }
            }
            if slopes.is_empty() {
                continue;
            }
            // slope ~= coef * (1/metric) + floor; the bounded intercept keeps
            // the floor within [0, min slope].
            let origin_fit = || match fit_through_origin(&inv_metric, &slopes) {
                Ok(f) => (f.line.slope.max(0.0), 0.0),
                Err(_) => (0.0, mean(&slopes).max(0.0)),
            };
            let (coef, slope_floor) = if allow_floor {
                match fit_bounded_intercept(&inv_metric, &slopes) {
                    Ok(f) if f.line.slope >= 0.0 => (f.line.slope, f.line.intercept),
                    _ => origin_fit(),
                }
            } else {
                origin_fit()
            };
            kernels.insert(
                kernel,
                KernelTransfer {
                    driver,
                    coef,
                    slope_floor,
                    intercept: mean(&intercepts).max(0.0),
                },
            );
        }
        if kernels.is_empty() {
            return Err(TrainError::NotEnoughSamples {
                what: "IGKW kernel transfers".into(),
                got: 0,
            });
        }
        Ok(IgkwModel {
            map,
            kernels,
            metric,
            train_gpus: gpus.iter().map(|g| g.name.clone()).collect(),
        })
    }

    /// The GPUs the model was trained on.
    pub fn train_gpus(&self) -> &[String] {
        &self.train_gpus
    }

    /// Serializes the model to the dnnperf text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        crate::persist::write_header(&mut out, "igkw");
        let metric = match self.metric {
            TransferMetric::Bandwidth => "bandwidth",
            TransferMetric::PeakFlops => "peakflops",
        };
        out.push_str(&format!("metric {metric}\n"));
        out.push_str(&format!("traingpus {}\n", self.train_gpus.len()));
        for g in &self.train_gpus {
            out.push_str(&format!("traingpu {g}\n"));
        }
        self.map.write_text(&mut out);
        let mut kernels: Vec<&Arc<str>> = self.kernels.keys().collect();
        kernels.sort();
        out.push_str(&format!("kernels {}\n", kernels.len()));
        for k in kernels {
            let t = &self.kernels[k];
            out.push_str(&format!(
                "kernel {} {} {} {} {}\n",
                k, t.driver, t.coef, t.slope_floor, t.intercept
            ));
        }
        out
    }

    /// Loads a model serialized with [`IgkwModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{field, Cursor};
        let mut cur = Cursor::new(text);
        crate::persist::read_header(&mut cur, "igkw")?;
        let metric = match cur.keyword("metric")? {
            "bandwidth" => TransferMetric::Bandwidth,
            "peakflops" => TransferMetric::PeakFlops,
            other => return Err(cur.parse_err(format!("unknown metric {other:?}"))),
        };
        let rest = cur.keyword("traingpus")?;
        let n_gpus: usize = rest
            .trim()
            .parse()
            .map_err(|_| cur.parse_err(format!("bad GPU count {rest:?}")))?;
        let mut train_gpus = Vec::with_capacity(n_gpus);
        for _ in 0..n_gpus {
            train_gpus.push(cur.keyword("traingpu")?.to_string());
        }
        let map = KernelMap::read_text(&mut cur)?;
        let rest = cur.keyword("kernels")?;
        let mut parts = rest.split_whitespace();
        let n_kernels: usize = field(&cur, &mut parts, "kernel count")?;
        let mut kernels = BTreeMap::new();
        for _ in 0..n_kernels {
            let rest = cur.keyword("kernel")?;
            let mut parts = rest.split_whitespace();
            let name: Arc<str> = Arc::from(
                parts
                    .next()
                    .ok_or_else(|| cur.parse_err("missing kernel symbol"))?,
            );
            let driver: Driver = parts
                .next()
                .ok_or_else(|| cur.parse_err("missing driver"))?
                .parse()
                .map_err(|e| cur.parse_err(format!("{e}")))?;
            let transfer = KernelTransfer {
                driver,
                coef: field(&cur, &mut parts, "coef")?,
                slope_floor: field(&cur, &mut parts, "slope floor")?,
                intercept: field(&cur, &mut parts, "intercept")?,
            };
            kernels.insert(name, transfer);
        }
        Ok(IgkwModel {
            map,
            kernels,
            metric,
            train_gpus,
        })
    }

    /// Number of kernels with a transfer model.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Predicts one layer's time on an arbitrary (possibly hypothetical)
    /// GPU.
    pub fn predict_layer(&self, layer: &Layer, batch: usize, gpu: &GpuSpec) -> f64 {
        let Some(kernels) = self.map.kernels_for(layer) else {
            return 0.0;
        };
        let n = batch as f64;
        let drivers = [
            layer.input.elems() as f64 * n,
            layer_flops(layer) as f64 * n,
            layer.output.elems() as f64 * n,
        ];
        let m = metric_value(self.metric, gpu);
        kernels
            .iter()
            .filter_map(|k| self.kernels.get(k))
            .map(|t| {
                let slope = t.coef / m + t.slope_floor;
                (slope * drivers[t.driver.index()] + t.intercept).max(0.0)
            })
            .sum()
    }

    /// Predicts a network's end-to-end time on an arbitrary GPU.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] for a zero batch size and
    /// [`PredictError::EmptyNetwork`] for a network without layers.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use dnnperf_core::IgkwModel;
    /// use dnnperf_data::collect::{collect, TRAIN_BATCH};
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let nets = dnnperf_dnn::zoo::cnn_zoo();
    /// let train_gpus = [
    ///     GpuSpec::by_name("A100").unwrap(),
    ///     GpuSpec::by_name("A40").unwrap(),
    ///     GpuSpec::by_name("GTX 1080 Ti").unwrap(),
    /// ];
    /// let ds = collect(&nets, &train_gpus, &[TRAIN_BATCH]);
    /// let model = IgkwModel::train(&ds, &train_gpus)?;
    /// // Predict a GPU never measured:
    /// let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    /// let t = model.predict_network_on(&nets[0], 512, &titan)?;
    /// assert!(t > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn predict_network_on(
        &self,
        net: &Network,
        batch: usize,
        gpu: &GpuSpec,
    ) -> Result<f64, PredictError> {
        crate::error::validate_request(net, batch)?;
        Ok(net
            .layers()
            .iter()
            .map(|l| self.predict_layer(l, batch, gpu))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::Profiler;
    use dnnperf_linreg::mean_abs_rel_error;

    fn nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::resnet::resnet101(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg16(),
            dnnperf_dnn::zoo::densenet::densenet121(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        ]
    }

    fn train_gpus() -> Vec<GpuSpec> {
        ["A100", "A40", "GTX 1080 Ti"]
            .iter()
            .map(|n| GpuSpec::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn predicts_unseen_gpu_reasonably() {
        let ds = collect(&nets(), &train_gpus(), &[64]);
        let model = IgkwModel::train(&ds, &train_gpus()).unwrap();
        let titan = GpuSpec::by_name("TITAN RTX").unwrap();
        let prof = Profiler::new(titan.clone());
        let mut preds = Vec::new();
        let mut meas = Vec::new();
        for net in nets() {
            preds.push(model.predict_network_on(&net, 64, &titan).unwrap());
            meas.push(prof.profile(&net, 64).unwrap().e2e_seconds);
        }
        let err = mean_abs_rel_error(&preds, &meas);
        assert!(err < 0.35, "IGKW error on unseen GPU: {err}");
    }

    #[test]
    fn bandwidth_metric_beats_flops_metric() {
        // The paper's O6: bandwidth is the right transfer metric.
        let ds = collect(&nets(), &train_gpus(), &[64]);
        let bw =
            IgkwModel::train_with_metric(&ds, &train_gpus(), TransferMetric::Bandwidth).unwrap();
        let fl =
            IgkwModel::train_with_metric(&ds, &train_gpus(), TransferMetric::PeakFlops).unwrap();
        let titan = GpuSpec::by_name("TITAN RTX").unwrap();
        let prof = Profiler::new(titan.clone());
        let (mut bw_p, mut fl_p, mut meas) = (Vec::new(), Vec::new(), Vec::new());
        for net in nets() {
            bw_p.push(bw.predict_network_on(&net, 64, &titan).unwrap());
            fl_p.push(fl.predict_network_on(&net, 64, &titan).unwrap());
            meas.push(prof.profile(&net, 64).unwrap().e2e_seconds);
        }
        let e_bw = mean_abs_rel_error(&bw_p, &meas);
        let e_fl = mean_abs_rel_error(&fl_p, &meas);
        assert!(e_bw < e_fl, "bandwidth {e_bw} vs flops {e_fl}");
    }

    #[test]
    fn higher_bandwidth_predicts_faster_execution() {
        // The mechanism behind Case Study 1's DSE curves.
        let ds = collect(&nets(), &train_gpus(), &[64]);
        let model = IgkwModel::train(&ds, &train_gpus()).unwrap();
        let titan = GpuSpec::by_name("TITAN RTX").unwrap();
        let net = dnnperf_dnn::zoo::resnet::resnet50();
        let slow = model
            .predict_network_on(&net, 64, &titan.with_bandwidth(200.0))
            .unwrap();
        let fast = model
            .predict_network_on(&net, 64, &titan.with_bandwidth(1400.0))
            .unwrap();
        assert!(slow > 2.0 * fast, "slow {slow}, fast {fast}");
    }

    #[test]
    fn missing_gpu_data_is_an_error() {
        let ds = collect(&nets()[..2], &train_gpus()[..1], &[32]);
        let err = IgkwModel::train(&ds, &train_gpus()).unwrap_err();
        assert!(matches!(err, TrainError::NoDataForGpu { gpu } if gpu == "A40"));
    }

    #[test]
    fn single_training_gpu_still_transfers() {
        // With one GPU the through-origin fit has a single point; the model
        // degrades gracefully rather than failing.
        let one = vec![GpuSpec::by_name("A100").unwrap()];
        let ds = collect(&nets(), &one, &[64]);
        let model = IgkwModel::train(&ds, &one).unwrap();
        let v100 = GpuSpec::by_name("V100").unwrap();
        let t = model
            .predict_network_on(&dnnperf_dnn::zoo::resnet::resnet50(), 64, &v100)
            .unwrap();
        assert!(t > 0.0);
    }
}
