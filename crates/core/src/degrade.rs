//! Graceful degradation: predict every network, telling the caller how.
//!
//! The paper's KW model is the most accurate predictor but also the most
//! demanding: it needs a layer-to-kernel mapping entry and a cluster
//! regression for every kernel a layer launches. Outside its training
//! distribution — a layer type never profiled, a model file missing a
//! cluster assignment — `KwModel::predict_network` silently prices the
//! uncovered work at zero seconds, an undershoot with no warning.
//!
//! [`Workflow::predict_graceful`] replaces the silent zero with a
//! *prediction ladder*: each layer is priced by the most precise model that
//! actually covers it, and every fallback is recorded as a [`Degradation`]
//! note so callers can decide how much to trust the number.
//!
//! The ladder, per layer:
//!
//! 1. **KW, full coverage** — every mapped kernel has a cluster
//!    regression: use the kernel-wise sum (no note).
//! 2. **LW layer-type fit** — the layer is unmapped (or some kernels lack
//!    cluster models) but the LW model trained a dedicated regression for
//!    its type: use it, noting [`Degradation::UnmappedLayer`] or
//!    [`Degradation::UnclusteredKernels`].
//! 3. **E2E slope** — nothing layer-specific is known: price the layer's
//!    FLOPs at the fitted end-to-end seconds-per-FLOP, noting
//!    [`Degradation::UnknownLayerType`].
//!
//! Zero-cost fallbacks (a `flatten` layer priced at 0 by the LW fit, same
//! as KW's "launches no kernels") are not reported: a note means the
//! returned seconds actually depend on a coarser model.

use crate::error::PredictError;
use crate::kernelwise::LayerCoverage;
use crate::workflow::Workflow;
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::Network;
use std::fmt;
use std::sync::Arc;

/// One fallback taken while predicting a network: which layer, why, and
/// how many of the predicted seconds came from the coarser model.
#[derive(Debug, Clone, PartialEq)]
pub enum Degradation {
    /// The KW mapping table has no entry for this layer; the LW layer-type
    /// regression was used instead.
    UnmappedLayer {
        /// Index of the layer in the network.
        layer_index: usize,
        /// The layer type tag.
        tag: String,
        /// Seconds contributed by the LW fallback.
        seconds: f64,
    },
    /// The layer is mapped but some of its kernels have no cluster
    /// regression; the LW layer-type regression priced the whole layer.
    UnclusteredKernels {
        /// Index of the layer in the network.
        layer_index: usize,
        /// The layer type tag.
        tag: String,
        /// The kernel symbols that had no cluster model.
        kernels: Vec<Arc<str>>,
        /// Seconds contributed by the fallback.
        seconds: f64,
    },
    /// Neither the KW mapping nor the LW model knows this layer type; the
    /// layer's FLOPs were priced at the E2E seconds-per-FLOP slope.
    UnknownLayerType {
        /// Index of the layer in the network.
        layer_index: usize,
        /// The layer type tag.
        tag: String,
        /// Seconds contributed by the E2E-slope fallback.
        seconds: f64,
    },
}

impl Degradation {
    /// Index of the layer the note is about.
    pub fn layer_index(&self) -> usize {
        match self {
            Degradation::UnmappedLayer { layer_index, .. }
            | Degradation::UnclusteredKernels { layer_index, .. }
            | Degradation::UnknownLayerType { layer_index, .. } => *layer_index,
        }
    }

    /// Seconds of the prediction that came from the fallback model.
    pub fn seconds(&self) -> f64 {
        match self {
            Degradation::UnmappedLayer { seconds, .. }
            | Degradation::UnclusteredKernels { seconds, .. }
            | Degradation::UnknownLayerType { seconds, .. } => *seconds,
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::UnmappedLayer {
                layer_index,
                tag,
                seconds,
            } => write!(
                f,
                "layer {layer_index} ({tag}): no kernel mapping, \
                 LW layer-type fit contributed {seconds:.3e}s"
            ),
            Degradation::UnclusteredKernels {
                layer_index,
                tag,
                kernels,
                seconds,
            } => write!(
                f,
                "layer {layer_index} ({tag}): {} kernel(s) without cluster \
                 models, LW layer-type fit contributed {seconds:.3e}s",
                kernels.len()
            ),
            Degradation::UnknownLayerType {
                layer_index,
                tag,
                seconds,
            } => write!(
                f,
                "layer {layer_index} ({tag}): layer type unknown to every \
                 model, E2E slope contributed {seconds:.3e}s"
            ),
        }
    }
}

/// A prediction that always succeeds on a structurally valid request, with
/// an account of every fallback taken to produce it.
#[derive(Debug, Clone, PartialEq)]
pub struct GracefulPrediction {
    /// The predicted end-to-end time in seconds.
    pub seconds: f64,
    /// One note per layer that was not fully covered by the KW model.
    pub notes: Vec<Degradation>,
}

impl GracefulPrediction {
    /// Whether any fallback was taken.
    pub fn is_degraded(&self) -> bool {
        !self.notes.is_empty()
    }

    /// Seconds of the prediction contributed by fallback models.
    pub fn degraded_seconds(&self) -> f64 {
        self.notes.iter().map(Degradation::seconds).sum()
    }
}

impl Workflow {
    /// Predicts `net`'s end-to-end time with the graceful-degradation
    /// ladder (see the module docs): KW where it has coverage, LW per
    /// layer type where it does not, the E2E FLOPs slope as the last rung.
    /// Fallbacks are reported in [`GracefulPrediction::notes`] instead of
    /// silently under-predicting or failing.
    ///
    /// On networks the KW model fully covers this returns exactly
    /// `kw.predict_network(net, batch)` with no notes.
    ///
    /// The ladder is evaluated through the suite's compiled-plan cache
    /// (see [`crate::plan`]): the layer resolution is decided once at
    /// compile time and repeated predictions replay it as a flat sweep.
    /// The result is bit-identical to
    /// [`Workflow::predict_graceful_uncompiled`], which keeps the
    /// reference recompute-every-call implementation.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] or [`PredictError::EmptyNetwork`]
    /// for structurally invalid requests — the ladder degrades models, not
    /// input validation.
    pub fn predict_graceful(
        &self,
        net: &Network,
        batch: usize,
    ) -> Result<GracefulPrediction, PredictError> {
        Ok(self.plan(net, batch)?.predict_graceful())
    }

    /// The uncompiled reference implementation of the prediction ladder:
    /// walks the trained models per call instead of a compiled plan.
    /// [`Workflow::predict_graceful`] is bit-identical to this (the
    /// conformance tests hold the two paths together); it exists so the
    /// ladder's semantics stay auditable in one place and the plan
    /// compiler has an oracle.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] or [`PredictError::EmptyNetwork`]
    /// for structurally invalid requests.
    pub fn predict_graceful_uncompiled(
        &self,
        net: &Network,
        batch: usize,
    ) -> Result<GracefulPrediction, PredictError> {
        crate::error::validate_request(net, batch)?;
        let mut total = 0.0;
        let mut notes = Vec::new();
        for (li, layer) in net.layers().iter().enumerate() {
            let tag = layer.type_tag();
            let flops = layer_flops(layer) as f64 * batch as f64;
            match self.kw.predict_layer_coverage(layer, batch) {
                LayerCoverage::Full(s) => total += s,
                LayerCoverage::Partial { seconds, missing } => {
                    // Rung 2: a dedicated LW fit re-prices the whole layer;
                    // otherwise keep the priced subtotal, floored by the
                    // E2E slope so missing kernels don't read as free.
                    let s = match self.lw.fit_for(tag) {
                        Some(fit) => fit.predict(flops).max(0.0),
                        None => seconds.max(self.e2e.slope_seconds_per_flop() * flops),
                    };
                    total += s;
                    notes.push(Degradation::UnclusteredKernels {
                        layer_index: li,
                        tag: tag.to_string(),
                        kernels: missing,
                        seconds: s,
                    });
                }
                LayerCoverage::Unmapped => match self.lw.fit_for(tag) {
                    Some(fit) => {
                        let s = fit.predict(flops).max(0.0);
                        total += s;
                        if s > 0.0 {
                            notes.push(Degradation::UnmappedLayer {
                                layer_index: li,
                                tag: tag.to_string(),
                                seconds: s,
                            });
                        }
                    }
                    None => {
                        let s = (self.e2e.slope_seconds_per_flop() * flops).max(0.0);
                        total += s;
                        if s > 0.0 {
                            notes.push(Degradation::UnknownLayerType {
                                layer_index: li,
                                tag: tag.to_string(),
                                seconds: s,
                            });
                        }
                    }
                },
            }
        }
        Ok(GracefulPrediction {
            seconds: total,
            notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Predictor;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::{GpuSpec, Profiler};

    fn cnn_mix() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg16(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        ]
    }

    fn suite(nets: &[Network]) -> Workflow {
        let ds = collect(nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        Workflow::train(&ds, "A100").unwrap()
    }

    #[test]
    fn full_coverage_matches_plain_kw_with_no_notes() {
        let nets = cnn_mix();
        let suite = suite(&nets);
        for net in &nets {
            let g = suite.predict_graceful(net, 32).unwrap();
            assert!(
                !g.is_degraded(),
                "{}: unexpected notes {:?}",
                net.name(),
                g.notes
            );
            assert_eq!(g.seconds, suite.kw.predict_network(net, 32).unwrap());
            assert_eq!(g.degraded_seconds(), 0.0);
        }
    }

    #[test]
    fn out_of_family_layers_fall_back_with_notes() {
        // Train on VGG only: no bn, no add. ResNet prediction must
        // degrade (noted), not silently undercount those layers.
        let train = vec![
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ];
        let suite = suite(&train);
        let probe = dnnperf_dnn::zoo::resnet::resnet18();
        let g = suite.predict_graceful(&probe, 32).unwrap();
        assert!(g.is_degraded());
        assert!(g.degraded_seconds() > 0.0);
        let tags: Vec<&str> = g
            .notes
            .iter()
            .map(|n| match n {
                Degradation::UnmappedLayer { tag, .. }
                | Degradation::UnclusteredKernels { tag, .. }
                | Degradation::UnknownLayerType { tag, .. } => tag.as_str(),
            })
            .collect();
        assert!(tags.contains(&"bn"), "expected bn fallback, got {tags:?}");
        // Plain KW prices every uncovered layer at zero; the ladder must
        // add something for them and still land in a sane range.
        let kw = suite.kw.predict_network(&probe, 32).unwrap();
        let measured = Profiler::new(GpuSpec::by_name("A100").unwrap())
            .profile(&probe, 32)
            .unwrap()
            .e2e_seconds;
        assert!(g.seconds > kw);
        let err = (g.seconds - measured).abs() / measured;
        assert!(
            err < 0.5,
            "graceful {} vs kw {} vs measured {measured} (err {err})",
            g.seconds,
            kw
        );
    }

    #[test]
    fn flatten_layers_stay_free_and_unnoted() {
        // VGG nets contain a flatten layer: KW maps nothing for it, the LW
        // fit prices it at ~0 — that is full fidelity, not degradation.
        let train = vec![
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ];
        let suite = suite(&train);
        let g = suite.predict_graceful(&train[0], 32).unwrap();
        assert!(!g.is_degraded(), "notes: {:?}", g.notes);
    }

    #[test]
    fn compiled_ladder_matches_uncompiled_reference() {
        // Train on VGG only so a ResNet probe hits every fallback rung,
        // then hold the plan path and the reference path together.
        let train = vec![
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::vgg::vgg16(),
        ];
        let suite = suite(&train);
        for net in [
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::vgg::vgg16(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        ] {
            for batch in [1usize, 8, 32] {
                let fast = suite.predict_graceful(&net, batch).unwrap();
                let slow = suite.predict_graceful_uncompiled(&net, batch).unwrap();
                assert_eq!(
                    fast.seconds.to_bits(),
                    slow.seconds.to_bits(),
                    "{} @ {batch}",
                    net.name()
                );
                assert_eq!(fast.notes, slow.notes);
            }
        }
    }

    #[test]
    fn invalid_requests_are_still_typed_errors() {
        let suite = suite(&cnn_mix());
        let net = dnnperf_dnn::zoo::resnet::resnet18();
        assert_eq!(
            suite.predict_graceful(&net, 0),
            Err(PredictError::ZeroBatch)
        );
        let empty = Network::from_parts(
            "Empty",
            dnnperf_dnn::Family::Custom,
            dnnperf_dnn::TensorShape::chw(3, 8, 8),
            vec![],
        );
        assert!(matches!(
            suite.predict_graceful(&empty, 4),
            Err(PredictError::EmptyNetwork { .. })
        ));
    }

    #[test]
    fn unclustered_kernels_are_noted_via_model_surgery() {
        // Persist a KW model, drop one cluster assignment, reload: the
        // affected layers now have kernels without cluster models, which
        // the ladder must re-price and note rather than skip.
        let nets = cnn_mix();
        let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let mut suite = Workflow::train(&ds, "A100").unwrap();
        let text = suite.kw.to_text();
        let victim = text
            .lines()
            .find(|l| l.starts_with("assign "))
            .expect("kw text has assignments")
            .to_string();
        let n_assign = text.lines().filter(|l| l.starts_with("assign ")).count();
        let pruned: String = text
            .lines()
            .filter(|l| *l != victim.as_str())
            .map(|l| {
                if let Some(rest) = l.strip_prefix("clustering ") {
                    let mut parts = rest.split_whitespace();
                    let models: usize = parts.next().unwrap().parse().unwrap();
                    format!("clustering {} {}\n", models, n_assign - 1)
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        suite.kw = crate::KwModel::from_text(&pruned).unwrap();

        let degraded: Vec<_> = nets
            .iter()
            .filter_map(|n| {
                let g = suite.predict_graceful(n, 32).unwrap();
                g.is_degraded().then_some(g)
            })
            .collect();
        assert!(
            !degraded.is_empty(),
            "dropping a cluster assignment must degrade some prediction"
        );
        assert!(degraded.iter().any(|g| g
            .notes
            .iter()
            .any(|n| matches!(n, Degradation::UnclusteredKernels { .. }))));
        // Every degraded prediction still returns usable, positive time.
        for g in &degraded {
            assert!(g.seconds > 0.0 && g.seconds.is_finite());
        }
    }
}
