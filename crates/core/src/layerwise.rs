//! The Layer-Wise (LW) model: one regression per layer type of layer time
//! on layer FLOPs; the predicted network time is the sum over layers
//! (paper Section 5.3, observation O4).

use crate::error::{PredictError, TrainError};
use crate::model::Predictor;
use dnnperf_data::Dataset;
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::Network;
use dnnperf_linreg::{fit_bounded_intercept_with, mean, Estimator, Fit, Line};
use std::collections::BTreeMap;

/// Per-layer-type regression of time on FLOPs.
///
/// Layer types whose FLOPs are constant or zero across the training set
/// (copies, concatenations) fall back to a constant model — the mean of
/// their measured times.
#[derive(Debug, Clone, PartialEq)]
pub struct LwModel {
    gpu: String,
    per_type: BTreeMap<String, Fit>,
    /// Fallback over all layers, used for layer types absent from training.
    fallback: Fit,
}

fn constant_fit(ys: &[f64]) -> Fit {
    Fit {
        line: Line::new(0.0, mean(ys)),
        r2: 0.0,
        n: ys.len(),
    }
}

fn fit_or_constant(estimator: Estimator, xs: &[f64], ys: &[f64]) -> Fit {
    match fit_bounded_intercept_with(estimator, xs, ys) {
        Ok(f) if f.line.slope.is_finite() => f,
        _ => constant_fit(ys),
    }
}

impl LwModel {
    /// Trains per-layer-type regressions on the layer rows of `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoDataForGpu`] if the dataset has no layer rows
    /// for `gpu`.
    pub fn train(dataset: &Dataset, gpu: &str) -> Result<Self, TrainError> {
        LwModel::train_with(dataset, gpu, Estimator::Ols)
    }

    /// Trains with an explicit regression estimator: [`Estimator::Ols`] is
    /// the paper's least-squares fit; [`Estimator::Huber`] bounds the
    /// influence of corrupted measurements that survived collection
    /// hygiene (robustness ablation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LwModel::train`].
    pub fn train_with(
        dataset: &Dataset,
        gpu: &str,
        estimator: Estimator,
    ) -> Result<Self, TrainError> {
        let rows: Vec<_> = dataset.layers.iter().filter(|r| &*r.gpu == gpu).collect();
        if rows.is_empty() {
            return Err(TrainError::NoDataForGpu {
                gpu: gpu.to_string(),
            });
        }
        let mut grouped: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for r in &rows {
            let entry = grouped.entry(r.layer_type.to_string()).or_default();
            entry.0.push(r.flops as f64);
            entry.1.push(r.seconds);
        }
        let per_type = grouped
            .into_iter()
            .map(|(tag, (xs, ys))| (tag, fit_or_constant(estimator, &xs, &ys)))
            .collect();
        let xs: Vec<f64> = rows.iter().map(|r| r.flops as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.seconds).collect();
        Ok(LwModel {
            gpu: gpu.to_string(),
            per_type,
            fallback: fit_or_constant(estimator, &xs, &ys),
        })
    }

    /// The regression used for a layer type, if it was seen in training.
    pub fn fit_for(&self, tag: &str) -> Option<&Fit> {
        self.per_type.get(tag)
    }

    /// Layer types covered by dedicated regressions.
    pub fn known_types(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.per_type.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Predicts one layer's time from its batch FLOPs and type tag.
    pub fn predict_layer(&self, tag: &str, flops: f64) -> f64 {
        let f = self.per_type.get(tag).unwrap_or(&self.fallback);
        f.predict(flops).max(0.0)
    }

    /// Serializes the model to the dnnperf text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        crate::persist::write_header(&mut out, "lw");
        out.push_str(&format!("gpu {}\n", self.gpu));
        out.push_str("fallback ");
        crate::persist::write_fit(&mut out, &self.fallback);
        out.push('\n');
        let mut tags: Vec<&String> = self.per_type.keys().collect();
        tags.sort();
        out.push_str(&format!("types {}\n", tags.len()));
        for tag in tags {
            out.push_str(&format!("type {tag} "));
            crate::persist::write_fit(&mut out, &self.per_type[tag]);
            out.push('\n');
        }
        out
    }

    /// Loads a model serialized with [`LwModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{field, read_fit, Cursor};
        let mut cur = Cursor::new(text);
        crate::persist::read_header(&mut cur, "lw")?;
        let gpu = cur.keyword("gpu")?.to_string();
        let rest = cur.keyword("fallback")?;
        let mut parts = rest.split_whitespace();
        let fallback = read_fit(&cur, &mut parts)?;
        let rest = cur.keyword("types")?;
        let mut parts = rest.split_whitespace();
        let count: usize = field(&cur, &mut parts, "type count")?;
        let mut per_type = BTreeMap::new();
        for _ in 0..count {
            let rest = cur.keyword("type")?;
            let mut parts = rest.split_whitespace();
            let tag = parts
                .next()
                .ok_or_else(|| cur.parse_err("missing layer type tag"))?
                .to_string();
            let fit = read_fit(&cur, &mut parts)?;
            per_type.insert(tag, fit);
        }
        Ok(LwModel {
            gpu,
            per_type,
            fallback,
        })
    }
}

impl Predictor for LwModel {
    fn name(&self) -> &str {
        "LW"
    }

    fn gpu(&self) -> &str {
        &self.gpu
    }

    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        crate::error::validate_request(net, batch)?;
        let total = net
            .layers()
            .iter()
            .map(|l| self.predict_layer(l.type_tag(), layer_flops(l) as f64 * batch as f64))
            .sum();
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::{GpuSpec, Profiler};

    fn nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::densenet::densenet121(),
            dnnperf_dnn::zoo::vgg::vgg13(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        ]
    }

    #[test]
    fn covers_major_layer_types() {
        let ds = collect(&nets(), &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let m = LwModel::train(&ds, "A100").unwrap();
        for tag in ["conv", "bn", "act", "pool", "fc", "add"] {
            assert!(m.fit_for(tag).is_some(), "missing regression for {tag}");
        }
    }

    #[test]
    fn zero_flop_types_get_constant_models() {
        let ds = collect(&nets(), &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let m = LwModel::train(&ds, "A100").unwrap();
        // Concat layers have zero FLOPs; the model must still price them.
        let f = m.fit_for("concat").unwrap();
        assert_eq!(f.line.slope, 0.0);
        assert!(f.line.intercept > 0.0);
    }

    #[test]
    fn lw_beats_nothing_and_is_sane_on_held_out_net() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect(&nets(), std::slice::from_ref(&gpu), &[64]);
        let m = LwModel::train(&ds, "A100").unwrap();
        let held_out = dnnperf_dnn::zoo::resnet::resnet101();
        let measured = Profiler::new(gpu)
            .profile(&held_out, 64)
            .unwrap()
            .e2e_seconds;
        let predicted = m.predict_network(&held_out, 64).unwrap();
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.5, "LW error {err}");
    }

    #[test]
    fn unknown_type_uses_fallback() {
        let ds = collect(
            &[dnnperf_dnn::zoo::vgg::vgg11()],
            &[GpuSpec::by_name("A100").unwrap()],
            &[16],
        );
        let m = LwModel::train(&ds, "A100").unwrap();
        // VGG training data has no "ln" layers; prediction must still work.
        let t = m.predict_layer("ln", 1e6);
        assert!(t >= 0.0);
    }

    #[test]
    fn no_data_is_an_error() {
        let ds = Dataset::new();
        assert!(matches!(
            LwModel::train(&ds, "A100"),
            Err(TrainError::NoDataForGpu { .. })
        ));
    }
}
