//! The layer-to-kernel mapping table (the left-most block of the paper's
//! Figure 10).
//!
//! "Since the cuDNN library decides the kernels to use according to the
//! problem sizes, we create a look-up table that maps from the layer type
//! and input/output size to the kernel list. We provide the look-up table
//! for all the kernels we encounter in our dataset."
//!
//! Keys are *per-sample* (batch-normalised) layer signatures so that a table
//! built at the training batch size applies to any batch size. Lookups fall
//! back to the nearest recorded signature of the same layer type (log-space
//! distance) for shapes unseen in training.

use dnnperf_data::KernelRow;
use dnnperf_dnn::flops::layer_flops;
use dnnperf_dnn::Layer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A batch-invariant description of a layer instance: its type tag plus
/// per-sample input size, FLOPs and output size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerSignature {
    /// Layer type tag (`"conv"`, `"bn"`, ...).
    pub tag: Arc<str>,
    /// Per-sample input element count.
    pub in_per: u64,
    /// Per-sample theoretical FLOPs.
    pub flops_per: u64,
    /// Per-sample output element count.
    pub out_per: u64,
}

impl LayerSignature {
    /// Computes the signature of a layer from its static structure.
    pub fn of_layer(layer: &Layer) -> Self {
        LayerSignature {
            tag: Arc::from(layer.type_tag()),
            in_per: layer.input.elems() as u64,
            flops_per: layer_flops(layer),
            out_per: layer.output.elems() as u64,
        }
    }

    /// Recovers the signature from a measured kernel row (dividing the
    /// batch-level driver variables by the batch size).
    pub fn of_row(row: &KernelRow) -> Self {
        let n = row.batch.max(1) as u64;
        LayerSignature {
            tag: row.layer_type.clone(),
            in_per: row.in_elems / n,
            flops_per: row.flops / n,
            out_per: row.out_elems / n,
        }
    }

    /// Squared log-space distance to another signature (for nearest-match
    /// fallback). Only meaningful between signatures of the same tag.
    fn distance(&self, other: &LayerSignature) -> f64 {
        fn d(a: u64, b: u64) -> f64 {
            let la = ((a + 1) as f64).ln();
            let lb = ((b + 1) as f64).ln();
            (la - lb) * (la - lb)
        }
        d(self.in_per, other.in_per)
            + d(self.flops_per, other.flops_per)
            + d(self.out_per, other.out_per)
    }
}

/// The learned mapping from layer signatures to kernel name lists.
#[derive(Debug, Clone, Default)]
pub struct KernelMap {
    exact: BTreeMap<LayerSignature, Vec<Arc<str>>>,
    by_tag: BTreeMap<Arc<str>, Vec<LayerSignature>>,
}

impl PartialEq for KernelMap {
    fn eq(&self, other: &Self) -> bool {
        // `by_tag` is a derived index whose per-tag ordering depends on
        // insertion order; semantic equality is the exact table alone.
        self.exact == other.exact
    }
}

impl KernelMap {
    /// Builds the table from measured kernel rows. Rows of one layer
    /// execution must be contiguous (as produced by collection).
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_core::KernelMap;
    /// use dnnperf_data::collect::collect;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// let nets = [dnnperf_dnn::zoo::resnet::resnet18()];
    /// let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[16]);
    /// let map = KernelMap::from_rows(&ds.kernels);
    /// assert!(map.len() > 10);
    /// ```
    pub fn from_rows(rows: &[KernelRow]) -> Self {
        let refs: Vec<&KernelRow> = rows.iter().collect();
        KernelMap::from_row_refs(&refs)
    }

    /// Builds the table from borrowed kernel rows — the allocation-free
    /// path [`crate::KwModel`] training uses after filtering a dataset by
    /// GPU, so no row is ever cloned just to be scanned. Semantics are
    /// identical to [`KernelMap::from_rows`].
    pub fn from_row_refs(rows: &[&KernelRow]) -> Self {
        let mut map = KernelMap::default();
        let mut i = 0;
        while i < rows.len() {
            let Some(r) = rows.get(i) else { break };
            let mut kernels = vec![r.kernel.clone()];
            let mut j = i + 1;
            while let Some(next) = rows.get(j) {
                if !same_layer_execution(r, next) {
                    break;
                }
                kernels.push(next.kernel.clone());
                j += 1;
            }
            let sig = LayerSignature::of_row(r);
            map.insert(sig, kernels);
            i = j;
        }
        map
    }

    /// Inserts one signature -> kernel-list entry (first write wins).
    pub fn insert(&mut self, sig: LayerSignature, kernels: Vec<Arc<str>>) {
        if !self.exact.contains_key(&sig) {
            self.by_tag
                .entry(sig.tag.clone())
                .or_default()
                .push(sig.clone());
            self.exact.insert(sig, kernels);
        }
    }

    /// Merges another table into this one (first write wins per signature).
    pub fn merge(&mut self, other: KernelMap) {
        for (sig, kernels) in other.exact {
            self.insert(sig, kernels);
        }
    }

    /// Number of distinct signatures recorded.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Iterates over all recorded (signature, kernel list) entries
    /// (unordered).
    pub fn entries(&self) -> impl Iterator<Item = (&LayerSignature, &[Arc<str>])> {
        self.exact
            .iter()
            .map(|(sig, kernels)| (sig, kernels.as_slice()))
    }

    /// Looks up the kernel list for a layer: exact signature match first,
    /// then the nearest recorded signature of the same layer type.
    ///
    /// Returns `None` if no layer of this type was ever recorded — which,
    /// for types like `flatten` that launch no kernels, is the correct
    /// "free" answer.
    pub fn kernels_for(&self, layer: &Layer) -> Option<&[Arc<str>]> {
        let sig = LayerSignature::of_layer(layer);
        if let Some(k) = self.exact.get(&sig) {
            return Some(k);
        }
        let candidates = self.by_tag.get(&sig.tag)?;
        let nearest = candidates
            .iter()
            .min_by(|a, b| sig.distance(a).total_cmp(&sig.distance(b)))?;
        self.exact.get(nearest).map(Vec::as_slice)
    }
}

impl KernelMap {
    /// Serializes the table (persistence; deterministic order).
    pub(crate) fn write_text(&self, out: &mut String) {
        let mut entries: Vec<_> = self.exact.iter().collect();
        entries.sort_by(|a, b| {
            (&a.0.tag, a.0.in_per, a.0.flops_per, a.0.out_per).cmp(&(
                &b.0.tag,
                b.0.in_per,
                b.0.flops_per,
                b.0.out_per,
            ))
        });
        out.push_str(&format!("map {}\n", entries.len()));
        for (sig, kernels) in entries {
            out.push_str(&format!(
                "sig {} {} {} {} {}",
                sig.tag,
                sig.in_per,
                sig.flops_per,
                sig.out_per,
                kernels.len()
            ));
            for k in kernels {
                out.push(' ');
                out.push_str(k);
            }
            out.push('\n');
        }
    }

    /// Deserializes a table written by [`KernelMap::write_text`].
    pub(crate) fn read_text(
        cur: &mut crate::persist::Cursor<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::field;
        let count: usize = {
            let rest = cur.keyword("map")?;
            rest.trim()
                .parse()
                .map_err(|_| cur.parse_err(format!("bad map count {rest:?}")))?
        };
        let mut map = KernelMap::default();
        for _ in 0..count {
            let rest = cur.keyword("sig")?;
            let mut parts = rest.split_whitespace();
            let tag = parts
                .next()
                .ok_or_else(|| cur.parse_err("missing signature tag"))?;
            let sig = LayerSignature {
                tag: Arc::from(tag),
                in_per: field(cur, &mut parts, "in_per")?,
                flops_per: field(cur, &mut parts, "flops_per")?,
                out_per: field(cur, &mut parts, "out_per")?,
            };
            let k: usize = field(cur, &mut parts, "kernel count")?;
            let kernels: Vec<Arc<str>> = parts.map(Arc::from).collect();
            if kernels.len() != k {
                return Err(cur.parse_err(format!("expected {k} kernels, found {}", kernels.len())));
            }
            map.insert(sig, kernels);
        }
        Ok(map)
    }
}

fn same_layer_execution(a: &KernelRow, b: &KernelRow) -> bool {
    a.layer_index == b.layer_index && a.network == b.network && a.gpu == b.gpu && a.batch == b.batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_dnn::zoo;
    use dnnperf_gpu::GpuSpec;

    fn a100_map(nets: &[dnnperf_dnn::Network], batch: usize) -> KernelMap {
        let ds = collect(nets, &[GpuSpec::by_name("A100").unwrap()], &[batch]);
        KernelMap::from_rows(&ds.kernels)
    }

    #[test]
    fn exact_lookup_matches_dispatch() {
        let net = zoo::resnet::resnet18();
        let map = a100_map(std::slice::from_ref(&net), 32);
        for layer in net.layers() {
            let expected = dnnperf_gpu::dispatch::dispatch_layer(layer, 32);
            match map.kernels_for(layer) {
                Some(got) => {
                    let got: Vec<&str> = got.iter().map(|k| &**k).collect();
                    let want: Vec<&str> = expected.iter().map(|k| k.name.as_str()).collect();
                    assert_eq!(got, want, "layer {layer:?}");
                }
                None => assert!(expected.is_empty(), "missing mapping for {layer:?}"),
            }
        }
    }

    #[test]
    fn signatures_are_batch_invariant() {
        let net = zoo::resnet::resnet18();
        let map16 = a100_map(std::slice::from_ref(&net), 16);
        let map64 = a100_map(std::slice::from_ref(&net), 64);
        let keys = |m: &KernelMap| {
            let mut v: Vec<LayerSignature> = m.exact.keys().cloned().collect();
            // Cache the sort key: the comparator version allocated two
            // format! strings per comparison (O(n log n) allocations).
            v.sort_by_cached_key(|s| format!("{s:?}"));
            v
        };
        assert_eq!(keys(&map16), keys(&map64));
        // And structural signatures hit the table exactly.
        for layer in net.layers() {
            let sig = LayerSignature::of_layer(layer);
            let in_map = map16.exact.contains_key(&sig);
            let has_kernels = !dnnperf_gpu::dispatch::dispatch_layer(layer, 1).is_empty();
            assert_eq!(in_map, has_kernels, "{layer:?}");
        }
    }

    #[test]
    fn nearest_fallback_finds_same_type() {
        let map = a100_map(&[zoo::resnet::resnet18()], 16);
        // A conv shape not present in ResNet-18.
        let odd = dnnperf_dnn::Layer::apply(
            dnnperf_dnn::LayerKind::Conv2d(dnnperf_dnn::Conv2d::square(96, 96, 3, 1, 1)),
            dnnperf_dnn::TensorShape::chw(96, 30, 30),
        )
        .unwrap();
        let kernels = map.kernels_for(&odd).expect("nearest fallback");
        assert!(!kernels.is_empty());
    }

    #[test]
    fn unseen_tag_returns_none() {
        let map = a100_map(&[zoo::vgg::vgg11()], 16);
        let ln = dnnperf_dnn::Layer::apply(
            dnnperf_dnn::LayerKind::LayerNorm,
            dnnperf_dnn::TensorShape::tokens(8, 8),
        )
        .unwrap();
        assert!(map.kernels_for(&ln).is_none());
    }

    #[test]
    fn merge_unions_signatures() {
        let a = a100_map(&[zoo::vgg::vgg11()], 16);
        let b = a100_map(&[zoo::mobilenet::mobilenet_v2(1.0, 1.0)], 16);
        let (la, lb) = (a.len(), b.len());
        let mut merged = a;
        merged.merge(b);
        assert!(merged.len() >= la.max(lb));
        assert!(merged.len() <= la + lb);
    }
}
