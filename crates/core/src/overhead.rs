//! CPU / launch-overhead correction for small workloads.
//!
//! The paper's limitation section: "When the batch size or the network is
//! small, and the GPU cannot be fully utilized, we find that the CPU and
//! the CPU-GPU communication can be the major performance bottleneck. ...
//! in the future, we plan to include a CPU and a communication model so
//! that we can also accurately predict performance for small workloads."
//!
//! This module implements that plan: [`OverheadModel`] fits an affine
//! correction (a gain on the KW GPU-time prediction, a per-kernel-launch
//! CPU cost and a fixed per-batch cost) against a handful of small-batch
//! calibration runs. [`KwWithOverhead`] applies the correction on top of
//! the plain KW prediction.

use crate::error::{PredictError, TrainError};
use crate::kernelwise::KwModel;
use crate::model::Predictor;
use dnnperf_data::Dataset;
use dnnperf_dnn::Network;
use dnnperf_linreg::{fit, median};

/// An affine CPU/communication correction calibrated on small-batch runs:
///
/// ```text
/// total = gain * kw_prediction + per_launch * kernel_launches + per_batch
/// ```
///
/// The gain term lets the correction shrink the KW model's systematic
/// small-batch overestimation (its per-cluster intercepts are calibrated at
/// the large training batch size), while the launch term prices the
/// CPU-side dispatch cost that dominates tiny workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    gain: f64,
    per_launch: f64,
    per_batch: f64,
}

impl OverheadModel {
    /// Calibrates the overhead model from the residuals of `kw` against
    /// measured small-batch runs in `dataset` (matched by network name and
    /// batch size; `nets` supplies the structures to predict with).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NotEnoughSamples`] with fewer than three
    /// matched calibration runs, or [`TrainError::Fit`] if the regression
    /// is degenerate.
    pub fn calibrate(
        kw: &KwModel,
        dataset: &Dataset,
        nets: &[Network],
    ) -> Result<Self, TrainError> {
        let mut preds = Vec::new(); // KW GPU-time predictions
        let mut counts = Vec::new(); // kernel launches
        let mut ys = Vec::new(); // measured seconds
        for row in dataset.networks.iter().filter(|r| &*r.gpu == kw.gpu()) {
            let Some(net) = nets.iter().find(|n| n.name() == &*row.network) else {
                continue;
            };
            let Ok(pred) = kw.predict_network(net, row.batch as usize) else {
                continue;
            };
            preds.push(pred);
            counts.push(row.kernel_count as f64);
            ys.push(row.e2e_seconds);
        }
        if preds.len() < 4 {
            return Err(TrainError::NotEnoughSamples {
                what: "overhead calibration runs".into(),
                got: preds.len(),
            });
        }
        // Two-stage, robust against the strong collinearity between a
        // network's predicted time and its kernel count: (1) the gain is
        // the median measured/predicted ratio; (2) the remaining residual
        // is priced per kernel launch.
        let ratios: Vec<f64> = preds
            .iter()
            .zip(&ys)
            .filter(|(p, _)| **p > 0.0)
            .map(|(p, y)| y / p)
            .collect();
        let gain = median(&ratios).clamp(0.0, 2.0);
        let residuals: Vec<f64> = preds.iter().zip(&ys).map(|(p, y)| y - gain * p).collect();
        // Accept the launch-cost term only when the residual fit has the
        // physical shape (nonnegative slope AND intercept); clamping just
        // one coefficient would bias the other.
        let (per_launch, per_batch) = match fit(&counts, &residuals) {
            Ok(f) if f.line.slope >= 0.0 && f.line.intercept >= 0.0 => {
                (f.line.slope, f.line.intercept)
            }
            _ => (0.0, dnnperf_linreg::mean(&residuals).max(0.0)),
        };
        Ok(OverheadModel {
            gain,
            per_launch,
            per_batch,
        })
    }

    /// The learned gain on the KW GPU-time prediction.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The learned per-kernel-launch CPU cost in seconds.
    pub fn per_launch_seconds(&self) -> f64 {
        self.per_launch
    }

    /// The learned fixed per-batch cost in seconds.
    pub fn per_batch_seconds(&self) -> f64 {
        self.per_batch
    }

    /// The corrected total for a KW prediction of `gpu_seconds` issuing
    /// `launches` kernel launches.
    pub fn corrected_seconds(&self, gpu_seconds: f64, launches: usize) -> f64 {
        self.gain * gpu_seconds + self.per_launch * launches as f64 + self.per_batch
    }
}

/// The KW model with the CPU-overhead correction applied on top.
#[derive(Debug, Clone, PartialEq)]
pub struct KwWithOverhead {
    kw: KwModel,
    overhead: OverheadModel,
}

impl KwWithOverhead {
    /// Wraps a trained KW model with a calibrated overhead model.
    pub fn new(kw: KwModel, overhead: OverheadModel) -> Self {
        KwWithOverhead { kw, overhead }
    }

    /// Trains the KW model on `dataset` and calibrates the overhead on
    /// `calibration` (typically a few small-batch runs of the training
    /// networks).
    ///
    /// # Errors
    ///
    /// Propagates training and calibration failures.
    pub fn train(
        dataset: &Dataset,
        calibration: &Dataset,
        nets: &[Network],
        gpu: &str,
    ) -> Result<Self, TrainError> {
        let kw = KwModel::train(dataset, gpu)?;
        let overhead = OverheadModel::calibrate(&kw, calibration, nets)?;
        Ok(KwWithOverhead { kw, overhead })
    }

    /// The underlying KW model.
    pub fn kw(&self) -> &KwModel {
        &self.kw
    }

    /// The calibrated overhead model.
    pub fn overhead(&self) -> &OverheadModel {
        &self.overhead
    }
}

impl Predictor for KwWithOverhead {
    fn name(&self) -> &str {
        "KW+overhead"
    }

    fn gpu(&self) -> &str {
        self.kw.gpu()
    }

    fn predict_network(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        let gpu_time = self.kw.predict_network(net, batch)?;
        let launches = self.kw.predict_kernel_count(net);
        Ok(self.overhead.corrected_seconds(gpu_time, launches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::GpuSpec;

    fn nets() -> Vec<Network> {
        vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::resnet::resnet50(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
            dnnperf_dnn::zoo::squeezenet::squeezenet(128, 128, 0.125),
        ]
    }

    #[test]
    fn calibration_learns_nonnegative_overheads() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let train = collect(&nets(), std::slice::from_ref(&gpu), &[256]);
        let calib = collect(&nets(), &[gpu], &[4, 8]);
        let kw = KwModel::train(&train, "A100").unwrap();
        let m = OverheadModel::calibrate(&kw, &calib, &nets()).unwrap();
        assert!(m.per_launch_seconds() >= 0.0);
        assert!(m.per_batch_seconds() >= 0.0);
        assert!((0.0..=2.0).contains(&m.gain()));
        assert!(m.corrected_seconds(1.0, 100) >= m.corrected_seconds(1.0, 10));
    }

    #[test]
    fn correction_improves_small_batch_error() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let train = collect(&nets(), std::slice::from_ref(&gpu), &[256]);
        let calib = collect(&nets(), std::slice::from_ref(&gpu), &[4, 8]);
        let model = KwWithOverhead::train(&train, &calib, &nets(), "A100").unwrap();

        // Evaluate both on a held-out network at a tiny batch.
        let held_out = dnnperf_dnn::zoo::resnet::resnet101();
        let meas = dnnperf_gpu::Profiler::new(gpu)
            .profile(&held_out, 4)
            .unwrap()
            .e2e_seconds;
        let plain = model.kw().predict_network(&held_out, 4).unwrap();
        let fixed = model.predict_network(&held_out, 4).unwrap();
        let e_plain = (plain - meas).abs() / meas;
        let e_fixed = (fixed - meas).abs() / meas;
        assert!(
            e_fixed < e_plain + 0.02,
            "correction must not hurt: {e_plain} -> {e_fixed}"
        );
    }

    #[test]
    fn too_few_calibration_runs_is_an_error() {
        let gpu = GpuSpec::by_name("A100").unwrap();
        let train = collect(&nets(), std::slice::from_ref(&gpu), &[128]);
        let calib = collect(&nets()[..1], &[gpu], &[8]);
        let kw = KwModel::train(&train, "A100").unwrap();
        assert!(matches!(
            OverheadModel::calibrate(&kw, &calib, &nets()),
            Err(TrainError::NotEnoughSamples { .. })
        ));
    }
}
