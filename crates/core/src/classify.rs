//! Automatic kernel classification (observation O5).
//!
//! For every kernel symbol, three candidate regressions are fitted against
//! the owning layer's input size (`N*C*H*W`), operation count (FLOPs) and
//! output size. The kernel is classified into the group whose regression has
//! the highest R² — exactly the paper's automated procedure: "our algorithm
//! can build linear regression for all three groups and compare the quality
//! of the linear regression (the R² value)".

use dnnperf_data::{DatasetView, GroupView, KernelRow};
use dnnperf_linreg::{
    fit_bounded_intercept, fit_bounded_segments, mean, Fit, Line, OlsAccum, FIT_CHUNK,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The driver variable a kernel's execution time follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Input-driven (pre-processing kernels): time ~ input `N*C*H*W`.
    Input,
    /// Operation-driven (main kernels): time ~ layer FLOPs.
    Operation,
    /// Output-driven (post-processing kernels): time ~ output `N*C*H*W`.
    Output,
}

impl Driver {
    /// Index into a `[input, operation, output]` array.
    pub fn index(self) -> usize {
        match self {
            Driver::Input => 0,
            Driver::Operation => 1,
            Driver::Output => 2,
        }
    }

    /// All drivers in canonical order.
    pub fn all() -> [Driver; 3] {
        [Driver::Input, Driver::Operation, Driver::Output]
    }
}

impl fmt::Display for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Driver::Input => "input",
            Driver::Operation => "operation",
            Driver::Output => "output",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Driver`] from its display name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDriverError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseDriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown driver {:?}", self.input)
    }
}

impl std::error::Error for ParseDriverError {}

impl std::str::FromStr for Driver {
    type Err = ParseDriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "input" => Ok(Driver::Input),
            "operation" => Ok(Driver::Operation),
            "output" => Ok(Driver::Output),
            other => Err(ParseDriverError {
                input: other.to_string(),
            }),
        }
    }
}

/// The classification result for one kernel symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelClassification {
    /// Kernel symbol.
    pub kernel: Arc<str>,
    /// Chosen driver (highest R²).
    pub driver: Driver,
    /// Regression against each driver, in `[input, operation, output]`
    /// order; `None` where the regression was degenerate.
    pub fits: [Option<Fit>; 3],
    /// R² against each driver (`f64::NEG_INFINITY` where degenerate).
    pub r2: [f64; 3],
    /// Number of samples.
    pub n: usize,
}

impl KernelClassification {
    /// The regression for the chosen driver; a constant (mean) model when
    /// every candidate regression was degenerate.
    pub fn chosen_fit(&self) -> Fit {
        self.fits[self.driver.index()].unwrap_or(Fit {
            line: Line::new(0.0, 0.0),
            r2: 0.0,
            n: self.n,
        })
    }
}

/// Rows-per-kernel reservation for [`group_by_kernel`]: every kernel in a
/// collected dataset appears once per (network, batch) grid point it runs
/// in, so even small grids put double-digit row counts behind each symbol.
/// Reserving up front removes the doubling reallocations from the grouping
/// pass without over-committing on tiny fixture inputs.
const GROUP_ROWS_RESERVE: usize = 16;

/// Groups kernel rows by kernel symbol in a single pass.
///
/// Entry-style insertion with pre-reserved row vectors: one ordered-map
/// probe per row, no second scan over the input.
pub fn group_by_kernel(rows: &[KernelRow]) -> BTreeMap<Arc<str>, Vec<&KernelRow>> {
    let mut grouped: BTreeMap<Arc<str>, Vec<&KernelRow>> = BTreeMap::new();
    for r in rows {
        grouped
            .entry(r.kernel.clone())
            .or_insert_with(|| Vec::with_capacity(GROUP_ROWS_RESERVE.min(rows.len())))
            .push(r);
    }
    grouped
}

/// [`group_by_kernel`] over borrowed rows — the allocation-free training
/// path groups a GPU-filtered view of a dataset without cloning any row.
pub fn group_row_refs<'a>(rows: &[&'a KernelRow]) -> BTreeMap<Arc<str>, Vec<&'a KernelRow>> {
    let mut grouped: BTreeMap<Arc<str>, Vec<&'a KernelRow>> = BTreeMap::new();
    for r in rows {
        grouped
            .entry(r.kernel.clone())
            .or_insert_with(|| Vec::with_capacity(GROUP_ROWS_RESERVE.min(rows.len())))
            .push(r);
    }
    grouped
}

fn constant_classification(kernel: Arc<str>, ys: &[f64]) -> KernelClassification {
    let c = Fit {
        line: Line::new(0.0, mean(ys)),
        r2: 0.0,
        n: ys.len(),
    };
    KernelClassification {
        kernel,
        driver: Driver::Operation,
        fits: [None, Some(c), None],
        r2: [f64::NEG_INFINITY; 3],
        n: ys.len(),
    }
}

/// Classifies one kernel's samples.
pub fn classify_one(kernel: Arc<str>, rows: &[&KernelRow]) -> KernelClassification {
    let ys: Vec<f64> = rows.iter().map(|r| r.seconds).collect();
    let mut fits: [Option<Fit>; 3] = [None, None, None];
    let mut r2 = [f64::NEG_INFINITY; 3];
    for (i, driver) in Driver::all().into_iter().enumerate() {
        let xs: Vec<f64> = rows.iter().map(|r| r.drivers()[driver.index()]).collect();
        if let Ok(f) = fit_bounded_intercept(&xs, &ys) {
            // A negative slope is physically meaningless for a time-vs-work
            // relation, and a fit worse than the plain mean (R² <= 0) is not
            // a candidate either.
            if f.line.slope >= 0.0 && f.r2 > 0.0 {
                r2[i] = f.r2;
                fits[i] = Some(f);
            }
        }
    }
    // Equivalent to `(0..3).max_by(total_cmp)` (last maximum wins on
    // ties) without the range-is-nonempty `expect`.
    let best = (1..3).fold(0, |b, i| {
        if r2[i].total_cmp(&r2[b]).is_ge() {
            i
        } else {
            b
        }
    });
    if r2[best] == f64::NEG_INFINITY {
        return constant_classification(kernel, &ys);
    }
    KernelClassification {
        kernel,
        driver: Driver::all()[best],
        fits,
        r2,
        n: rows.len(),
    }
}

/// Classifies every kernel symbol in `rows`.
///
/// # Examples
///
/// ```
/// use dnnperf_core::classify_kernels;
/// use dnnperf_data::collect::collect;
/// use dnnperf_gpu::GpuSpec;
///
/// let nets = [dnnperf_dnn::zoo::resnet::resnet18(), dnnperf_dnn::zoo::resnet::resnet34()];
/// let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
/// let classes = classify_kernels(&ds.kernels);
/// assert!(!classes.is_empty());
/// ```
pub fn classify_kernels(rows: &[KernelRow]) -> BTreeMap<Arc<str>, KernelClassification> {
    let refs: Vec<&KernelRow> = rows.iter().collect();
    classify_view(&DatasetView::from_refs(&refs), 1)
}

/// Finalises one group's three candidate regressions from its accumulated
/// chunk partials, applying the same admission rules as [`classify_one`]
/// (non-negative slope, R² better than the plain mean, last maximum wins
/// ties).
fn classify_group(gv: &GroupView<'_>, accs: &[OlsAccum; 3]) -> KernelClassification {
    let ys = gv.seconds;
    let mut fits: [Option<Fit>; 3] = [None, None, None];
    let mut r2 = [f64::NEG_INFINITY; 3];
    for (i, (acc, xs)) in accs.iter().zip(gv.drivers).enumerate() {
        if let Ok(f) = fit_bounded_segments(acc, &[(xs, ys)]) {
            if f.line.slope >= 0.0 && f.r2 > 0.0 {
                r2[i] = f.r2;
                fits[i] = Some(f);
            }
        }
    }
    let best = (1..3).fold(0, |b, i| {
        if r2[i].total_cmp(&r2[b]).is_ge() {
            i
        } else {
            b
        }
    });
    if r2[best] == f64::NEG_INFINITY {
        return constant_classification(gv.kernel.clone(), ys);
    }
    KernelClassification {
        kernel: gv.kernel.clone(),
        driver: Driver::all()[best],
        fits,
        r2,
        n: ys.len(),
    }
}

/// Classifies every kernel group of a columnar [`DatasetView`] on up to
/// `threads` workers — the training hot path.
///
/// Work is decomposed in two worker-count-independent phases. First, every
/// group is cut into sub-chunks of exactly [`FIT_CHUNK`] rows and one
/// three-driver accumulator job is run per `(group, chunk)`; the partials
/// fold back per group in chunk-index order. Large groups therefore split
/// across workers instead of serialising behind one thread when there are
/// fewer groups than workers. Second, each group's accumulators are
/// finalised (and the rare clamped-intercept refits re-swept) in parallel
/// across groups. Both phases key their floating-point reduction shape on
/// [`FIT_CHUNK`] alone, so the result is byte-identical to the serial path
/// at every thread count.
pub fn classify_view(
    view: &DatasetView,
    threads: usize,
) -> BTreeMap<Arc<str>, KernelClassification> {
    // (group, chunk-start, chunk-end) jobs in (group, chunk) order.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for g in 0..view.num_groups() {
        let n = view.group(g).map_or(0, |gv| gv.seconds.len());
        let mut start = 0;
        while start < n {
            let end = (start + FIT_CHUNK).min(n);
            jobs.push((g, start, end));
            start = end;
        }
    }
    let accs: Vec<[OlsAccum; 3]> = crate::par::reduce_indexed(
        jobs.len(),
        threads,
        |j| {
            let (g, start, end) = jobs[j];
            let mut part = [OlsAccum::new(); 3];
            if let Some(gv) = view.group(g) {
                for (acc, xs) in part.iter_mut().zip(gv.drivers) {
                    acc.push_all(&xs[start..end], &gv.seconds[start..end]);
                }
            }
            (g, part)
        },
        vec![[OlsAccum::new(); 3]; view.num_groups()],
        |mut accs, (g, part): (usize, [OlsAccum; 3])| {
            if let Some(slot) = accs.get_mut(g) {
                for (acc, p) in slot.iter_mut().zip(part) {
                    acc.merge(&p);
                }
            }
            accs
        },
    );
    let group_ids: Vec<usize> = (0..view.num_groups()).collect();
    crate::par::map_ref(&group_ids, threads, |&g| {
        match (view.group(g), accs.get(g)) {
            (Some(gv), Some(acc)) => {
                let c = classify_group(&gv, acc);
                (gv.kernel.clone(), c)
            }
            // Unreachable for a well-formed view; classify the empty group
            // as a constant so the signature stays total.
            _ => {
                let kernel: Arc<str> = Arc::from("");
                (kernel.clone(), constant_classification(kernel, &[]))
            }
        }
    })
    .into_iter()
    .collect()
}

/// Classifies pre-grouped kernel rows, fanning the per-kernel three-driver
/// fits out over up to `threads` workers.
///
/// The grouped entry point lets [`crate::KwModel`] share one
/// [`group_by_kernel`] pass between classification and clustering instead
/// of re-scanning the rows. Kernels are classified independently and the
/// results are stitched back in symbol order, so the output is
/// byte-identical to the serial path for every thread count.
pub fn classify_kernels_grouped(
    groups: &BTreeMap<Arc<str>, Vec<&KernelRow>>,
    threads: usize,
) -> BTreeMap<Arc<str>, KernelClassification> {
    let items: Vec<(&Arc<str>, &Vec<&KernelRow>)> = groups.iter().collect();
    crate::par::map_ref(&items, threads, |(k, rs)| {
        let c = classify_one((*k).clone(), rs);
        ((*k).clone(), c)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kernel: &str, in_e: u64, flops: u64, out_e: u64, seconds: f64) -> KernelRow {
        KernelRow {
            network: "n".into(),
            gpu: "g".into(),
            batch: 1,
            layer_index: 0,
            layer_type: Arc::from("conv"),
            kernel: kernel.into(),
            in_elems: in_e,
            flops,
            out_elems: out_e,
            seconds,
        }
    }

    #[test]
    fn input_driven_kernel_is_detected() {
        // Time follows input exactly; flops and output are decorrelated.
        let rows: Vec<KernelRow> = (1..40u64)
            .map(|i| {
                row(
                    "im2col",
                    i * 100,
                    (i * 37) % 900 + 1,
                    (i * 61) % 700 + 1,
                    i as f64,
                )
            })
            .collect();
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let c = classify_one(Arc::from("im2col"), &refs);
        assert_eq!(c.driver, Driver::Input);
        assert!(c.r2[0] > 0.99);
        assert!(c.r2[0] > c.r2[1] && c.r2[0] > c.r2[2]);
    }

    #[test]
    fn operation_driven_kernel_is_detected() {
        let rows: Vec<KernelRow> = (1..40u64)
            .map(|i| {
                row(
                    "gemm",
                    (i * 53) % 800 + 1,
                    i * 1000,
                    (i * 31) % 600 + 1,
                    i as f64,
                )
            })
            .collect();
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let c = classify_one(Arc::from("gemm"), &refs);
        assert_eq!(c.driver, Driver::Operation);
    }

    #[test]
    fn output_driven_kernel_is_detected() {
        let rows: Vec<KernelRow> = (1..40u64)
            .map(|i| {
                row(
                    "bias",
                    (i * 53) % 800 + 1,
                    (i * 37) % 900 + 1,
                    i * 10,
                    i as f64,
                )
            })
            .collect();
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let c = classify_one(Arc::from("bias"), &refs);
        assert_eq!(c.driver, Driver::Output);
    }

    #[test]
    fn degenerate_samples_get_constant_model() {
        let rows = [row("k", 5, 5, 5, 2.0)];
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let c = classify_one(Arc::from("k"), &refs);
        let f = c.chosen_fit();
        assert_eq!(f.line.slope, 0.0);
        assert_eq!(f.line.intercept, 2.0);
    }

    #[test]
    fn negative_slopes_are_rejected() {
        // Time DECREASES with input: nonsense for a work-time relation.
        let rows: Vec<KernelRow> = (1..20u64)
            .map(|i| row("weird", i * 100, 7, 7, (30 - i) as f64))
            .collect();
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let c = classify_one(Arc::from("weird"), &refs);
        // Input fit would be perfect but negative; must not be chosen.
        assert!(c.fits[0].is_none());
    }

    #[test]
    fn classify_kernels_covers_all_symbols() {
        let mut rows = Vec::new();
        for i in 1..20u64 {
            rows.push(row("a", i, 1, 1, i as f64));
            rows.push(row("b", 1, i, 1, i as f64 * 2.0));
        }
        let classes = classify_kernels(&rows);
        assert_eq!(classes.len(), 2);
        assert!(classes.contains_key("a" as &str));
    }

    #[test]
    fn parallel_classification_matches_serial_exactly() {
        let mut rows = Vec::new();
        for k in 0..17u64 {
            for i in 1..25u64 {
                rows.push(row(
                    &format!("k{k}"),
                    i * (k + 1),
                    (i * 37 + k) % 900 + 1,
                    (i * 61 + k) % 700 + 1,
                    (i * (k + 2)) as f64,
                ));
            }
        }
        let groups = group_by_kernel(&rows);
        let serial = classify_kernels_grouped(&groups, 1);
        assert_eq!(serial, classify_kernels(&rows));
        for threads in [2, 3, 8] {
            assert_eq!(
                classify_kernels_grouped(&groups, threads),
                serial,
                "threads = {threads}"
            );
        }
    }
}
