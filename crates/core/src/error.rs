//! Error types of the prediction models.

use dnnperf_linreg::FitError;
use std::error::Error;
use std::fmt;

/// Errors produced while training a performance model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The dataset holds no rows for the requested GPU.
    NoDataForGpu {
        /// The GPU that was requested.
        gpu: String,
    },
    /// Too few usable samples to fit the model.
    NotEnoughSamples {
        /// What was being fitted.
        what: String,
        /// Samples available.
        got: usize,
    },
    /// An underlying regression failed irrecoverably.
    Fit {
        /// What was being fitted.
        what: String,
        /// The regression error.
        source: FitError,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoDataForGpu { gpu } => {
                write!(f, "dataset holds no measurements for GPU {gpu:?}")
            }
            TrainError::NotEnoughSamples { what, got } => {
                write!(f, "not enough samples to fit {what}: got {got}")
            }
            TrainError::Fit { what, source } => write!(f, "fitting {what} failed: {source}"),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Fit { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Errors produced while predicting with a trained model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The model has no information for a layer of this type and no fallback
    /// is available.
    UnknownLayerType {
        /// The layer type tag.
        tag: String,
    },
    /// The kernel mapping table has no entry (exact or nearest) for a layer.
    NoKernelMapping {
        /// The layer type tag.
        tag: String,
    },
    /// A batch size of zero was requested.
    ZeroBatch,
    /// No trained model suite (and no inter-GPU fallback) covers the
    /// requested GPU.
    NoModelForGpu {
        /// The GPU that was requested.
        gpu: String,
    },
    /// A prediction was requested for a network with no layers.
    EmptyNetwork {
        /// The network's name.
        network: String,
    },
}

/// Validates a prediction request at the model boundary: batch must be
/// positive and the network must have at least one layer.
///
/// # Errors
///
/// Returns [`PredictError::ZeroBatch`] or [`PredictError::EmptyNetwork`].
pub(crate) fn validate_request(
    net: &dnnperf_dnn::Network,
    batch: usize,
) -> Result<(), PredictError> {
    if batch == 0 {
        return Err(PredictError::ZeroBatch);
    }
    if net.layers().is_empty() {
        return Err(PredictError::EmptyNetwork {
            network: net.name().to_string(),
        });
    }
    Ok(())
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::UnknownLayerType { tag } => {
                write!(f, "no trained model covers layer type {tag:?}")
            }
            PredictError::NoKernelMapping { tag } => {
                write!(
                    f,
                    "kernel mapping table has no entry for layer type {tag:?}"
                )
            }
            PredictError::ZeroBatch => write!(f, "batch size must be positive"),
            PredictError::NoModelForGpu { gpu } => {
                write!(
                    f,
                    "no trained suite or inter-GPU fallback covers GPU {gpu:?}"
                )
            }
            PredictError::EmptyNetwork { network } => {
                write!(f, "network {network:?} has no layers to predict")
            }
        }
    }
}

impl Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TrainError::NoDataForGpu { gpu: "H100".into() };
        assert!(e.to_string().contains("H100"));
        let e = TrainError::Fit {
            what: "e2e".into(),
            source: FitError::DegenerateX,
        };
        assert!(e.to_string().contains("identical"));
        assert!(Error::source(&e).is_some());
        let e = PredictError::NoKernelMapping { tag: "conv".into() };
        assert!(e.to_string().contains("conv"));
        let e = PredictError::EmptyNetwork {
            network: "Ghost".into(),
        };
        assert!(e.to_string().contains("Ghost"));
    }
}
