//! Bounded parallel-map helper for the training fan-out.
//!
//! Training work (per-kernel classification, per-cluster pooled refits) is
//! an embarrassingly parallel grid over an ordered slice. This module
//! adapts the scheduler's work-stealing [`dnnperf_sched::run_indexed`] —
//! the same pool the dataset collection engine runs on — into a slice map
//! that returns results *in input order*, so the parallel path is
//! byte-identical to the serial one. Scheduling is nondeterministic;
//! output never is.
//!
//! The helper is deliberately index-free on the caller side (`get` +
//! `flatten` rather than `items[i]`): it sits on the panic-policy hot path
//! (a stray panic would tear down a training worker), so no slice indexing
//! and no panic-family macros.
//!
//! Items are submitted to the pool in contiguous *chunks*, not one job per
//! item. The pool pays a mutex round-trip per job popped, and individual
//! classification fits run in single-digit microseconds — per-item jobs
//! would spend more time on deque traffic than on work. A handful of
//! chunks per worker keeps the steal granularity coarse enough to
//! amortise that overhead while still letting fast workers steal from
//! slow ones. Chunk boundaries never affect output: each chunk maps its
//! slice serially in order and the chunks are re-joined in index order.

use dnnperf_sched::run_indexed;

/// Target number of chunks handed to each worker. More than one so that
/// uneven per-item cost can still be balanced by stealing; small enough
/// that per-job pool overhead stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Maps `f` over `items` on up to `threads` workers, preserving order.
///
/// `threads <= 1` (or a grid of one item) short-circuits to a plain serial
/// map inside the pool — no threads are spawned. Results are stitched back
/// in index order, so for a pure `f` the output is byte-identical across
/// any worker count.
pub(crate) fn map_ref<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Never spawn more workers than there are items (a worker with an
    // empty deque is pure spawn/join overhead), but otherwise honour the
    // requested thread count. An earlier version also clamped to
    // `available_parallelism`, which silently starved explicit
    // multi-thread requests on cgroup-limited boxes and made the
    // forced-multithread determinism suites vacuously serial; callers
    // that want auto-sizing resolve it before asking (see
    // `TrainOptions::effective_threads`). Output is byte-identical across
    // worker counts, so this clamp only changes scheduling, never results.
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    // Carve the grid into contiguous chunks; every chunk is one pool job.
    let chunk = items.len().div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let jobs = items.len().div_ceil(chunk);
    let per_chunk: Vec<Vec<R>> = run_indexed(jobs, workers, |j| {
        let start = j * chunk;
        let end = (start + chunk).min(items.len());
        items
            .get(start..end)
            .unwrap_or(&[])
            .iter()
            .map(&f)
            .collect::<Vec<R>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Runs `jobs` indexed jobs on up to `threads` workers and folds the
/// per-job partial results into `init` **in job-index order** (the
/// scheduler's [`dnnperf_sched::map_reduce`] with the same worker clamp
/// policy as [`map_ref`]).
///
/// The training pipeline uses this to assemble per-chunk regression
/// accumulators: jobs are cut at fixed row-chunk boundaries (never by
/// worker count), so the reduction tree — and therefore every fitted
/// coefficient — is bit-identical at any thread count.
pub(crate) fn reduce_indexed<T, A, M, F>(jobs: usize, threads: usize, map: M, init: A, fold: F) -> A
where
    T: Send,
    A: Send,
    M: Fn(usize) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    let workers = threads.clamp(1, jobs.max(1));
    dnnperf_sched::map_reduce(jobs, workers, map, init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_worker_counts() {
        let items: Vec<u64> = (0..97).collect();
        let serial = map_ref(&items, 1, |x| x * x + 1);
        for threads in [2, 3, 8, 40] {
            assert_eq!(map_ref(&items, threads, |x| x * x + 1), serial);
        }
    }

    #[test]
    fn empty_and_singleton_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ref(&empty, 8, |x| *x).is_empty());
        assert_eq!(map_ref(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_is_treated_as_serial() {
        let items = [1u32, 2, 3];
        assert_eq!(map_ref(&items, 0, |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn reduce_indexed_folds_in_index_order_at_any_width() {
        let expect: Vec<usize> = (0..9).collect();
        for threads in [0, 1, 2, 8, 40] {
            let v = reduce_indexed(
                9,
                threads,
                |i| i,
                Vec::new(),
                |mut acc: Vec<usize>, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(v, expect, "threads = {threads}");
        }
    }
}
