//! The train-then-predict workflow of the paper's Figure 10: a training
//! dataset goes in, a set of trained analytical models comes out, and new
//! network structures are fed to the models for prediction.

use crate::cluster::DEFAULT_SLOPE_TOLERANCE;
use crate::e2e::E2eModel;
use crate::error::{PredictError, TrainError};
use crate::kernelwise::KwModel;
use crate::layerwise::LwModel;
use crate::model::Predictor;
use crate::plan::{CompiledPlan, PlanCache};
use dnnperf_data::collect::collect_opts;
use dnnperf_data::{CollectOptions, Dataset};
use dnnperf_dnn::Network;
use dnnperf_gpu::GpuSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide generation counter: every training run (and every
/// in-place invalidation) mints a fresh, never-reused suite generation.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Options for model training (the analogue of
/// [`dnnperf_data::CollectOptions`] for the training side of the
/// pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainOptions {
    /// Worker threads for the per-kernel classification fits and the
    /// per-cluster pooled refits. `0` (the default) means "auto": use
    /// [`std::thread::available_parallelism`]. `1` disables threading.
    /// The trained models are byte-identical for every worker count.
    pub threads: usize,
}

impl TrainOptions {
    /// Serial training (the conservative default of [`Workflow::train`]).
    pub fn serial() -> Self {
        TrainOptions { threads: 1 }
    }

    /// Training on `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        TrainOptions { threads }
    }

    /// Options from the environment: `DNNPERF_THREADS` — worker count;
    /// unparsable or zero means auto.
    pub fn from_env() -> Self {
        let threads = std::env::var("DNNPERF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        TrainOptions { threads }
    }

    /// The worker count after resolving `0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// A trained model suite for one GPU: the three single-GPU models of
/// Section 5.
#[derive(Debug)]
pub struct Workflow {
    /// The End-to-End model.
    pub e2e: E2eModel,
    /// The Layer-Wise model.
    pub lw: LwModel,
    /// The Kernel-Wise model.
    pub kw: KwModel,
    /// Compiled-plan cache for the serving hot path. Clones snapshot the
    /// entries (plans are immutable `Arc`s); see
    /// [`Workflow::invalidate_plans`].
    plans: PlanCache,
    /// Suite generation: a process-unique id minted at train time and
    /// re-minted by [`Workflow::invalidate_plans`]. Plan-cache keys carry
    /// it, so a retrained suite can never serve its predecessor's plans.
    generation: AtomicU64,
}

impl Clone for Workflow {
    fn clone(&self) -> Self {
        Workflow {
            e2e: self.e2e.clone(),
            lw: self.lw.clone(),
            kw: self.kw.clone(),
            // Same models, same generation: the snapshot of the ancestor's
            // compiled plans stays valid and the clone starts warm.
            plans: self.plans.clone(),
            generation: AtomicU64::new(self.generation()),
        }
    }
}

impl Workflow {
    /// Trains all three single-GPU models on one GPU's measurements.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from the individual models.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_core::{Predictor, Workflow};
    /// use dnnperf_data::collect::collect;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// # fn main() -> Result<(), dnnperf_core::TrainError> {
    /// let nets = [
    ///     dnnperf_dnn::zoo::resnet::resnet18(),
    ///     dnnperf_dnn::zoo::resnet::resnet34(),
    ///     dnnperf_dnn::zoo::vgg::vgg11(),
    /// ];
    /// let ds = collect(&nets, &[GpuSpec::by_name("V100").unwrap()], &[32]);
    /// let suite = Workflow::train(&ds, "V100")?;
    /// let net = dnnperf_dnn::zoo::resnet::resnet50();
    /// let t = suite.kw.predict_network(&net, 32).unwrap();
    /// assert!(t > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn train(dataset: &Dataset, gpu: &str) -> Result<Self, TrainError> {
        Workflow::train_opts(dataset, gpu, &TrainOptions::serial())
    }

    /// Trains the suite with explicit [`TrainOptions`]: the KW model's
    /// per-kernel classification fits and per-cluster pooled refits fan
    /// out over the scheduler's work-stealing pool. The trained suite is
    /// byte-identical to [`Workflow::train`] for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from the individual models.
    pub fn train_opts(
        dataset: &Dataset,
        gpu: &str,
        opts: &TrainOptions,
    ) -> Result<Self, TrainError> {
        let threads = opts.effective_threads();
        Ok(Workflow {
            e2e: E2eModel::train(dataset, gpu)?,
            lw: LwModel::train(dataset, gpu)?,
            kw: KwModel::train_with_options(dataset, gpu, DEFAULT_SLOPE_TOLERANCE, threads)?,
            plans: PlanCache::default(),
            generation: AtomicU64::new(next_generation()),
        })
    }

    /// Trains the suite with an explicit regression estimator for the E2E
    /// and LW models ([`dnnperf_linreg::Estimator::Huber`] bounds the
    /// influence of corrupted measurements that survived collection
    /// hygiene). The KW model's clustered per-kernel fits keep the paper's
    /// least-squares estimator.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from the individual models.
    pub fn train_with(
        dataset: &Dataset,
        gpu: &str,
        estimator: dnnperf_linreg::Estimator,
    ) -> Result<Self, TrainError> {
        Workflow::train_with_opts(dataset, gpu, estimator, &TrainOptions::serial())
    }

    /// [`Workflow::train_with`] plus explicit [`TrainOptions`] for the KW
    /// training fan-out.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from the individual models.
    pub fn train_with_opts(
        dataset: &Dataset,
        gpu: &str,
        estimator: dnnperf_linreg::Estimator,
        opts: &TrainOptions,
    ) -> Result<Self, TrainError> {
        let threads = opts.effective_threads();
        Ok(Workflow {
            e2e: E2eModel::train_with(dataset, gpu, estimator)?,
            lw: LwModel::train_with(dataset, gpu, estimator)?,
            kw: KwModel::train_with_options(dataset, gpu, DEFAULT_SLOPE_TOLERANCE, threads)?,
            plans: PlanCache::default(),
            generation: AtomicU64::new(next_generation()),
        })
    }

    /// The compiled plan for `(net, batch)`, from the suite's plan cache
    /// (compiled on first use). Repeated predictions of the same request
    /// share one plan and never re-run dispatch or cluster resolution.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] or
    /// [`PredictError::EmptyNetwork`] for structurally invalid requests.
    pub fn plan(&self, net: &Network, batch: usize) -> Result<Arc<CompiledPlan>, PredictError> {
        self.plans.get_or_compile(self, net, batch)
    }

    /// Predicts `net`'s end-to-end time with the KW model through the
    /// compiled-plan cache: bit-identical to
    /// `self.kw.predict_network(net, batch)`, but repeated calls are a
    /// flat array sweep instead of per-layer mapping and cluster lookups.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::ZeroBatch`] or
    /// [`PredictError::EmptyNetwork`] for structurally invalid requests.
    pub fn predict(&self, net: &Network, batch: usize) -> Result<f64, PredictError> {
        Ok(self.plan(net, batch)?.predict())
    }

    /// Suite generation: a process-unique id minted at train time. Two
    /// suites from different training runs never share a generation, and
    /// [`Workflow::invalidate_plans`] mints a fresh one, so any plan cache
    /// keyed on `(generation, network fingerprint, batch)` — this suite's
    /// own, or a shared serving cache — structurally cannot return a plan
    /// compiled against retired models.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Drops every cached plan and mints a fresh suite generation. Call
    /// this after mutating the suite's public model fields in place
    /// (retraining produces a fresh [`Workflow`] with its own generation,
    /// so the usual train → serve flow never needs it). The generation
    /// bump also retires this suite's entries in any *shared* plan cache
    /// keyed on the generation without touching other suites' entries.
    pub fn invalidate_plans(&self) {
        self.generation.store(next_generation(), Ordering::Relaxed);
        self.plans.clear();
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.cached()
    }

    /// The three models as trait objects, in increasing complexity order.
    pub fn models(&self) -> [&dyn Predictor; 3] {
        [&self.e2e, &self.lw, &self.kw]
    }

    /// Measure-then-train in one step: collects `nets` on `gpu` through the
    /// shared collection engine (work-stealing parallelism plus the
    /// content-addressed dataset cache, per `opts`) and trains the suite on
    /// the result. Repeated invocations with a cache directory skip the
    /// profiling step entirely.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from the individual models.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnnperf_core::Workflow;
    /// use dnnperf_data::CollectOptions;
    /// use dnnperf_gpu::GpuSpec;
    ///
    /// # fn main() -> Result<(), dnnperf_core::TrainError> {
    /// let nets = [
    ///     dnnperf_dnn::zoo::resnet::resnet18(),
    ///     dnnperf_dnn::zoo::resnet::resnet34(),
    ///     dnnperf_dnn::zoo::vgg::vgg11(),
    /// ];
    /// let gpu = GpuSpec::by_name("V100").unwrap();
    /// let suite = Workflow::collect_and_train(
    ///     &nets,
    ///     &gpu,
    ///     &[32],
    ///     &CollectOptions::with_threads(2),
    /// )?;
    /// assert_eq!(suite.models().len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn collect_and_train(
        nets: &[Network],
        gpu: &GpuSpec,
        batches: &[usize],
        opts: &CollectOptions,
    ) -> Result<Self, TrainError> {
        let (ds, _stats) = collect_opts(nets, std::slice::from_ref(gpu), batches, opts);
        Workflow::train(&ds, &gpu.name)
    }
}

/// Pairs each test network's prediction with its measured time from the
/// dataset (matching on network name and batch size). Networks missing a
/// measurement or failing prediction are skipped.
pub fn predictions_vs_measurements<P: Predictor + ?Sized>(
    model: &P,
    nets: &[Network],
    batch: usize,
    measured: &Dataset,
) -> Vec<(String, f64, f64)> {
    nets.iter()
        .filter_map(|net| {
            let meas = measured.networks.iter().find(|r| {
                &*r.network == net.name() && r.batch == batch as u32 && &*r.gpu == model.gpu()
            })?;
            let pred = model.predict_network(net, batch).ok()?;
            Some((net.name().to_string(), pred, meas.e2e_seconds))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_data::collect::collect;
    use dnnperf_gpu::GpuSpec;

    #[test]
    fn suite_trains_and_orders_models() {
        let nets = [
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::vgg::vgg11(),
        ];
        let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let suite = Workflow::train(&ds, "A100").unwrap();
        let names: Vec<&str> = suite.models().iter().map(|m| m.name()).collect();
        assert_eq!(names, ["E2E", "LW", "KW"]);
    }

    #[test]
    fn collect_and_train_equals_manual_pipeline() {
        let nets = [
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::vgg::vgg11(),
        ];
        let gpu = GpuSpec::by_name("A100").unwrap();
        // Through the engine (parallel, uncached)...
        let engine = Workflow::collect_and_train(
            &nets,
            &gpu,
            &[32],
            &dnnperf_data::CollectOptions::with_threads(3),
        )
        .unwrap();
        // ...matches collect-then-train by hand.
        let ds = collect(&nets, std::slice::from_ref(&gpu), &[32]);
        let manual = Workflow::train(&ds, "A100").unwrap();
        let probe = dnnperf_dnn::zoo::resnet::resnet50();
        for (a, b) in engine.models().iter().zip(manual.models()) {
            assert_eq!(
                a.predict_network(&probe, 32).unwrap(),
                b.predict_network(&probe, 32).unwrap()
            );
        }
    }

    #[test]
    fn predictions_pair_with_measurements() {
        let nets = vec![
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::resnet::resnet34(),
            dnnperf_dnn::zoo::vgg::vgg11(),
        ];
        let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[32]);
        let suite = Workflow::train(&ds, "A100").unwrap();
        let pairs = predictions_vs_measurements(&suite.kw, &nets, 32, &ds);
        assert_eq!(pairs.len(), 3);
        for (_, pred, meas) in pairs {
            assert!(pred > 0.0 && meas > 0.0);
        }
        // Wrong batch size: nothing to pair with.
        assert!(predictions_vs_measurements(&suite.kw, &nets, 999, &ds).is_empty());
    }
}
