//! Property-based tests for the predictor stack's invariants.

use dnnperf_core::{classify_kernels, cluster_kernels, KernelMap, KwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_data::KernelRow;
use dnnperf_gpu::GpuSpec;
use dnnperf_testkit::prelude::*;
use std::sync::Arc;

fn arb_rows() -> impl Gen<Value = Vec<KernelRow>> {
    vec((0usize..6, 1u64..1_000_000, 1e-7..1e-2f64), 8..80).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (k, x, t))| KernelRow {
                network: "n".into(),
                gpu: "g".into(),
                batch: 1,
                layer_index: i as u32,
                layer_type: Arc::from("conv"),
                kernel: Arc::from(format!("kernel_{k}")),
                in_elems: x,
                // Decorrelated from the input size, so driver choice is not
                // an exact R-squared tie decided by float summation order
                // (R-squared is invariant under affine maps of x, so any
                // affinely-related pair of drivers ties exactly).
                flops: (x % 977) * 1000 + 1,
                out_elems: (x % 1231) * 500 + 1,
                seconds: t,
            })
            .collect()
    })
}

/// The body of `classification_is_order_invariant`, shared with the pinned
/// regression cases below (formerly a `proptest-regressions` side-file).
fn check_classification_order_invariant(mut rows: Vec<KernelRow>, seed: u64) {
    let a = classify_kernels(&rows);
    // Deterministic shuffle.
    let n = rows.len();
    for i in 0..n {
        let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
        rows.swap(i, j);
    }
    let b = classify_kernels(&rows);
    prop_assert_eq!(a.len(), b.len());
    for (k, ca) in &a {
        let cb = &b[k];
        if ca.driver != cb.driver {
            // Permissible only for an exact R-squared tie broken by
            // float summation order.
            let ra = ca.r2[ca.driver.index()];
            let rb = cb.r2[cb.driver.index()];
            prop_assert!(
                (ra - rb).abs() < 1e-6,
                "driver flip for {} without a tie",
                k
            );
        }
        // Fits are computed from the same multiset of samples.
        prop_assert_eq!(ca.n, cb.n);
    }
}

props! {
    #[test]
    fn classification_is_order_invariant(rows in arb_rows(), seed in 0u64..100) {
        check_classification_order_invariant(rows, seed);
    }

    #[test]
    fn clustering_is_a_partition(rows in arb_rows(), tol in 1.0..4.0f64) {
        let classes = classify_kernels(&rows);
        let cl = cluster_kernels(&rows, &classes, tol);
        prop_assert_eq!(cl.num_kernels(), classes.len());
        prop_assert!(cl.num_models() >= 1);
        prop_assert!(cl.num_models() <= cl.num_kernels());
        // Every kernel has a model, and every model id is valid.
        for (k, id) in cl.assignments() {
            prop_assert!(id < cl.num_models(), "{k} -> {id}");
            prop_assert!(cl.model_for(k).is_some());
        }
        // Cluster fits never have negative slope.
        for (_, fit) in cl.models() {
            prop_assert!(fit.line.slope >= 0.0);
        }
    }

    #[test]
    fn looser_tolerance_never_increases_model_count(rows in arb_rows()) {
        let classes = classify_kernels(&rows);
        let tight = cluster_kernels(&rows, &classes, 1.01);
        let loose = cluster_kernels(&rows, &classes, 3.0);
        prop_assert!(loose.num_models() <= tight.num_models());
    }

    #[test]
    fn mapping_table_is_total_over_its_sources(rows in arb_rows()) {
        let map = KernelMap::from_rows(&rows);
        prop_assert!(!map.is_empty());
        // Every recorded signature has a nonempty kernel list.
        for (_, kernels) in map.entries() {
            prop_assert!(!kernels.is_empty());
        }
    }
}

/// A regression-case row: mostly-default kernels with a handful of large
/// outliers, exactly as the historical shrinker reported them.
fn regression_row(
    i: u32,
    kernel: &str,
    in_elems: u64,
    flops: u64,
    out_elems: u64,
    seconds: f64,
) -> KernelRow {
    KernelRow {
        network: "n".into(),
        gpu: "g".into(),
        batch: 1,
        layer_index: i,
        layer_type: Arc::from("conv"),
        kernel: Arc::from(kernel),
        in_elems,
        flops,
        out_elems,
        seconds,
    }
}

/// Builds `len` default rows, then applies `(index, kernel, x, flops, out,
/// seconds)` overrides.
fn regression_rows(
    len: u32,
    default: (&str, u64, u64, u64, f64),
    overrides: &[(u32, &str, u64, u64, u64, f64)],
) -> Vec<KernelRow> {
    let (dk, dx, df, do_, dt) = default;
    let mut rows: Vec<KernelRow> = (0..len)
        .map(|i| regression_row(i, dk, dx, df, do_, dt))
        .collect();
    for &(i, k, x, f, o, t) in overrides {
        rows[i as usize] = regression_row(i, k, x, f, o, t);
    }
    rows
}

/// Pinned historical failure of `classification_is_order_invariant` (was
/// `cc 9c36a10e…` in the deleted `props.proptest-regressions` file): 55
/// rows, mostly defaults, a burst of mixed-kernel outliers at the tail,
/// shuffled with seed 15.
#[test]
fn regression_classification_order_invariant_seed_15() {
    let rows = regression_rows(
        55,
        ("kernel_0", 1, 3, 1, 1e-7),
        &[
            (4, "kernel_5", 114131, 342393, 57066, 0.000745717683708324),
            (
                10,
                "kernel_5",
                233386,
                700158,
                116694,
                0.0005036009957526903,
            ),
            (36, "kernel_5", 73814, 221442, 36908, 0.002815348518249823),
            (
                41,
                "kernel_5",
                481536,
                1444608,
                240769,
                0.0013389807761152405,
            ),
            (42, "kernel_0", 403, 1209, 202, 0.004517503318043073),
            (
                43,
                "kernel_0",
                215619,
                646857,
                107810,
                0.0028681425582801207,
            ),
            (44, "kernel_5", 105235, 315705, 52618, 0.0016734938377575806),
            (
                45,
                "kernel_5",
                358687,
                1076061,
                179344,
                0.009330787314073974,
            ),
            (46, "kernel_2", 310054, 930162, 155028, 0.003995596172012164),
            (
                47,
                "kernel_4",
                614512,
                1843536,
                307257,
                0.0017094440317042454,
            ),
            (48, "kernel_1", 196184, 588552, 98093, 0.009484663750074455),
            (
                49,
                "kernel_4",
                275299,
                825897,
                137650,
                0.0016820490708888383,
            ),
            (
                50,
                "kernel_2",
                418310,
                1254930,
                209156,
                0.006956893590377487,
            ),
            (
                51,
                "kernel_0",
                713544,
                2140632,
                356773,
                0.0048810519950939855,
            ),
            (52, "kernel_4", 179418, 538254, 89710, 0.005557167421326461),
            (53, "kernel_0", 190137, 570411, 95069, 0.0049055109778379565),
            (
                54,
                "kernel_1",
                339993,
                1019979,
                169997,
                0.009848118628463657,
            ),
        ],
    );
    check_classification_order_invariant(rows, 15);
}

/// Pinned historical failure of `classification_is_order_invariant` (was
/// `cc c6167932…`): 19 rows with three `kernel_4` outliers, shuffled with
/// seed 50.
#[test]
fn regression_classification_order_invariant_seed_50() {
    let rows = regression_rows(
        19,
        ("kernel_0", 1, 1001, 1, 1e-7),
        &[
            (2, "kernel_4", 160643, 415001, 80322, 0.0010729396375589342),
            (8, "kernel_4", 877539, 193001, 438770, 0.008205588246287076),
            (12, "kernel_4", 549527, 453001, 274764, 0.008375577790437828),
        ],
    );
    check_classification_order_invariant(rows, 50);
}

#[test]
fn kw_prediction_is_monotone_in_batch() {
    // Not a generated property (training is comparatively expensive): predictions must
    // grow with batch size for every probe batch.
    let nets = [
        dnnperf_dnn::zoo::resnet::resnet18(),
        dnnperf_dnn::zoo::resnet::resnet50(),
        dnnperf_dnn::zoo::vgg::vgg11(),
        dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[128]);
    let kw = KwModel::train(&ds, "A100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet34();
    let mut last = 0.0;
    for bs in [1, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let t = kw.predict_network(&net, bs).unwrap();
        assert!(
            t >= last,
            "prediction decreased at batch {bs}: {last} -> {t}"
        );
        last = t;
    }
}
