//! Property-based tests for the predictor stack's invariants.

use dnnperf_core::{classify_kernels, cluster_kernels, KernelMap, KwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_data::KernelRow;
use dnnperf_gpu::GpuSpec;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_rows() -> impl Strategy<Value = Vec<KernelRow>> {
    prop::collection::vec(
        (0usize..6, 1u64..1_000_000, 1e-7..1e-2f64),
        8..80,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (k, x, t))| KernelRow {
                network: "n".into(),
                gpu: "g".into(),
                batch: 1,
                layer_index: i as u32,
                layer_type: Arc::from("conv"),
                kernel: Arc::from(format!("kernel_{k}")),
                in_elems: x,
                // Decorrelated from the input size, so driver choice is not
                // an exact R-squared tie decided by float summation order
                // (R-squared is invariant under affine maps of x, so any
                // affinely-related pair of drivers ties exactly).
                flops: (x % 977) * 1000 + 1,
                out_elems: (x % 1231) * 500 + 1,
                seconds: t,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn classification_is_order_invariant(mut rows in arb_rows(), seed in 0u64..100) {
        let a = classify_kernels(&rows);
        // Deterministic shuffle.
        let n = rows.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            rows.swap(i, j);
        }
        let b = classify_kernels(&rows);
        prop_assert_eq!(a.len(), b.len());
        for (k, ca) in &a {
            let cb = &b[k];
            if ca.driver != cb.driver {
                // Permissible only for an exact R-squared tie broken by
                // float summation order.
                let ra = ca.r2[ca.driver.index()];
                let rb = cb.r2[cb.driver.index()];
                prop_assert!((ra - rb).abs() < 1e-6, "driver flip for {} without a tie", k);
            }
            // Fits are computed from the same multiset of samples.
            prop_assert_eq!(ca.n, cb.n);
        }
    }

    #[test]
    fn clustering_is_a_partition(rows in arb_rows(), tol in 1.0..4.0f64) {
        let classes = classify_kernels(&rows);
        let cl = cluster_kernels(&rows, &classes, tol);
        prop_assert_eq!(cl.num_kernels(), classes.len());
        prop_assert!(cl.num_models() >= 1);
        prop_assert!(cl.num_models() <= cl.num_kernels());
        // Every kernel has a model, and every model id is valid.
        for (k, id) in cl.assignments() {
            prop_assert!(id < cl.num_models(), "{k} -> {id}");
            prop_assert!(cl.model_for(k).is_some());
        }
        // Cluster fits never have negative slope.
        for (_, fit) in cl.models() {
            prop_assert!(fit.line.slope >= 0.0);
        }
    }

    #[test]
    fn looser_tolerance_never_increases_model_count(rows in arb_rows()) {
        let classes = classify_kernels(&rows);
        let tight = cluster_kernels(&rows, &classes, 1.01);
        let loose = cluster_kernels(&rows, &classes, 3.0);
        prop_assert!(loose.num_models() <= tight.num_models());
    }

    #[test]
    fn mapping_table_is_total_over_its_sources(rows in arb_rows()) {
        let map = KernelMap::from_rows(&rows);
        prop_assert!(!map.is_empty());
        // Every recorded signature has a nonempty kernel list.
        for (_, kernels) in map.entries() {
            prop_assert!(!kernels.is_empty());
        }
    }
}

#[test]
fn kw_prediction_is_monotone_in_batch() {
    // Not a proptest (training is comparatively expensive): predictions must
    // grow with batch size for every probe batch.
    let nets = [
        dnnperf_dnn::zoo::resnet::resnet18(),
        dnnperf_dnn::zoo::resnet::resnet50(),
        dnnperf_dnn::zoo::vgg::vgg11(),
        dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let ds = collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[128]);
    let kw = KwModel::train(&ds, "A100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet34();
    let mut last = 0.0;
    for bs in [1, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let t = kw.predict_network(&net, bs).unwrap();
        assert!(t >= last, "prediction decreased at batch {bs}: {last} -> {t}");
        last = t;
    }
}
