//! Persistence integration tests: every trained model round-trips through
//! the text format exactly, and malformed inputs fail cleanly (no panics).

use dnnperf_core::{E2eModel, IgkwModel, KwModel, LwModel, PersistError, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_data::Dataset;
use dnnperf_gpu::GpuSpec;

fn dataset() -> Dataset {
    let nets = [
        dnnperf_dnn::zoo::resnet::resnet18(),
        dnnperf_dnn::zoo::resnet::resnet50(),
        dnnperf_dnn::zoo::vgg::vgg11(),
        dnnperf_dnn::zoo::densenet::densenet121(),
        dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("V100").unwrap(),
    ];
    collect(&nets, &gpus, &[32])
}

#[test]
fn e2e_round_trips_exactly() {
    let ds = dataset();
    let m = E2eModel::train(&ds, "A100").unwrap();
    assert_eq!(E2eModel::from_text(&m.to_text()).unwrap(), m);
}

#[test]
fn lw_round_trips_exactly() {
    let ds = dataset();
    let m = LwModel::train(&ds, "A100").unwrap();
    assert_eq!(LwModel::from_text(&m.to_text()).unwrap(), m);
}

#[test]
fn kw_round_trips_exactly_and_predicts_identically() {
    let ds = dataset();
    let m = KwModel::train(&ds, "A100").unwrap();
    let text = m.to_text();
    let back = KwModel::from_text(&text).unwrap();
    assert_eq!(back, m);
    let net = dnnperf_dnn::zoo::resnet::resnet34();
    assert_eq!(
        m.predict_network(&net, 64).unwrap(),
        back.predict_network(&net, 64).unwrap()
    );
    // Serialization is deterministic.
    assert_eq!(text, back.to_text());
}

#[test]
fn igkw_round_trips_exactly_and_predicts_identically() {
    let ds = dataset();
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("V100").unwrap(),
    ];
    let m = IgkwModel::train(&ds, &gpus).unwrap();
    let back = IgkwModel::from_text(&m.to_text()).unwrap();
    assert_eq!(back, m);
    let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet34();
    assert_eq!(
        m.predict_network_on(&net, 64, &titan).unwrap(),
        back.predict_network_on(&net, 64, &titan).unwrap()
    );
}

#[test]
fn gpu_names_with_spaces_survive() {
    let nets = [dnnperf_dnn::zoo::resnet::resnet18()];
    let gpus = [GpuSpec::by_name("GTX 1080 Ti").unwrap()];
    let ds = collect(&nets, &gpus, &[16, 32]);
    let m = E2eModel::train(&ds, "GTX 1080 Ti").unwrap();
    let back = E2eModel::from_text(&m.to_text()).unwrap();
    assert_eq!(back.gpu(), "GTX 1080 Ti");
}

#[test]
fn wrong_kind_is_rejected() {
    let ds = dataset();
    let e2e = E2eModel::train(&ds, "A100").unwrap();
    let err = KwModel::from_text(&e2e.to_text()).unwrap_err();
    assert!(
        matches!(err, PersistError::WrongKind { expected: "kw", .. }),
        "{err}"
    );
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    for text in [
        "",
        "garbage",
        "dnnperf-model v1 kw\n",
        "dnnperf-model v1 kw\ngpu A100\nmap not_a_number\n",
        "dnnperf-model v999 e2e\n",
        "dnnperf-model v1 e2e\ngpu A100\nfit 1.0 2.0\n", // too few fit fields
        "dnnperf-model v1 lw\ngpu A100\nfallback 1 2 3 4\ntypes 5\n", // truncated
        "dnnperf-model v1 igkw\nmetric warp_speed\n",
    ] {
        assert!(E2eModel::from_text(text).is_err() || text.contains(" e2e"));
        assert!(KwModel::from_text(text).is_err());
        assert!(LwModel::from_text(text).is_err() || text.contains(" lw"));
        assert!(IgkwModel::from_text(text).is_err());
    }
    // And the genuinely truncated variants error for their own kind too.
    assert!(E2eModel::from_text("dnnperf-model v1 e2e\ngpu A100\nfit 1.0 2.0\n").is_err());
    assert!(
        LwModel::from_text("dnnperf-model v1 lw\ngpu A100\nfallback 1 2 3 4\ntypes 5\n").is_err()
    );
}

#[test]
fn model_files_are_human_readable() {
    let ds = dataset();
    let m = KwModel::train(&ds, "A100").unwrap();
    let text = m.to_text();
    assert!(text.starts_with("dnnperf-model v1 kw\n"));
    assert!(text.contains("gpu A100"));
    assert!(text.contains("map "));
    assert!(text.contains("clustering "));
    // Every line is valid UTF-8 ASCII-ish text with a keyword.
    for line in text.lines() {
        assert!(line.split_whitespace().next().is_some());
    }
}
