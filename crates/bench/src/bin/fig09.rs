//! Figure 9: memory-bandwidth efficiency of ResNet-18 (theoretical bytes
//! divided by measured time times theoretical bandwidth) is stable across
//! GPUs; compute efficiency is not.

use dnnperf_bench::{banner, cells, gpu, TextTable};
use dnnperf_dnn::zoo;
use dnnperf_gpu::Profiler;

fn main() {
    banner(
        "Figure 9",
        "Bandwidth vs compute efficiency of ResNet-18 across GPUs",
    );
    let net = zoo::resnet::resnet18();
    // Batch chosen so the run fits even in the 2 GB Quadro P620.
    let batch = 32usize;

    let mut t = TextTable::new(&["GPU", "BW efficiency", "Compute efficiency"]);
    let mut bw_effs = Vec::new();
    let mut comp_effs = Vec::new();
    for name in [
        "A40",
        "A100",
        "GTX 1080 Ti",
        "TITAN RTX",
        "RTX A5000",
        "Quadro P620",
    ] {
        let g = gpu(name);
        let trace = match Profiler::new(g.clone()).profile(&net, batch) {
            Ok(t) => t,
            Err(e) => {
                println!("{name}: skipped ({e})");
                continue;
            }
        };
        let time = trace.e2e_seconds;
        let bytes = net.total_bytes() as f64 * batch as f64;
        let flops = net.total_flops() as f64 * batch as f64;
        let bw_eff = bytes / (time * g.bandwidth_bytes());
        let comp_eff = flops / (time * g.peak_flops());
        bw_effs.push(bw_eff);
        comp_effs.push(comp_eff);
        t.row(&cells![
            name,
            format!("{:.1}%", bw_eff * 100.0),
            format!("{:.1}%", comp_eff * 100.0)
        ]);
    }
    t.print();

    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    println!("\nmax/min spread across GPUs:");
    println!("  bandwidth efficiency: {:.2}x", spread(&bw_effs));
    println!("  compute efficiency:   {:.2}x", spread(&comp_effs));
    println!(
        "expected: bandwidth efficiency stable (~10%), compute efficiency varies (paper Figure 9)"
    );
}
