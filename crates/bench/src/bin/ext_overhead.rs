//! Extension experiment (paper future work): the CPU / communication
//! overhead model for small workloads.
//!
//! The plain KW model, trained at BS=512, degrades at small batch sizes
//! (see `ablation_bs`). Calibrating an affine overhead correction on a few
//! small-batch runs of the *training* networks recovers much of the loss on
//! held-out networks.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, networks_in, standard_split, TextTable};
use dnnperf_core::{KwModel, KwWithOverhead, OverheadModel, Predictor};
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Extension: CPU overhead model",
        "small-batch KW error with and without the overhead correction (A100)",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let a100 = gpu("A100");
    let ds = collect_verbose(&zoo, std::slice::from_ref(&a100), &[512]);
    let (train, test) = standard_split(&ds);
    let train_nets = networks_in(&zoo, &train);
    let test_nets = networks_in(&zoo, &test);
    let kw = KwModel::train(&train, "A100").expect("train KW");

    let mut t = TextTable::new(&["eval batch", "plain KW", "KW + overhead model"]);
    for bs in [4usize, 16, 64, 128] {
        // Calibration uses TRAINING networks measured at this batch size
        // (a simulator or a brief hardware run can supply these, per the
        // paper's discussion).
        let calib_nets: Vec<_> = train_nets.iter().step_by(8).cloned().collect();
        let calib = collect_verbose(&calib_nets, std::slice::from_ref(&a100), &[bs]);
        let overhead = OverheadModel::calibrate(&kw, &calib, &calib_nets).expect("calibrate");
        let corrected = KwWithOverhead::new(kw.clone(), overhead);

        // Evaluation on held-out TEST networks at the same batch size.
        let truth = collect_verbose(&test_nets, std::slice::from_ref(&a100), &[bs]);
        let (mut plain_p, mut fixed_p, mut meas) = (Vec::new(), Vec::new(), Vec::new());
        for net in networks_in(&zoo, &truth) {
            let m = truth
                .networks
                .iter()
                .find(|r| &*r.network == net.name())
                .expect("measured")
                .e2e_seconds;
            plain_p.push(kw.predict_network(&net, bs).expect("predict"));
            fixed_p.push(corrected.predict_network(&net, bs).expect("predict"));
            meas.push(m);
        }
        t.row(&cells![
            bs,
            format!("{:.1}%", mean_abs_rel_error(&plain_p, &meas) * 100.0),
            format!("{:.1}%", mean_abs_rel_error(&fixed_p, &meas) * 100.0)
        ]);
    }
    t.print();
    println!("\nexpected: the correction recovers most of the small-batch loss while");
    println!("leaving near-training-batch accuracy intact");
}
