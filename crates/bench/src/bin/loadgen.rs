//! LOADGEN: multi-tenant serving load generator with a regression gate.
//!
//! Drives hundreds of concurrent TCP clients against a
//! [`dnnperf_serve::PredictionServer`] fronted by
//! [`dnnperf_serve::TcpServer`] on an ephemeral port. The request stream
//! is deterministic (per-client LCG) over the full 646-network CNN zoo
//! at batches {1, 8, 32}, so a run exercises cold compiles, warm hits
//! and LRU eviction in the sharded plan cache while measuring what the
//! serving story actually promises: tail latency and throughput.
//!
//! Flags:
//!
//! * `--smoke` — fewer clients/requests for CI;
//! * `--out PATH` — write the results as one JSON document (BENCH_6.json);
//! * `--check PATH` — re-measure, then gate against a committed baseline:
//!   fail (exit 1) on any client-observed error, fewer than 100
//!   concurrent clients, p99 latency regressed beyond 6x the baseline, or
//!   throughput below baseline/6 (machine-relative, like the perf gate);
//! * `--deadline-ms N` — attach an N-millisecond deadline to every
//!   request. Requests the server sheds or sweeps (`deadline-exceeded`)
//!   count in the `overloaded` bucket, not as errors — useful for
//!   exploring admission control, but not meaningful under `--check`
//!   unless the baseline was captured with the same deadline.

use dnnperf_core::Workflow;
use dnnperf_data::collect::collect;
use dnnperf_dnn::zoo;
use dnnperf_gpu::GpuSpec;
use dnnperf_linreg::percentile;
use dnnperf_serve::{
    CacheConfig, Client, PredictionServer, Request, Response, ServerConfig, TcpServer,
};
use std::sync::Arc;
use std::time::Instant;

/// Maximum tolerated p99 latency regression vs the baseline.
const MAX_P99_REGRESSION: f64 = 6.0;
/// Minimum tolerated throughput as a fraction of the baseline.
const MIN_THROUGHPUT_FRACTION: f64 = 1.0 / 6.0;
/// The acceptance floor on concurrency.
const MIN_CLIENTS: usize = 100;

const TENANT: &str = "zoo";
const BATCHES: [usize; 3] = [1, 8, 32];

struct Flags {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
    deadline_ms: Option<u64>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        smoke: false,
        out: None,
        check: None,
        deadline_ms: None,
    };
    let parse_deadline = |v: Option<String>| -> Option<u64> {
        let v = v.unwrap_or_default();
        match v.parse() {
            Ok(ms) => Some(ms),
            Err(_) => {
                eprintln!("loadgen: --deadline-ms needs a millisecond count, got {v:?}");
                std::process::exit(2);
            }
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--out" => flags.out = args.next(),
            "--check" => flags.check = args.next(),
            "--deadline-ms" => flags.deadline_ms = parse_deadline(args.next()),
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    flags.out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--check=") {
                    flags.check = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--deadline-ms=") {
                    flags.deadline_ms = parse_deadline(Some(v.to_string()));
                } else {
                    eprintln!("loadgen: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    flags
}

/// Extracts the number following `"key":` from a (flat) JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn train_nets() -> Vec<dnnperf_dnn::Network> {
    vec![
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::resnet::resnet50(),
        zoo::vgg::vgg11(),
        zoo::vgg::vgg16(),
        zoo::densenet::densenet121(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        zoo::squeezenet::squeezenet(128, 128, 0.125),
    ]
}

/// Per-client outcome counters and latencies.
#[derive(Default)]
struct ClientResult {
    latencies_us: Vec<f64>,
    ok: u64,
    overloaded: u64,
    errors: u64,
}

struct Report {
    profile: &'static str,
    cores: usize,
    clients: usize,
    requests_per_client: usize,
    zoo_size: usize,
    ok: u64,
    overloaded: u64,
    errors: u64,
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_entries: usize,
    cache_bytes: usize,
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-bench-6\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!(
            "  \"requests_per_client\": {},\n",
            self.requests_per_client
        ));
        out.push_str(&format!("  \"zoo_size\": {},\n", self.zoo_size));
        out.push_str(&format!("  \"ok\": {},\n", self.ok));
        out.push_str(&format!("  \"overloaded\": {},\n", self.overloaded));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"p50_us\": {:.1},\n", self.p50_us));
        out.push_str(&format!("  \"p99_us\": {:.1},\n", self.p99_us));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.1},\n",
            self.throughput_rps
        ));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!("  \"cache_misses\": {},\n", self.cache_misses));
        out.push_str(&format!(
            "  \"cache_evictions\": {},\n",
            self.cache_evictions
        ));
        out.push_str(&format!("  \"cache_entries\": {},\n", self.cache_entries));
        out.push_str(&format!("  \"cache_bytes\": {}\n", self.cache_bytes));
        out.push_str("}\n");
        out
    }
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn run(smoke: bool, deadline_ms: Option<u64>) -> Report {
    let (clients, requests_per_client) = if smoke { (128, 20) } else { (256, 100) };

    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let nets = train_nets();
    let ds = collect(&nets, std::slice::from_ref(&gpu), &[8, 32]);
    let suite = Arc::new(Workflow::train(&ds, "A100").expect("train"));

    let catalog = zoo::cnn_zoo();
    let zoo_size = catalog.len();
    let names: Vec<String> = catalog.iter().map(|n| n.name().to_string()).collect();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let server = Arc::new(PredictionServer::start(&ServerConfig {
        workers: cores.max(2),
        queue_depth: 1024,
        max_batch: 16,
        cache: CacheConfig {
            shards: 16,
            budget_bytes: 128 << 20,
        },
        panic_plan: None,
    }));
    server.register_tenant(TENANT, Arc::clone(&suite));
    server.add_networks(catalog);
    let tcp = TcpServer::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = tcp.addr();

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let names = &names;
                s.spawn(move || {
                    let mut res = ClientResult::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        res.errors += requests_per_client as u64;
                        return res;
                    };
                    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (id as u64) << 17;
                    for _ in 0..requests_per_client {
                        let net = &names[(lcg_next(&mut rng) as usize) % names.len()];
                        let batch = BATCHES[(lcg_next(&mut rng) as usize) % BATCHES.len()];
                        let req = Request::Predict {
                            tenant: TENANT.to_string(),
                            network: net.clone(),
                            batch,
                            deadline_ms,
                        };
                        let t0 = Instant::now();
                        match client.call(&req) {
                            Ok(Response::Ok { seconds, .. }) => {
                                res.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                                if seconds.is_finite() && seconds >= 0.0 {
                                    res.ok += 1;
                                } else {
                                    res.errors += 1;
                                }
                            }
                            // Admission-control outcomes are load signals,
                            // not failures: shed (full queue) and
                            // deadline-shed (--deadline-ms) land together.
                            Ok(Response::Overloaded | Response::DeadlineExceeded) => {
                                res.overloaded += 1;
                            }
                            Ok(_) | Err(_) => res.errors += 1,
                        }
                    }
                    res
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    tcp.shutdown();
    let stats = server.stats();
    server.shutdown();

    // No pre-sort: `percentile` is a quickselect and returns the same
    // order statistics on unsorted input.
    let latencies: Vec<f64> = results
        .iter()
        .flat_map(|r| r.latencies_us.clone())
        .collect();
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let overloaded: u64 = results.iter().map(|r| r.overloaded).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();

    Report {
        profile: if smoke { "smoke" } else { "full" },
        cores,
        clients,
        requests_per_client,
        zoo_size,
        ok,
        overloaded,
        errors,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        throughput_rps: ok as f64 / elapsed.max(1e-9),
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_evictions: stats.cache.evictions,
        cache_entries: stats.cache.entries,
        cache_bytes: stats.cache.bytes,
    }
}

fn main() {
    let flags = parse_flags();
    dnnperf_bench::banner("LOADGEN", "multi-tenant TCP serving under concurrent load");

    let report = run(flags.smoke, flags.deadline_ms);
    println!();
    println!(
        "{} clients x {} requests over the {}-network zoo: {} ok, {} overloaded, {} errors",
        report.clients,
        report.requests_per_client,
        report.zoo_size,
        report.ok,
        report.overloaded,
        report.errors
    );
    println!(
        "latency p50 {:.0} us, p99 {:.0} us; throughput {:.0} req/s; \
         cache {} hits / {} misses / {} evictions ({} bytes resident)",
        report.p50_us,
        report.p99_us,
        report.throughput_rps,
        report.cache_hits,
        report.cache_misses,
        report.cache_evictions,
        report.cache_bytes
    );

    if let Some(path) = &flags.out {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }

    if let Some(path) = &flags.check {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("loadgen --check: cannot read {path}: {e}"));
        let base_p99 = json_number(&baseline, "p99_us")
            .unwrap_or_else(|| panic!("loadgen --check: no p99_us in {path}"));
        let base_rps = json_number(&baseline, "throughput_rps")
            .unwrap_or_else(|| panic!("loadgen --check: no throughput_rps in {path}"));
        let mut failed = false;
        if report.errors > 0 {
            eprintln!("GATE FAIL: {} client-observed errors", report.errors);
            failed = true;
        }
        if report.clients < MIN_CLIENTS {
            eprintln!(
                "GATE FAIL: only {} concurrent clients (floor {MIN_CLIENTS})",
                report.clients
            );
            failed = true;
        }
        let p99_limit = base_p99 * MAX_P99_REGRESSION;
        if report.p99_us > p99_limit {
            eprintln!(
                "GATE FAIL: p99 {:.0} us exceeds {:.0} (baseline {:.0} x {MAX_P99_REGRESSION})",
                report.p99_us, p99_limit, base_p99
            );
            failed = true;
        }
        let rps_floor = base_rps * MIN_THROUGHPUT_FRACTION;
        if report.throughput_rps < rps_floor {
            eprintln!(
                "GATE FAIL: throughput {:.0} req/s below {:.0} (baseline {:.0} / 6)",
                report.throughput_rps, rps_floor, base_rps
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate OK: p99 {:.0} us (limit {:.0}), {:.0} req/s (floor {:.0}), 0 errors",
            report.p99_us, p99_limit, report.throughput_rps, rps_floor
        );
    }
}
