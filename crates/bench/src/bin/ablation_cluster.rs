//! Ablation 2 (DESIGN.md): kernel clustering tolerance. The paper merges
//! 182 kernels into 83 regressions; this sweep shows the model-count /
//! accuracy trade-off.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, networks_in, standard_split, TextTable};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::KwModel;
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Ablation: kernel clustering",
        "slope tolerance vs model count and error (A100)",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let ds = collect_verbose(&zoo, &[gpu("A100")], &[batch]);
    let (train, test) = standard_split(&ds);
    let test_nets = networks_in(&zoo, &test);

    let mut t = TextTable::new(&["tolerance", "kernels", "models", "test error"]);
    for tol in [1.0, 1.15, 1.35, 1.75, 2.5, 10.0] {
        let kw = KwModel::train_with_tolerance(&train, "A100", tol).expect("train");
        let pairs = predictions_vs_measurements(&kw, &test_nets, batch, &test);
        let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();
        t.row(&cells![
            format!("{tol:.2}"),
            kw.num_kernels(),
            kw.num_models(),
            format!("{:.2}%", mean_abs_rel_error(&p, &y) * 100.0)
        ]);
    }
    t.print();
    println!("\nexpected: moderate clustering (paper: 182 -> 83 models) costs little accuracy;");
    println!("extreme merging degrades it");
}
