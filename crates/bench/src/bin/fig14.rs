//! Figure 14: the Inter-GPU Kernel-Wise model predicts TITAN RTX — a GPU
//! absent from the training set — from measurements on A100, A40 and GTX
//! 1080 Ti. Paper: average error 0.152, about half of the networks within
//! 10%.

use dnnperf_bench::{banner, collect_verbose, gpu, networks_in, print_s_curve, standard_split};
use dnnperf_core::IgkwModel;
use dnnperf_gpu::GpuSpec;

fn main() {
    banner(
        "Figure 14",
        "IGKW model: train on A100+A40+1080Ti, predict TITAN RTX",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let train_gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti"]
        .iter()
        .map(|n| gpu(n))
        .collect();
    let titan = gpu("TITAN RTX");

    let ds = collect_verbose(&zoo, &train_gpus, &[batch]);
    let (train, test) = standard_split(&ds);
    let model = IgkwModel::train(&train, &train_gpus).expect("train IGKW");
    println!(
        "kernels with transfer models: {} (trained on {:?})",
        model.num_kernels(),
        model.train_gpus()
    );

    // Measure the test networks on the *unseen* TITAN RTX.
    let titan_truth = collect_verbose(
        &networks_in(&zoo, &test),
        std::slice::from_ref(&titan),
        &[batch],
    );
    let mut preds = Vec::new();
    let mut meas = Vec::new();
    let mut within_10 = 0usize;
    for net in networks_in(&zoo, &titan_truth) {
        let m = titan_truth
            .networks
            .iter()
            .find(|r| &*r.network == net.name())
            .expect("measured")
            .e2e_seconds;
        let p = model
            .predict_network_on(&net, batch, &titan)
            .expect("predict");
        if (p - m).abs() / m < 0.10 {
            within_10 += 1;
        }
        preds.push(p);
        meas.push(m);
    }
    print_s_curve(&preds, &meas);
    println!(
        "networks within 10%: {}/{} ({:.0}%)",
        within_10,
        preds.len(),
        within_10 as f64 / preds.len() as f64 * 100.0
    );
    println!("paper reference: average error 0.152; about half within 10%");
}
