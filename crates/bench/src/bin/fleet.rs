//! FLEET: capacity-planning sweep over the fleet what-if engine, with a
//! reproducibility gate.
//!
//! Trains suites for two GPUs plus the inter-GPU fallback, then sweeps
//! offered load × (placement, batching) policy combinations over a
//! three-pool fleet (A100, V100, and a never-profiled TITAN RTX priced
//! by IGKW). Every sweep point is simulated **twice** and the two
//! reports must be byte-identical and conservation-clean — the bench
//! aborts otherwise, `--check` or not.
//!
//! Because the simulator consumes no wall clock and no ambient
//! randomness, the sweep figures are fully deterministic: the `--check`
//! gate compares request counts *exactly* against the committed
//! BENCH_7.json and the float figures (p99 sojourn, demand, SLO
//! attainment) within a tight relative tolerance that only absorbs
//! libm-level drift.
//!
//! Flags:
//!
//! * `--smoke` — same sweep (the sim is already cheap; training
//!   dominates), kept for CI symmetry with the other gates;
//! * `--out PATH` — write the figures as one JSON document (BENCH_7.json);
//! * `--check PATH` — re-run and gate against a committed baseline.

use dnnperf_core::{IgkwModel, PredictionOracle, Workflow};
use dnnperf_data::collect::collect;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;
use dnnperf_simkit::{
    simulate_fleet, ArrivalProcess, BatchingPolicy, FleetConfig, FleetReport, LeastLoaded,
    NetworkAffinity, NoBatching, PlacementPolicy, PoolSpec, RequestClass, RoundRobin, SizeCap,
    TimeWindow, WorkloadSpec,
};
use std::sync::Arc;
use std::time::Instant;

/// Relative tolerance for float figures vs the baseline: deterministic
/// modulo libm differences, so this is tight.
const FLOAT_RTOL: f64 = 1e-6;

const RATES: [f64; 3] = [250.0, 500.0, 1000.0];
const SEED: u64 = 1701;
const HORIZON: f64 = 0.4;

struct Flags {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        smoke: false,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--out" => flags.out = args.next(),
            "--check" => flags.check = args.next(),
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    flags.out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--check=") {
                    flags.check = Some(v.to_string());
                } else {
                    eprintln!("fleet: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    flags
}

/// Extracts the number following `"key":` from a (flat) JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn catalog() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
    ]
}

fn classes() -> Vec<RequestClass> {
    vec![
        RequestClass {
            tenant: "imaging".into(),
            network: 0,
            batch: 1,
            weight: 3.0,
        },
        RequestClass {
            tenant: "imaging".into(),
            network: 1,
            batch: 8,
            weight: 1.0,
        },
        RequestClass {
            tenant: "edge".into(),
            network: 2,
            batch: 1,
            weight: 2.0,
        },
    ]
}

fn build_oracle(nets: &[Network]) -> PredictionOracle {
    let train = |gpu: &str| {
        let spec = GpuSpec::by_name(gpu).expect("gpu spec");
        let ds = collect(nets, std::slice::from_ref(&spec), &[1, 8]);
        Arc::new(Workflow::train(&ds, gpu).expect("train suite"))
    };
    let igkw_gpus = [
        GpuSpec::by_name("A100").expect("A100"),
        GpuSpec::by_name("A40").expect("A40"),
        GpuSpec::by_name("GTX 1080 Ti").expect("GTX 1080 Ti"),
    ];
    let igkw_ds = collect(nets, &igkw_gpus, &[1, 8]);
    let igkw = IgkwModel::train(&igkw_ds, &igkw_gpus).expect("train igkw");

    let mut oracle = PredictionOracle::new();
    oracle.add_suite(train("A100"));
    oracle.add_suite(train("V100"));
    oracle.set_igkw(igkw);
    oracle
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        pools: vec![
            PoolSpec {
                name: "a100-pool".into(),
                gpu: GpuSpec::by_name("A100").expect("A100"),
                gpus: 2,
                queue_cap: Some(16),
            },
            PoolSpec {
                name: "v100-pool".into(),
                gpu: GpuSpec::by_name("V100").expect("V100"),
                gpus: 2,
                queue_cap: Some(16),
            },
            // Never profiled: priced entirely by the IGKW fallback.
            PoolSpec {
                name: "titan-pool".into(),
                gpu: GpuSpec::by_name("TITAN RTX").expect("TITAN RTX"),
                gpus: 1,
                queue_cap: Some(16),
            },
        ],
        slo_seconds: 0.02,
        queue_samples: 4,
    }
}

struct Combo {
    tag: &'static str,
    placement: fn() -> Box<dyn PlacementPolicy>,
    batching: fn() -> Box<dyn BatchingPolicy>,
}

fn combos() -> Vec<Combo> {
    vec![
        Combo {
            tag: "rr_none",
            placement: || Box::<RoundRobin>::default(),
            batching: || Box::new(NoBatching),
        },
        Combo {
            tag: "ll_size",
            placement: || Box::new(LeastLoaded),
            batching: || Box::new(SizeCap { max_batch: 4 }),
        },
        Combo {
            tag: "na_window",
            placement: || Box::new(NetworkAffinity),
            batching: || {
                Box::new(TimeWindow {
                    window_seconds: 0.002,
                    max_batch: 4,
                })
            },
        },
    ]
}

struct Point {
    key: String,
    report: FleetReport,
}

fn sweep(oracle: &PredictionOracle) -> (Vec<Point>, f64) {
    let catalog = catalog();
    let cfg = fleet_config();
    let mut points = Vec::new();
    let started = Instant::now();
    for &rate in &RATES {
        for combo in combos() {
            let wl = WorkloadSpec {
                classes: classes(),
                arrivals: ArrivalProcess::Poisson { rate_rps: rate },
                seed: SEED,
                horizon_seconds: HORIZON,
            };
            let run = || {
                simulate_fleet(
                    &catalog,
                    &wl,
                    &cfg,
                    (combo.placement)().as_mut(),
                    (combo.batching)().as_ref(),
                    oracle,
                )
                .expect("fleet point")
            };
            let a = run();
            let b = run();
            // Hard correctness gates, --check or not: the two runs must
            // replay byte-identically and conserve every request.
            if a.to_json() != b.to_json() {
                eprintln!("FATAL: replay diverged at rate {rate} combo {}", combo.tag);
                std::process::exit(1);
            }
            if !a.conservation_ok() {
                eprintln!(
                    "FATAL: conservation violated at rate {rate} combo {}: {a:?}",
                    combo.tag
                );
                std::process::exit(1);
            }
            points.push(Point {
                key: format!("r{}_{}", rate as u64, combo.tag),
                report: a,
            });
        }
    }
    (points, started.elapsed().as_secs_f64() * 1e3)
}

/// Per-point figures the gate compares. Counts are exact; floats within
/// [`FLOAT_RTOL`].
const INT_KEYS: [&str; 5] = ["offered", "admitted", "rejected", "completed", "in_flight"];
const FLOAT_KEYS: [&str; 3] = ["p99_ms", "demand_ms", "slo_att"];

fn point_figures(p: &Point) -> Vec<(String, String)> {
    let r = &p.report;
    vec![
        (format!("{}_offered", p.key), r.offered.to_string()),
        (format!("{}_admitted", p.key), r.admitted.to_string()),
        (format!("{}_rejected", p.key), r.rejected.to_string()),
        (format!("{}_completed", p.key), r.completed.to_string()),
        (
            format!("{}_in_flight", p.key),
            r.in_flight_at_horizon.to_string(),
        ),
        (
            format!("{}_p99_ms", p.key),
            format!("{:.6}", r.p99_sojourn_seconds * 1e3),
        ),
        (
            format!("{}_demand_ms", p.key),
            format!("{:.6}", r.service_demand_seconds * 1e3),
        ),
        (
            format!("{}_slo_att", p.key),
            format!("{:.6}", r.slo_attainment),
        ),
    ]
}

fn to_json(profile: &str, points: &[Point], sweep_ms: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dnnperf-bench-7\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    out.push_str(&format!("  \"points\": {},\n", points.len()));
    out.push_str(&format!("  \"sweep_wall_ms\": {sweep_ms:.1},\n"));
    let mut figures: Vec<(String, String)> = Vec::new();
    for p in points {
        figures.extend(point_figures(p));
    }
    for (i, (k, v)) in figures.iter().enumerate() {
        let sep = if i + 1 == figures.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

fn main() {
    let flags = parse_flags();
    dnnperf_bench::banner(
        "FLEET",
        "capacity-planning sweep over compiled-plan predictions",
    );

    let profile = if flags.smoke { "smoke" } else { "full" };
    let nets = catalog();
    println!("training 2 suites + IGKW over {} networks...", nets.len());
    let oracle = build_oracle(&nets);
    let (points, sweep_ms) = sweep(&oracle);

    println!();
    println!(
        "{} sweep points (2 runs each) in {:.1} ms — every point replayed byte-identically \
         and conserved all requests",
        points.len(),
        sweep_ms
    );
    for p in &points {
        let r = &p.report;
        println!(
            "  {:>14}: offered {:>4}, completed {:>4}, rejected {:>3}, p99 {:>8.3} ms, \
             SLO {:>5.1}%, igkw pool completed {}",
            p.key,
            r.offered,
            r.completed,
            r.rejected,
            r.p99_sojourn_seconds * 1e3,
            r.slo_attainment * 100.0,
            r.pools[2].completed,
        );
    }

    let doc = to_json(profile, &points, sweep_ms);
    if let Some(path) = &flags.out {
        std::fs::write(path, &doc).expect("write report");
        println!("wrote {path}");
    }

    if let Some(path) = &flags.check {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("fleet --check: cannot read {path}: {e}"));
        let mut failed = false;
        for p in &points {
            let r = &p.report;
            let ints: [(&str, f64); 5] = [
                ("offered", r.offered as f64),
                ("admitted", r.admitted as f64),
                ("rejected", r.rejected as f64),
                ("completed", r.completed as f64),
                ("in_flight", r.in_flight_at_horizon as f64),
            ];
            for (suffix, got) in ints {
                let key = format!("{}_{suffix}", p.key);
                let Some(want) = json_number(&baseline, &key) else {
                    eprintln!("GATE FAIL: baseline {path} has no {key}");
                    failed = true;
                    continue;
                };
                if got != want {
                    eprintln!("GATE FAIL: {key} = {got}, baseline {want} (exact match required)");
                    failed = true;
                }
            }
            let floats: [(&str, f64); 3] = [
                ("p99_ms", r.p99_sojourn_seconds * 1e3),
                ("demand_ms", r.service_demand_seconds * 1e3),
                ("slo_att", r.slo_attainment),
            ];
            for (suffix, got) in floats {
                let key = format!("{}_{suffix}", p.key);
                let Some(want) = json_number(&baseline, &key) else {
                    eprintln!("GATE FAIL: baseline {path} has no {key}");
                    failed = true;
                    continue;
                };
                let tol = want.abs() * FLOAT_RTOL + 1e-6;
                if (got - want).abs() > tol {
                    eprintln!("GATE FAIL: {key} = {got}, baseline {want} (tol {tol:e})");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate OK: {} points × ({} exact counts + {} float figures) match {path}",
            points.len(),
            INT_KEYS.len(),
            FLOAT_KEYS.len()
        );
    }
}
