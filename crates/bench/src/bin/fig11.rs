//! Figure 11: the End-to-End model's S-curve on the A100 test set.
//! Paper: average error 0.35, outliers up to ~3x both ways.

use dnnperf_bench::{banner, collect_verbose, gpu, networks_in, print_s_curve, standard_split};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::E2eModel;

fn main() {
    banner("Figure 11", "E2E model predicted/measured S-curve (A100)");
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let ds = collect_verbose(&zoo, &[gpu("A100")], &[batch]);
    let (train, test) = standard_split(&ds);
    let test_nets = networks_in(&zoo, &test);
    println!(
        "train networks: {}, test networks: {}",
        train.networks.len(),
        test_nets.len()
    );

    let model = E2eModel::train(&train, "A100").expect("train E2E");
    let pairs = predictions_vs_measurements(&model, &test_nets, batch, &test);
    let preds: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let meas: Vec<f64> = pairs.iter().map(|p| p.2).collect();
    print_s_curve(&preds, &meas);
    println!("paper reference: average error 0.35 on A100");
}
