//! PERF: hot-path microbenchmarks with a regression gate.
//!
//! Measures the four stages the compiled-plan work optimises — full-grid
//! dataset collection, model training (serial vs pooled), plan
//! compilation, and cold/warm/legacy prediction sweeps — with the in-tree
//! timer (untimed warmup, median-of-k summaries). Three derived figures
//! anchor the regression gate:
//!
//! * **warm-predict ns/kernel** — the serving hot path: median sweep time
//!   divided by the number of compiled kernel terms in the sweep;
//! * **warm-vs-legacy speedup** — compiled sweep vs the uncompiled
//!   `KwModel::predict_network` on identical requests (machine-relative,
//!   so the gate travels across hardware);
//! * **train speedup at 8 threads** — pooled vs serial KW training. The
//!   training pool clamps its worker count to the machine's cores, so on
//!   a single-core container this reads ~1.0 (graceful degradation, not
//!   regression); the report records `cores` so the figure is
//!   interpretable wherever the baseline was captured.
//!
//! A second mode, `--train-scaling`, sweeps KW training over worker counts
//! {1, 2, 4, 8} on an enlarged multi-network grid (BENCH_9.json). Before
//! timing anything it retrains at every thread count and hard-aborts unless
//! the serialized models are **byte-identical** — the mergeable-accumulator
//! determinism contract is a correctness gate, not a statistic. The report
//! records the machine's cores so the scaling figures are interpretable:
//! the speedup gate only binds on boxes with at least
//! [`MIN_CORES_FOR_SPEEDUP_GATE`] cores; below that the gate falls back to
//! a serial ns/row throughput floor.
//!
//! Flags:
//!
//! * `--smoke` — reduced warmup/iteration counts for CI;
//! * `--train-scaling` — run the training scaling sweep instead of the
//!   serving microbenchmarks;
//! * `--out PATH` — write the results as one JSON document (BENCH_5.json,
//!   or BENCH_9.json with `--train-scaling`);
//! * `--check PATH` — re-measure, then gate against a committed baseline:
//!   fail (exit 1) if warm-predict ns/kernel regressed by more than 2x, or
//!   if the warm-vs-legacy speedup fell below 5x. With `--train-scaling`:
//!   fail if the 8-thread train speedup is below 2x (cores permitting) or
//!   if serial training ns/row regressed by more than 2x.

use dnnperf_bench::timer::{bench, BenchResult};
use dnnperf_core::plan::CompiledPlan;
use dnnperf_core::{Predictor, TrainOptions, Workflow};
use dnnperf_data::collect::collect;
use dnnperf_data::DatasetView;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;

/// Maximum tolerated regression of warm-predict ns/kernel vs the baseline.
const MAX_NS_PER_KERNEL_REGRESSION: f64 = 2.0;
/// Minimum tolerated warm-vs-legacy speedup.
const MIN_WARM_SPEEDUP: f64 = 5.0;
/// Minimum tolerated 8-thread training speedup — only enforced on machines
/// with at least [`MIN_CORES_FOR_SPEEDUP_GATE`] cores.
const MIN_TRAIN_SPEEDUP_THREADS8: f64 = 2.0;
/// Cores below which the train-scaling gate cannot expect parallel speedup
/// and falls back to the serial ns/row throughput floor.
const MIN_CORES_FOR_SPEEDUP_GATE: usize = 4;
/// Maximum tolerated regression of serial training ns/row vs the baseline.
const MAX_TRAIN_NS_PER_ROW_REGRESSION: f64 = 2.0;
/// Worker counts the training scaling sweep measures.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

fn train_nets() -> Vec<Network> {
    vec![
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::resnet::resnet50(),
        zoo::vgg::vgg11(),
        zoo::vgg::vgg16(),
        zoo::densenet::densenet121(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        zoo::squeezenet::squeezenet(128, 128, 0.125),
    ]
}

/// The prediction sweep: held-out networks across a batch scan — the
/// repeated-request pattern the plan cache exists for.
fn sweep_pairs() -> Vec<(Network, usize)> {
    let probes = [
        zoo::resnet::resnet77(),
        zoo::resnet::resnet101(),
        zoo::vgg::vgg13(),
        zoo::densenet::densenet169(),
        zoo::mobilenet::mobilenet_v2(1.4, 1.0),
    ];
    let mut pairs = Vec::new();
    for net in probes {
        for batch in [1usize, 8, 32, 64] {
            pairs.push((net.clone(), batch));
        }
    }
    pairs
}

struct Flags {
    smoke: bool,
    train_scaling: bool,
    out: Option<String>,
    check: Option<String>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        smoke: false,
        train_scaling: false,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--train-scaling" => flags.train_scaling = true,
            "--out" => flags.out = args.next(),
            "--check" => flags.check = args.next(),
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    flags.out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--check=") {
                    flags.check = Some(v.to_string());
                } else {
                    eprintln!("perf: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    flags
}

/// Extracts the number following `"key":` from a (flat) JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

struct Report {
    profile: &'static str,
    cores: usize,
    sweep_pairs: usize,
    sweep_kernel_terms: usize,
    warm_ns_per_kernel: f64,
    warm_vs_legacy_speedup: f64,
    train_speedup_threads8: f64,
    entries: Vec<BenchResult>,
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-bench-5\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"sweep_pairs\": {},\n", self.sweep_pairs));
        out.push_str(&format!(
            "  \"sweep_kernel_terms\": {},\n",
            self.sweep_kernel_terms
        ));
        out.push_str(&format!(
            "  \"warm_predict_ns_per_kernel\": {:.3},\n",
            self.warm_ns_per_kernel
        ));
        out.push_str(&format!(
            "  \"warm_vs_legacy_speedup\": {:.2},\n",
            self.warm_vs_legacy_speedup
        ));
        out.push_str(&format!(
            "  \"train_speedup_threads8\": {:.2},\n",
            self.train_speedup_threads8
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", e.json_line()));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn run(smoke: bool) -> Report {
    // (warmup, iters) per stage; collection and training are orders of
    // magnitude slower than prediction, so they get fewer iterations.
    let (slow_w, slow_i, fast_w, fast_i) = if smoke { (1, 3, 2, 9) } else { (2, 9, 5, 41) };

    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let nets = train_nets();
    // A multi-batch grid: every kernel symbol accumulates rows from each
    // (network, batch) point, so the per-kernel classification fits carry
    // real work for the training pool to split.
    let batches = [8usize, 16, 32, 64];
    let mut entries = Vec::new();

    entries.push(bench("collect/full_grid", slow_w, slow_i, || {
        collect(&nets, std::slice::from_ref(&gpu), &batches)
    }));
    let ds = collect(&nets, std::slice::from_ref(&gpu), &batches);

    let t1 = bench("train/threads1", slow_w, slow_i, || {
        Workflow::train_opts(&ds, "A100", &TrainOptions::serial()).expect("train")
    });
    let t8 = bench("train/threads8", slow_w, slow_i, || {
        Workflow::train_opts(&ds, "A100", &TrainOptions::with_threads(8)).expect("train")
    });

    let suite = Workflow::train(&ds, "A100").expect("train");
    let pairs = sweep_pairs();
    let sweep_kernel_terms: usize = pairs
        .iter()
        .map(|(n, b)| suite.plan(n, *b).expect("plan").num_terms())
        .sum();
    suite.invalidate_plans();

    let (net0, batch0) = (&pairs[0].0, pairs[0].1);
    entries.push(bench("plan/compile", fast_w, fast_i, || {
        CompiledPlan::compile(&suite, net0, batch0).expect("compile")
    }));

    entries.push(bench("predict/cold_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| {
                CompiledPlan::compile(&suite, n, *b)
                    .expect("compile")
                    .predict()
            })
            .sum::<f64>()
    }));
    let warm = bench("predict/warm_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| suite.predict(n, *b).expect("predict"))
            .sum::<f64>()
    });
    let legacy = bench("predict/legacy_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| suite.kw.predict_network(n, *b).expect("predict"))
            .sum::<f64>()
    });

    let warm_ns_per_kernel = warm.median_ns / sweep_kernel_terms as f64;
    let warm_vs_legacy_speedup = legacy.median_ns / warm.median_ns;
    let train_speedup_threads8 = t1.median_ns / t8.median_ns;
    entries.insert(1, t1);
    entries.insert(2, t8);
    entries.push(warm);
    entries.push(legacy);

    Report {
        profile: if smoke { "smoke" } else { "full" },
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        sweep_pairs: pairs.len(),
        sweep_kernel_terms,
        warm_ns_per_kernel,
        warm_vs_legacy_speedup,
        train_speedup_threads8,
        entries,
    }
}

/// The enlarged training grid for the scaling sweep: enough networks and
/// batch points that the per-kernel row counts give the chunked
/// accumulators real work to split across workers.
fn scaling_nets() -> Vec<Network> {
    let mut nets = train_nets();
    nets.extend([
        zoo::resnet::resnet77(),
        zoo::resnet::resnet101(),
        zoo::vgg::vgg13(),
        zoo::densenet::densenet169(),
    ]);
    nets
}

struct ScalingReport {
    profile: &'static str,
    cores: usize,
    train_rows: usize,
    kernel_groups: usize,
    ns_per_row_threads1: f64,
    speedups: [f64; 4],
    entries: Vec<BenchResult>,
}

impl ScalingReport {
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-bench-9\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"train_rows\": {},\n", self.train_rows));
        out.push_str(&format!("  \"kernel_groups\": {},\n", self.kernel_groups));
        out.push_str(&format!(
            "  \"train_ns_per_row_threads1\": {:.3},\n",
            self.ns_per_row_threads1
        ));
        for (t, s) in SCALING_THREADS.iter().zip(self.speedups) {
            out.push_str(&format!("  \"train_speedup_threads{t}\": {s:.2},\n"));
        }
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", e.json_line()));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn run_train_scaling(smoke: bool) -> ScalingReport {
    let (warm, iters) = if smoke { (1, 5) } else { (2, 15) };

    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let nets = scaling_nets();
    let batches = [4usize, 8, 16, 32, 64];
    let ds = collect(&nets, std::slice::from_ref(&gpu), &batches);
    let rows: Vec<&dnnperf_data::KernelRow> = ds.kernels.iter().collect();
    let view = DatasetView::from_refs(&rows);
    let train_rows = view.num_rows();
    let kernel_groups = view.num_groups();

    // Byte-identity first: the whole point of the canonical FIT_CHUNK
    // reduction tree is that thread count never changes the model. Abort
    // before timing anything if it does.
    let reference = Workflow::train_opts(&ds, "A100", &TrainOptions::serial())
        .expect("train")
        .kw
        .to_text();
    let auto = TrainOptions::from_env();
    let candidates = SCALING_THREADS
        .iter()
        .map(|&t| (format!("threads{t}"), TrainOptions::with_threads(t)))
        .chain([(format!("auto({})", auto.effective_threads()), auto.clone())]);
    for (label, opts) in candidates {
        let text = Workflow::train_opts(&ds, "A100", &opts)
            .expect("train")
            .kw
            .to_text();
        if text != reference {
            eprintln!(
                "ABORT: training at {label} produced a model that differs \
                 from the serial reference — determinism contract violated"
            );
            std::process::exit(1);
        }
    }

    let entries: Vec<BenchResult> = SCALING_THREADS
        .iter()
        .map(|&t| {
            let opts = TrainOptions::with_threads(t);
            bench(
                match t {
                    1 => "train/threads1",
                    2 => "train/threads2",
                    4 => "train/threads4",
                    _ => "train/threads8",
                },
                warm,
                iters,
                || Workflow::train_opts(&ds, "A100", &opts).expect("train"),
            )
        })
        .collect();

    let t1_ns = entries[0].median_ns;
    let speedups = [
        1.0,
        t1_ns / entries[1].median_ns,
        t1_ns / entries[2].median_ns,
        t1_ns / entries[3].median_ns,
    ];

    ScalingReport {
        profile: if smoke { "smoke" } else { "full" },
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        train_rows,
        kernel_groups,
        ns_per_row_threads1: t1_ns / train_rows.max(1) as f64,
        speedups,
        entries,
    }
}

fn main_train_scaling(flags: &Flags) {
    dnnperf_bench::banner("PERF", "training scaling sweep (mergeable accumulators)");
    let report = run_train_scaling(flags.smoke);
    println!();
    println!(
        "train grid: {} rows, {} kernel groups, {} core{}  \
         (serial {:.0} ns/row)",
        report.train_rows,
        report.kernel_groups,
        report.cores,
        if report.cores == 1 { "" } else { "s" },
        report.ns_per_row_threads1
    );
    for (t, s) in SCALING_THREADS.iter().zip(report.speedups) {
        println!("  threads {t}: {s:.2}x");
    }
    println!("byte-identity: OK at every thread count");

    if let Some(path) = &flags.out {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }

    if let Some(path) = &flags.check {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("perf --check: cannot read {path}: {e}"));
        let base_ns_row = json_number(&baseline, "train_ns_per_row_threads1")
            .unwrap_or_else(|| panic!("perf --check: no train_ns_per_row_threads1 in {path}"));
        let mut failed = false;
        if report.cores >= MIN_CORES_FOR_SPEEDUP_GATE {
            let s8 = report.speedups[3];
            if s8 < MIN_TRAIN_SPEEDUP_THREADS8 {
                eprintln!(
                    "GATE FAIL: train speedup at 8 threads {s8:.2}x below the \
                     {MIN_TRAIN_SPEEDUP_THREADS8}x floor ({} cores)",
                    report.cores
                );
                failed = true;
            }
        } else {
            // Too few cores for parallel speedup to exist; gate serial
            // throughput instead so training perf cannot silently rot.
            let limit = base_ns_row * MAX_TRAIN_NS_PER_ROW_REGRESSION;
            if report.ns_per_row_threads1 > limit {
                eprintln!(
                    "GATE FAIL: serial training {:.0} ns/row exceeds {:.0} \
                     (baseline {:.0} x {MAX_TRAIN_NS_PER_ROW_REGRESSION})",
                    report.ns_per_row_threads1, limit, base_ns_row
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate OK: speedup@8 {:.2}x on {} core(s), serial {:.0} ns/row (baseline {:.0})",
            report.speedups[3], report.cores, report.ns_per_row_threads1, base_ns_row
        );
    }
}

fn main() {
    let flags = parse_flags();
    if flags.train_scaling {
        main_train_scaling(&flags);
        return;
    }
    dnnperf_bench::banner(
        "PERF",
        "compiled-plan serving and pooled-training microbenchmarks",
    );

    let report = run(flags.smoke);
    println!();
    println!(
        "warm predict: {:.1} ns/kernel over {} terms ({} sweep pairs)",
        report.warm_ns_per_kernel, report.sweep_kernel_terms, report.sweep_pairs
    );
    println!(
        "warm vs legacy speedup: {:.2}x   train speedup (8 threads, {} core{}): {:.2}x",
        report.warm_vs_legacy_speedup,
        report.cores,
        if report.cores == 1 { "" } else { "s" },
        report.train_speedup_threads8
    );

    if let Some(path) = &flags.out {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }

    if let Some(path) = &flags.check {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("perf --check: cannot read {path}: {e}"));
        let base_ns = json_number(&baseline, "warm_predict_ns_per_kernel")
            .unwrap_or_else(|| panic!("perf --check: no warm_predict_ns_per_kernel in {path}"));
        let mut failed = false;
        let limit = base_ns * MAX_NS_PER_KERNEL_REGRESSION;
        if report.warm_ns_per_kernel > limit {
            eprintln!(
                "GATE FAIL: warm predict {:.1} ns/kernel exceeds {:.1} \
                 (baseline {:.1} x {MAX_NS_PER_KERNEL_REGRESSION})",
                report.warm_ns_per_kernel, limit, base_ns
            );
            failed = true;
        }
        if report.warm_vs_legacy_speedup < MIN_WARM_SPEEDUP {
            eprintln!(
                "GATE FAIL: warm-vs-legacy speedup {:.2}x below the {MIN_WARM_SPEEDUP}x floor",
                report.warm_vs_legacy_speedup
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate OK: {:.1} ns/kernel (limit {:.1}), speedup {:.2}x (floor {MIN_WARM_SPEEDUP}x)",
            report.warm_ns_per_kernel, limit, report.warm_vs_legacy_speedup
        );
    }
}
