//! PERF: hot-path microbenchmarks with a regression gate.
//!
//! Measures the four stages the compiled-plan work optimises — full-grid
//! dataset collection, model training (serial vs pooled), plan
//! compilation, and cold/warm/legacy prediction sweeps — with the in-tree
//! timer (untimed warmup, median-of-k summaries). Three derived figures
//! anchor the regression gate:
//!
//! * **warm-predict ns/kernel** — the serving hot path: median sweep time
//!   divided by the number of compiled kernel terms in the sweep;
//! * **warm-vs-legacy speedup** — compiled sweep vs the uncompiled
//!   `KwModel::predict_network` on identical requests (machine-relative,
//!   so the gate travels across hardware);
//! * **train speedup at 8 threads** — pooled vs serial KW training. The
//!   training pool clamps its worker count to the machine's cores, so on
//!   a single-core container this reads ~1.0 (graceful degradation, not
//!   regression); the report records `cores` so the figure is
//!   interpretable wherever the baseline was captured.
//!
//! Flags:
//!
//! * `--smoke` — reduced warmup/iteration counts for CI;
//! * `--out PATH` — write the results as one JSON document (BENCH_5.json);
//! * `--check PATH` — re-measure, then gate against a committed baseline:
//!   fail (exit 1) if warm-predict ns/kernel regressed by more than 2x, or
//!   if the warm-vs-legacy speedup fell below 5x.

use dnnperf_bench::timer::{bench, BenchResult};
use dnnperf_core::plan::CompiledPlan;
use dnnperf_core::{Predictor, TrainOptions, Workflow};
use dnnperf_data::collect::collect;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;

/// Maximum tolerated regression of warm-predict ns/kernel vs the baseline.
const MAX_NS_PER_KERNEL_REGRESSION: f64 = 2.0;
/// Minimum tolerated warm-vs-legacy speedup.
const MIN_WARM_SPEEDUP: f64 = 5.0;

fn train_nets() -> Vec<Network> {
    vec![
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::resnet::resnet50(),
        zoo::vgg::vgg11(),
        zoo::vgg::vgg16(),
        zoo::densenet::densenet121(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        zoo::squeezenet::squeezenet(128, 128, 0.125),
    ]
}

/// The prediction sweep: held-out networks across a batch scan — the
/// repeated-request pattern the plan cache exists for.
fn sweep_pairs() -> Vec<(Network, usize)> {
    let probes = [
        zoo::resnet::resnet77(),
        zoo::resnet::resnet101(),
        zoo::vgg::vgg13(),
        zoo::densenet::densenet169(),
        zoo::mobilenet::mobilenet_v2(1.4, 1.0),
    ];
    let mut pairs = Vec::new();
    for net in probes {
        for batch in [1usize, 8, 32, 64] {
            pairs.push((net.clone(), batch));
        }
    }
    pairs
}

struct Flags {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        smoke: false,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--out" => flags.out = args.next(),
            "--check" => flags.check = args.next(),
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    flags.out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--check=") {
                    flags.check = Some(v.to_string());
                } else {
                    eprintln!("perf: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    flags
}

/// Extracts the number following `"key":` from a (flat) JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

struct Report {
    profile: &'static str,
    cores: usize,
    sweep_pairs: usize,
    sweep_kernel_terms: usize,
    warm_ns_per_kernel: f64,
    warm_vs_legacy_speedup: f64,
    train_speedup_threads8: f64,
    entries: Vec<BenchResult>,
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-bench-5\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"sweep_pairs\": {},\n", self.sweep_pairs));
        out.push_str(&format!(
            "  \"sweep_kernel_terms\": {},\n",
            self.sweep_kernel_terms
        ));
        out.push_str(&format!(
            "  \"warm_predict_ns_per_kernel\": {:.3},\n",
            self.warm_ns_per_kernel
        ));
        out.push_str(&format!(
            "  \"warm_vs_legacy_speedup\": {:.2},\n",
            self.warm_vs_legacy_speedup
        ));
        out.push_str(&format!(
            "  \"train_speedup_threads8\": {:.2},\n",
            self.train_speedup_threads8
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", e.json_line()));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn run(smoke: bool) -> Report {
    // (warmup, iters) per stage; collection and training are orders of
    // magnitude slower than prediction, so they get fewer iterations.
    let (slow_w, slow_i, fast_w, fast_i) = if smoke { (1, 3, 2, 9) } else { (2, 9, 5, 41) };

    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let nets = train_nets();
    // A multi-batch grid: every kernel symbol accumulates rows from each
    // (network, batch) point, so the per-kernel classification fits carry
    // real work for the training pool to split.
    let batches = [8usize, 16, 32, 64];
    let mut entries = Vec::new();

    entries.push(bench("collect/full_grid", slow_w, slow_i, || {
        collect(&nets, std::slice::from_ref(&gpu), &batches)
    }));
    let ds = collect(&nets, std::slice::from_ref(&gpu), &batches);

    let t1 = bench("train/threads1", slow_w, slow_i, || {
        Workflow::train_opts(&ds, "A100", &TrainOptions::serial()).expect("train")
    });
    let t8 = bench("train/threads8", slow_w, slow_i, || {
        Workflow::train_opts(&ds, "A100", &TrainOptions::with_threads(8)).expect("train")
    });

    let suite = Workflow::train(&ds, "A100").expect("train");
    let pairs = sweep_pairs();
    let sweep_kernel_terms: usize = pairs
        .iter()
        .map(|(n, b)| suite.plan(n, *b).expect("plan").num_terms())
        .sum();
    suite.invalidate_plans();

    let (net0, batch0) = (&pairs[0].0, pairs[0].1);
    entries.push(bench("plan/compile", fast_w, fast_i, || {
        CompiledPlan::compile(&suite, net0, batch0).expect("compile")
    }));

    entries.push(bench("predict/cold_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| {
                CompiledPlan::compile(&suite, n, *b)
                    .expect("compile")
                    .predict()
            })
            .sum::<f64>()
    }));
    let warm = bench("predict/warm_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| suite.predict(n, *b).expect("predict"))
            .sum::<f64>()
    });
    let legacy = bench("predict/legacy_sweep", fast_w, fast_i, || {
        pairs
            .iter()
            .map(|(n, b)| suite.kw.predict_network(n, *b).expect("predict"))
            .sum::<f64>()
    });

    let warm_ns_per_kernel = warm.median_ns / sweep_kernel_terms as f64;
    let warm_vs_legacy_speedup = legacy.median_ns / warm.median_ns;
    let train_speedup_threads8 = t1.median_ns / t8.median_ns;
    entries.insert(1, t1);
    entries.insert(2, t8);
    entries.push(warm);
    entries.push(legacy);

    Report {
        profile: if smoke { "smoke" } else { "full" },
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        sweep_pairs: pairs.len(),
        sweep_kernel_terms,
        warm_ns_per_kernel,
        warm_vs_legacy_speedup,
        train_speedup_threads8,
        entries,
    }
}

fn main() {
    let flags = parse_flags();
    dnnperf_bench::banner(
        "PERF",
        "compiled-plan serving and pooled-training microbenchmarks",
    );

    let report = run(flags.smoke);
    println!();
    println!(
        "warm predict: {:.1} ns/kernel over {} terms ({} sweep pairs)",
        report.warm_ns_per_kernel, report.sweep_kernel_terms, report.sweep_pairs
    );
    println!(
        "warm vs legacy speedup: {:.2}x   train speedup (8 threads, {} core{}): {:.2}x",
        report.warm_vs_legacy_speedup,
        report.cores,
        if report.cores == 1 { "" } else { "s" },
        report.train_speedup_threads8
    );

    if let Some(path) = &flags.out {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }

    if let Some(path) = &flags.check {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("perf --check: cannot read {path}: {e}"));
        let base_ns = json_number(&baseline, "warm_predict_ns_per_kernel")
            .unwrap_or_else(|| panic!("perf --check: no warm_predict_ns_per_kernel in {path}"));
        let mut failed = false;
        let limit = base_ns * MAX_NS_PER_KERNEL_REGRESSION;
        if report.warm_ns_per_kernel > limit {
            eprintln!(
                "GATE FAIL: warm predict {:.1} ns/kernel exceeds {:.1} \
                 (baseline {:.1} x {MAX_NS_PER_KERNEL_REGRESSION})",
                report.warm_ns_per_kernel, limit, base_ns
            );
            failed = true;
        }
        if report.warm_vs_legacy_speedup < MIN_WARM_SPEEDUP {
            eprintln!(
                "GATE FAIL: warm-vs-legacy speedup {:.2}x below the {MIN_WARM_SPEEDUP}x floor",
                report.warm_vs_legacy_speedup
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate OK: {:.1} ns/kernel (limit {:.1}), speedup {:.2}x (floor {MIN_WARM_SPEEDUP}x)",
            report.warm_ns_per_kernel, limit, report.warm_vs_legacy_speedup
        );
    }
}
