//! Extension experiment (paper future work): "extending our models for
//! more diverse workloads (e.g., training)".
//!
//! The KW pipeline is entirely data-driven, so no model change is needed:
//! training-step traces (forward + backward + optimizer kernels) feed the
//! same classification / clustering / mapping machinery, and the resulting
//! model predicts training-step times for unseen networks.

use dnnperf_bench::{
    banner, cells, collect_training_verbose, collect_verbose, gpu, networks_in, standard_split,
    TextTable,
};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::KwModel;
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Extension: training workloads",
        "KW model on training-step measurements (A100)",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    // Training keeps all activations alive: use a training-feasible batch.
    let batch = 64usize;
    let a100 = gpu("A100");

    let train_ds = collect_training_verbose(&zoo, std::slice::from_ref(&a100), &[batch]);
    let (train, test) = standard_split(&train_ds);
    let test_nets = networks_in(&zoo, &test);

    let kw_train = KwModel::train(&train, "A100").expect("train KW on training steps");
    println!(
        "training-step KW: {} distinct kernels -> {} regression models",
        kw_train.num_kernels(),
        kw_train.num_models()
    );
    let pairs = predictions_vs_measurements(&kw_train, &test_nets, batch, &test);
    let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
    let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();
    let train_err = mean_abs_rel_error(&p, &y);

    // Baseline comparison: the inference-mode KW at the same batch size.
    let inf_ds = collect_verbose(&zoo, std::slice::from_ref(&a100), &[batch]);
    let (inf_train, inf_test) = standard_split(&inf_ds);
    let kw_inf = KwModel::train(&inf_train, "A100").expect("train KW on inference");
    let inf_nets = networks_in(&zoo, &inf_test);
    let pairs = predictions_vs_measurements(&kw_inf, &inf_nets, batch, &inf_test);
    let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
    let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();
    let inf_err = mean_abs_rel_error(&p, &y);

    let mut t = TextTable::new(&["workload", "test nets", "KW error"]);
    t.row(&cells![
        "inference batch",
        inf_nets.len(),
        format!("{:.2}%", inf_err * 100.0)
    ]);
    t.row(&cells![
        "training step",
        test_nets.len(),
        format!("{:.2}%", train_err * 100.0)
    ]);
    t.print();

    // The classic rule of thumb: a training step costs ~3x inference.
    let r50 = dnnperf_dnn::zoo::resnet::resnet50();
    let prof = dnnperf_gpu::Profiler::new(a100);
    let inf_t = prof.profile(&r50, batch).unwrap().e2e_seconds;
    let tr_t = prof.profile_training(&r50, batch).unwrap().e2e_seconds;
    println!(
        "\nResNet-50 @{batch}: inference {}, training step {} ({:.2}x)",
        dnnperf_bench::ms(inf_t),
        dnnperf_bench::ms(tr_t),
        tr_t / inf_t
    );
    println!("expected: training-step prediction accuracy comparable to inference");
}
